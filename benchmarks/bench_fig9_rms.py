"""Benchmark regenerating Fig. 9: structural / timing / joint relative-error RMS.

This is the paper's headline result.  The benchmark synthesizes all
twelve designs, runs delay-annotated timing simulation at 5/10/15 % CPR,
applies the error-combination flow and prints the per-design RMS table.
The paper-vs-measured comparison lives in EXPERIMENTS.md (experiment E3).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.fig9_rms import run_fig9


@pytest.mark.benchmark(group="figures")
def test_fig9_error_combination(benchmark, bench_config, results_dir):
    """Regenerate Fig. 9 (a, b, c) and check its qualitative shape."""
    result = benchmark.pedantic(run_fig9, args=(bench_config,), rounds=1, iterations=1)
    write_result(results_dir, "fig9_rms", result.format_table())

    # Qualitative shape checks mirroring the paper's observations.
    for cpr in bench_config.clock_plan.cpr_levels:
        exact_row = result.row("exact", cpr)
        assert exact_row.structural_rms == 0.0, "the exact adder has no structural error"
        # timing errors never shrink when the clock gets more aggressive
    for design in ("exact", "(16,2,1,6)", "(8,0,0,4)"):
        series = [result.row(design, cpr).timing_rms for cpr in (0.05, 0.10, 0.15)]
        assert series[0] <= series[1] <= series[2]
    # Structural error decreases monotonically from the least to the most
    # accurate ISA family member (paper Fig. 9, left-to-right trend).
    structural = [result.row(name, 0.05).structural_rms
                  for name in ("(8,0,0,0)", "(8,0,0,4)", "(16,0,0,0)", "(16,2,1,6)")]
    assert structural == sorted(structural, reverse=True)
    # The exact adder is the worst or essentially tied-worst design at every
    # CPR level, and in particular always worse than every 8-bit-block ISA
    # (the paper's headline observation).
    for cpr in bench_config.clock_plan.cpr_levels:
        joint = {row.design: row.joint_rms for row in result.rows_for_cpr(cpr)}
        eight_bit_designs = [name for name in joint if name.startswith("(8,")]
        assert all(joint["exact"] >= joint[name] for name in eight_bit_designs)
        assert joint["exact"] >= 0.9 * max(joint.values())
