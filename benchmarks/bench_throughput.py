"""Throughput benchmarks (A4): how fast the substrate itself is.

Two entry points share this module:

* classic pytest-benchmark micro-benchmarks (multiple rounds) for the
  operations the experiments lean on: vectorised behavioural ISA
  characterisation, zero-delay netlist evaluation on both engines, the
  fast timing simulator on both engines, and synthesis of a full design;

* a standalone script mode (``python benchmarks/bench_throughput.py``)
  that measures the compiled bit-packed engine against the dense
  reference engine on a 32-bit adder trace, measures the execution
  backends of :mod:`repro.runtime` (serial vs multiprocess) on an
  end-to-end characterization of the twelve paper designs, measures the
  persistent result cache cold (simulate + persist) vs warm (every job
  served bit-identically from disk), measures the design-space
  explorer's sweep throughput (designs x clock points per second, cold
  vs warm) for both registered operator families (the adder space and
  the multiplier space through the same cached pipeline), measures the
  adaptive frontier-guided search against the
  exhaustive width-16 sweep (frontier recall at a fifth of the space,
  plus a warm re-run that must simulate nothing), measures the overhead
  of full runtime telemetry (span tracing, metrics, run manifests) on a
  batched sweep — tracing-on must stay within 2 % of tracing-off — and
  records
  everything — with backend, worker count and host metadata — in
  ``BENCH_throughput.json`` at the repository root,
  so the performance trajectory of the simulation core is tracked
  across PRs.  The reference engine executes the seed algorithm
  (per-gate ``uint8`` logic, dense float64 arrival times), making the
  reported speedup a conservative bound on the gain over the seed
  implementation.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.experiments.common import StudyConfig, characterize_designs
from repro.synth.flow import SynthesisOptions, exact_adder_netlist, synthesize
from repro.timing.fast_sim import FastTimingSimulator
from repro.workloads.generators import uniform_workload

CONFIG = ISAConfig.from_quadruple((8, 0, 0, 4))

#: Clock period used for single-clock timing benchmarks (the paper's 15 % CPR).
BENCH_CLOCK = 2.55e-10

#: Speedup the compiled engine must reach over the reference engine on the
#: 32-bit adder trace (the acceptance bar of the compiled-engine PR).
SPEEDUP_TARGET = 10.0

#: End-to-end speedup the multiprocess backend must reach over serial on
#: the 12-design characterization workload, on hosts with at least as
#: many CPUs as workers (the acceptance bar of the runtime PR).
BACKEND_SPEEDUP_TARGET = 2.0

#: Cold sweep-throughput gain the batched planner path must reach over
#: per-job execution on the multi-design width-16 sweep (the acceptance
#: bar of the planner PR); CI only asserts "no slower" (>= 1.0) to stay
#: robust on noisy shared runners.
BATCHED_SWEEP_TARGET = 2.0

#: Cold sweep-throughput gain the vectorized synthesis kernels (plus
#: clock-specialised lowering) must reach over the reference per-gate
#: kernels on the width-16 design-space sweep; CI asserts "no slower"
#: (>= 1.0) to stay robust on noisy shared runners.
SYNTH_VECTOR_TARGET = 1.5

#: End-to-end gain a warm persistent synthesis cache must reach over the
#: reference baseline on the same sweep (the warm pass additionally must
#: synthesize zero designs, which CI asserts unconditionally).
SYNTH_WARM_TARGET = 2.0

#: Fraction of the exhaustive Pareto frontier the adaptive search must
#: recover at width 16 (the acceptance bar of the adaptive-explorer PR).
ADAPTIVE_RECALL_TARGET = 0.9

#: Share of the width-16 quadruple space the adaptive search may
#: simulate while clearing the recall bar.
ADAPTIVE_BUDGET_FRACTION = 0.2

#: Slowdown budget of full telemetry (span tracing, metrics, manifest)
#: on a batched width-16 sweep: tracing-on must stay within 2 % of
#: tracing-off (the acceptance bar of the observability PR).
TELEMETRY_OVERHEAD_TARGET = 1.02

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


# --------------------------------------------------------------------- #
# pytest-benchmark micro-benchmarks
# --------------------------------------------------------------------- #
if pytest is not None:

    @pytest.fixture(scope="module")
    def operands():
        trace = uniform_workload(20000, width=32, seed=3)
        return trace

    @pytest.fixture(scope="module")
    def synthesized():
        return synthesize(CONFIG)

    @pytest.mark.benchmark(group="throughput")
    def test_behavioural_isa_throughput(benchmark, operands):
        """Vectorised golden-model characterisation (20k additions per round)."""
        adder = InexactSpeculativeAdder(CONFIG)
        result = benchmark(adder.add_many, operands.a, operands.b)
        assert result.shape == operands.a.shape

    @pytest.mark.benchmark(group="throughput")
    def test_structural_stats_throughput(benchmark, operands):
        """Golden model with per-block fault attribution (Fig. 10 structural series)."""
        adder = InexactSpeculativeAdder(CONFIG)
        result, stats = benchmark(adder.add_many_with_stats, operands.a, operands.b)
        assert stats.cycles == operands.length

    @pytest.mark.benchmark(group="throughput")
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_netlist_logic_evaluation_throughput(benchmark, operands, synthesized, engine):
        """Zero-delay gate-level evaluation of the synthesized ISA netlist."""
        chunk = {"A": operands.a[:4000], "B": operands.b[:4000],
                 "cin": np.zeros(4000, dtype=np.uint64)}
        words = benchmark(synthesized.netlist.compute_words, chunk, "S", engine)
        assert words.shape == (4000,)

    @pytest.mark.benchmark(group="throughput")
    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_fast_timing_simulation_throughput(benchmark, operands, synthesized, engine):
        """Two-vector timing simulation at the paper's 15% CPR clock, per engine."""
        simulator = FastTimingSimulator(synthesized.netlist, synthesized.annotation,
                                        engine=engine)
        trace_operands = {"A": operands.a[:3000], "B": operands.b[:3000],
                          "cin": np.zeros(3000, dtype=np.uint64)}
        trace = benchmark(simulator.run_trace, trace_operands, BENCH_CLOCK)
        assert trace.cycles == 2999

    @pytest.mark.benchmark(group="throughput")
    def test_synthesis_flow_throughput(benchmark):
        """Full synthesis flow (generate, optimise, size, annotate) of one ISA."""
        design = benchmark(synthesize, ISAConfig.from_quadruple((16, 2, 1, 6)))
        assert design.netlist.num_gates > 0


# --------------------------------------------------------------------- #
# Standalone engine + backend comparison (writes BENCH_throughput.json)
# --------------------------------------------------------------------- #
def host_metadata() -> dict:
    """CPU count, Python version and platform of the benchmark host."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def run_backend_comparison(cycles: int = 600, workers: int = 4,
                           backends=("serial", "multiprocess"),
                           simulator: str = "event", engine: str = "auto") -> dict:
    """Measure the runtime backends on an end-to-end characterization.

    Characterises the twelve paper designs over one shared trace with
    the requested simulator tier — by default the event-driven reference
    tier, the expensive path the paper's Fig. 7-10 studies pay for —
    once per backend, asserting that all backends produce bit-identical
    sampled outputs.  Returns the record section with per-backend wall
    times, the multiprocess-over-serial speedup, worker count and job
    count.
    """
    timings: dict = {}
    reference_results = None
    job_count = 0
    for backend in backends:
        # cache_dir is pinned off: a result-cache hit on the second
        # backend would turn the serial-vs-multiprocess comparison into
        # a disk-read benchmark.
        config = StudyConfig(simulator=simulator, engine=engine, backend=backend,
                             workers=workers, characterization_length=max(cycles, 16),
                             trace_scale=1.0, cache_dir=None)
        entries = config.design_entries()
        job_count = len(entries)
        trace = config.characterization_trace()
        started = time.perf_counter()
        results = characterize_designs(entries, trace, config)
        elapsed = time.perf_counter() - started
        timings[backend] = elapsed
        if reference_results is None:
            reference_results = results
        else:
            for want, got in zip(reference_results, results):
                for clk, timing in want.timing_traces.items():
                    other = got.timing_traces[clk]
                    assert np.array_equal(timing.sampled_words, other.sampled_words), \
                        f"backends disagree on {want.name} sampled words at clock {clk}"
                    assert np.array_equal(timing.settled_words, other.settled_words), \
                        f"backends disagree on {want.name} settled words at clock {clk}"

    record = {
        "jobs": job_count,
        "trace_cycles": max(cycles, 16),
        "simulator": simulator,
        "engine": engine,
        "workers": workers,
        "speedup_target": BACKEND_SPEEDUP_TARGET,
        "backends": {backend: {"wall_s": timings[backend]} for backend in timings},
    }
    if "serial" in timings and "multiprocess" in timings:
        record["speedup"] = timings["serial"] / timings["multiprocess"]
        cpus = os.cpu_count() or 1
        if cpus < workers:
            # The bar is only meaningful when the host can actually run
            # the workers in parallel; record the bound instead of a
            # guaranteed-failed verdict.
            record["note"] = (
                f"host exposes {cpus} CPU(s) for {workers} workers; the achievable "
                "speedup is bounded by the CPU count, not by the backend")
        else:
            record["passed"] = record["speedup"] >= BACKEND_SPEEDUP_TARGET
    return record


def run_cache_comparison(cycles: int = 600, simulator: str = "fast",
                         engine: str = "auto") -> dict:
    """Cold vs warm wall time of the persistent result cache.

    Characterises the twelve paper designs twice against one throwaway
    cache directory: the cold run simulates and persists, the warm run
    must serve every job from disk (zero simulation) bit-identically.
    Returns the record section with both wall times, the warm speedup
    and the hit/miss counters of each pass.
    """
    from repro.experiments.common import shutdown_backends
    from repro.runtime import CachingBackend

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        config = StudyConfig(simulator=simulator, engine=engine, backend="serial",
                             characterization_length=max(cycles, 16),
                             trace_scale=1.0, cache_dir=cache_dir)
        entries = config.design_entries()
        trace = config.characterization_trace()
        backend = config.runtime_backend()
        assert isinstance(backend, CachingBackend)

        started = time.perf_counter()
        cold_results = characterize_designs(entries, trace, config)
        cold_s = time.perf_counter() - started
        cold_misses = backend.stats.misses

        started = time.perf_counter()
        warm_results = characterize_designs(entries, trace, config)
        warm_s = time.perf_counter() - started
        warm_hits = backend.stats.hits

        for want, got in zip(cold_results, warm_results):
            for clk, timing in want.timing_traces.items():
                other = got.timing_traces[clk]
                assert np.array_equal(timing.sampled_words, other.sampled_words), \
                    f"warm cache run disagrees on {want.name} at clock {clk}"
        assert backend.stats.misses == cold_misses, "warm run executed simulation jobs"

        return {
            "jobs": len(entries),
            "trace_cycles": max(cycles, 16),
            "simulator": simulator,
            "engine": engine,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
            "cold_misses": cold_misses,
            "warm_hits": warm_hits,
        }
    finally:
        shutdown_backends()
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_explore_comparison(width: int = 16, max_designs: int = 24,
                           length: int = 256) -> dict:
    """Sweep throughput of the design-space explorer, cold vs warm.

    Enumerates and subsamples the quadruple space at ``width``, sweeps
    it (plus the exact baseline) over the four default clock points
    through the cached job pipeline against a throwaway cache
    directory, then repeats the sweep warm — asserting zero simulated
    jobs and point-for-point identical scores.  Records designs, jobs,
    points and the cold sweep throughput in (design x clock) points per
    second.
    """
    from repro.explore import DesignSpace, SweepSpec, run_sweep, sweep_clock_plan
    from repro.runtime import CachingBackend
    from repro.workloads.generators import WorkloadSpec

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-explore-")
    try:
        entries = DesignSpace(width=width).entries(max_designs=max_designs)
        spec = SweepSpec(
            entries=tuple(entries),
            clock_plan=sweep_clock_plan(),
            workloads=(WorkloadSpec("uniform", length, width=width, seed=3),),
            simulator="fast",
            width=width,
        )
        backend = CachingBackend("serial", cache_dir)

        started = time.perf_counter()
        cold = run_sweep(spec, backend=backend)
        cold_s = time.perf_counter() - started
        cold_misses = backend.stats.misses

        started = time.perf_counter()
        warm = run_sweep(spec, backend=backend)
        warm_s = time.perf_counter() - started

        assert backend.stats.misses == cold_misses, "warm sweep executed simulation jobs"
        assert cold.points == warm.points, "warm sweep disagrees with the cold one"

        return {
            "width": width,
            "designs": len(spec.entries),
            "jobs": spec.job_count,
            "points": spec.point_count,
            "trace_cycles": length,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "points_per_s": spec.point_count / cold_s,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_multiplier_sweep_comparison(width: int = 8, max_designs: int = 32,
                                    length: int = 256) -> dict:
    """Sweep throughput of the multiplier operator family, cold vs warm.

    The registry counterpart of :func:`run_explore_comparison`: resolve
    the ``multiplier`` family, enumerate and subsample its quadruple
    space at ``width``, sweep it (plus the exact array-multiplier
    baseline) over the family's safe period and the paper's CPR levels
    through the cached job pipeline, then repeat the sweep warm —
    asserting zero simulated jobs and point-for-point identical scores.
    Records designs, jobs, points and the cold sweep throughput in
    (design x clock) points per second, proving a second operator
    family pays no throughput tax in the shared pipeline.
    """
    from repro.explore import SweepSpec, run_sweep
    from repro.families import get_family
    from repro.runtime import CachingBackend
    from repro.timing.clocking import PAPER_CPR_LEVELS, ClockPlan
    from repro.workloads.generators import WorkloadSpec

    family = get_family("multiplier")
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-mul-")
    try:
        entries = family.design_space(width).entries(max_designs=max_designs)
        spec = SweepSpec(
            entries=tuple(entries),
            clock_plan=ClockPlan(safe_period=family.safe_period(width),
                                 cpr_levels=PAPER_CPR_LEVELS),
            workloads=(WorkloadSpec("uniform", length, width=width, seed=3),),
            simulator="fast",
            width=width,
        )
        backend = CachingBackend("serial", cache_dir)

        started = time.perf_counter()
        cold = run_sweep(spec, backend=backend)
        cold_s = time.perf_counter() - started
        cold_misses = backend.stats.misses

        started = time.perf_counter()
        warm = run_sweep(spec, backend=backend)
        warm_s = time.perf_counter() - started

        assert backend.stats.misses == cold_misses, \
            "warm multiplier sweep executed simulation jobs"
        assert cold.points == warm.points, \
            "warm multiplier sweep disagrees with the cold one"

        return {
            "family": "multiplier",
            "width": width,
            "designs": len(spec.entries),
            "jobs": spec.job_count,
            "points": spec.point_count,
            "trace_cycles": length,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "points_per_s": spec.point_count / cold_s,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_batched_sweep_comparison(width: int = 16, max_designs: int = 16,
                                 workloads: int = 8, length: int = 256,
                                 repeats: int = 3) -> dict:
    """Batched planner path vs per-job execution on a multi-design sweep.

    Expands a width-``width`` design-space sweep (``max_designs``
    quadruples plus the exact baseline x ``workloads`` workload traces x
    the four default clock points) into one job batch and runs it twice:
    once per-job on a bare serial backend (the reference path), once
    through the execution planner (grouped by design + clock plan,
    clock-specialised lowering, stacked multi-trace evaluation).  The
    two result sets are asserted bit-identical; the record carries both
    wall times and sweep throughputs in (design x workload x clock)
    points per second.  CI asserts the batched path is no slower; the
    committed artifact documents the actual speedup.
    """
    import numpy as np  # noqa: F811 - keep the section self-contained

    from repro.explore import DesignSpace, SweepSpec, sweep_clock_plan
    from repro.runtime import PlannedBackend, SerialBackend
    from repro.workloads.generators import WorkloadSpec

    entries = DesignSpace(width=width).entries(max_designs=max_designs)
    spec = SweepSpec(
        entries=tuple(entries),
        clock_plan=sweep_clock_plan(),
        workloads=tuple(WorkloadSpec("uniform", length, width=width, seed=3 + index)
                        for index in range(workloads)),
        simulator="fast",
        width=width,
    )
    jobs = spec.jobs()

    def per_job():
        return SerialBackend().run(jobs)

    def batched():
        return PlannedBackend(SerialBackend()).run(jobs)

    # Repeats interleave the two paths so slow host phases (shared
    # runners, thermal drift) hit both sides equally instead of
    # whichever happens to run second.
    per_job_s = batched_s = float("inf")
    reference = planned = None
    for _ in range(repeats):
        started = time.perf_counter()
        reference = per_job()
        per_job_s = min(per_job_s, time.perf_counter() - started)
        started = time.perf_counter()
        planned = batched()
        batched_s = min(batched_s, time.perf_counter() - started)
    for want, got in zip(reference, planned):
        assert np.array_equal(want.gold_words, got.gold_words), \
            f"batched planner disagrees on {want.name} golden words"
        assert np.array_equal(want.netlist_words, got.netlist_words), \
            f"batched planner disagrees on {want.name} netlist words"
        for clk, timing in want.timing_traces.items():
            other = got.timing_traces[clk]
            assert np.array_equal(timing.sampled_words, other.sampled_words), \
                f"batched planner disagrees on {want.name} sampled words at {clk}"
            assert np.array_equal(timing.settled_words, other.settled_words), \
                f"batched planner disagrees on {want.name} settled words at {clk}"

    speedup = per_job_s / batched_s if batched_s > 0 else float("inf")
    return {
        "width": width,
        "designs": len(spec.entries),
        "workloads": workloads,
        "jobs": spec.job_count,
        "points": spec.point_count,
        "trace_cycles": length,
        "per_job_s": per_job_s,
        "batched_s": batched_s,
        "per_job_points_per_s": spec.point_count / per_job_s,
        "batched_points_per_s": spec.point_count / batched_s,
        "speedup": speedup,
        "speedup_target": BATCHED_SWEEP_TARGET,
        "passed": speedup >= 1.0,
    }


def run_synth_flow_comparison(width: int = 16, max_designs: int = 64,
                              length: int = 256, repeats: int = 2) -> dict:
    """Synthesis-flow throughput: vectorized kernels and the synthesis cache.

    Runs one cold width-``width`` design-space sweep (``max_designs``
    quadruples plus the exact baseline x the four default clock points)
    three ways on the serial backend:

    * **reference** — ``REPRO_SYNTH_VECTOR=0`` semantics and no synthesis
      cache: the per-gate kernels and unspecialised lowering of the
      previous substrate, the baseline of both speedup bars;
    * **vector** — the levelised NumPy synthesis kernels and
      clock-specialised lowering, still synthesizing every design
      (the cold bar: target ``SYNTH_VECTOR_TARGET``, CI asserts no
      slower);
    * **warm synth cache** — vector kernels plus a primed persistent
      synthesis cache: the sweep must synthesize *zero* designs (the
      phase counter is asserted, cold and warm) and clear the
      ``SYNTH_WARM_TARGET`` end-to-end bar.

    All three passes are asserted point-for-point identical; the
    in-process design memo is dropped between passes so each one pays
    its true cost.
    """
    from repro.explore import DesignSpace, SweepSpec, run_sweep, sweep_clock_plan
    from repro.runtime.jobs import clear_design_cache
    from repro.runtime.synth_cache import configure_synth_cache
    from repro.utils.phases import collect_phases
    from repro.utils.vector import vector_override
    from repro.workloads.generators import WorkloadSpec

    entries = DesignSpace(width=width).entries(max_designs=max_designs)
    spec = SweepSpec(
        entries=tuple(entries),
        clock_plan=sweep_clock_plan(),
        workloads=(WorkloadSpec("uniform", length, width=width, seed=3),),
        simulator="fast",
        width=width,
    )
    designs = len(spec.entries)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-synth-")
    configure_synth_cache(None)

    def cold_sweep(vector: bool):
        clear_design_cache()
        with vector_override(vector):
            with collect_phases() as phases:
                started = time.perf_counter()
                result = run_sweep(spec, backend="serial")
                elapsed = time.perf_counter() - started
        return elapsed, result, phases.calls.get("synthesize", 0)

    try:
        # Interleave the two cold paths so host noise hits both equally.
        reference_s = vector_s = float("inf")
        reference = vector = None
        synthesized_cold = 0
        for _ in range(repeats):
            elapsed, reference, _calls = cold_sweep(vector=False)
            reference_s = min(reference_s, elapsed)
            elapsed, vector, synthesized_cold = cold_sweep(vector=True)
            vector_s = min(vector_s, elapsed)
        assert reference.points == vector.points, \
            "vectorized synthesis sweep disagrees with the reference kernels"
        assert synthesized_cold == designs, \
            f"cold sweep synthesized {synthesized_cold} of {designs} designs"

        # Prime the persistent synthesis cache, then measure warm passes
        # that must not run the flow at all.
        configure_synth_cache(cache_dir)
        clear_design_cache()
        with vector_override(True):
            run_sweep(spec, backend="serial")
        warm_s = float("inf")
        warm = None
        synthesized_warm = 0
        for _ in range(repeats):
            clear_design_cache()
            with vector_override(True):
                with collect_phases() as phases:
                    started = time.perf_counter()
                    warm = run_sweep(spec, backend="serial")
                    warm_s = min(warm_s, time.perf_counter() - started)
            synthesized_warm = phases.calls.get("synthesize", 0)
            assert synthesized_warm == 0, \
                f"warm synth-cache sweep synthesized {synthesized_warm} designs"
        assert reference.points == warm.points, \
            "warm synth-cache sweep disagrees with the reference kernels"

        vector_speedup = reference_s / vector_s if vector_s > 0 else float("inf")
        warm_speedup = reference_s / warm_s if warm_s > 0 else float("inf")
        return {
            "width": width,
            "designs": designs,
            "jobs": spec.job_count,
            "points": spec.point_count,
            "trace_cycles": length,
            "reference_s": reference_s,
            "vector_s": vector_s,
            "warm_s": warm_s,
            "reference_designs_per_s": designs / reference_s,
            "vector_designs_per_s": designs / vector_s,
            "warm_designs_per_s": designs / warm_s,
            "vector_speedup": vector_speedup,
            "warm_speedup": warm_speedup,
            "vector_speedup_target": SYNTH_VECTOR_TARGET,
            "warm_speedup_target": SYNTH_WARM_TARGET,
            "cold_synthesized": synthesized_cold,
            "warm_synthesized": synthesized_warm,
            "passed": vector_speedup >= 1.0 and synthesized_warm == 0,
        }
    finally:
        configure_synth_cache(None)
        clear_design_cache()
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_telemetry_overhead_comparison(width: int = 16, max_designs: int = 16,
                                      workloads: int = 8, length: int = 256,
                                      repeats: int = 5) -> dict:
    """Full telemetry vs none on a batched sweep: overhead must stay tiny.

    Runs the same batched width-``width`` sweep twice per repeat —
    tracing off (no ambient tracer, every ``phase()`` is a single
    context-variable read) and tracing on (a full ``telemetry_run``
    session with span tracing, the metrics registry, a ``--timings``
    collector and a manifest written to a throwaway directory) — and
    compares best-of wall times.  The results are asserted bit-identical
    and the slowdown must stay within ``TELEMETRY_OVERHEAD_TARGET``
    (2 %): observability has to be cheap enough to leave on.
    """
    import numpy as np  # noqa: F811 - keep the section self-contained

    from repro.explore import DesignSpace, SweepSpec, sweep_clock_plan
    from repro.obs import telemetry_run
    from repro.runtime import PlannedBackend, SerialBackend
    from repro.utils.phases import collect_phases
    from repro.workloads.generators import WorkloadSpec

    entries = DesignSpace(width=width).entries(max_designs=max_designs)
    spec = SweepSpec(
        entries=tuple(entries),
        clock_plan=sweep_clock_plan(),
        workloads=tuple(WorkloadSpec("uniform", length, width=width, seed=3 + index)
                        for index in range(workloads)),
        simulator="fast",
        width=width,
    )
    jobs = spec.jobs()

    def plain():
        return PlannedBackend(SerialBackend()).run(jobs)

    def traced(directory):
        with telemetry_run(directory, command="bench-telemetry",
                           config={"jobs": len(jobs)}):
            with collect_phases():
                return PlannedBackend(SerialBackend()).run(jobs)

    telemetry_dir = tempfile.mkdtemp(prefix="repro-bench-telemetry-")
    plain_s = traced_s = float("inf")
    reference = observed = None
    try:
        # Interleave the two modes so host noise hits both sides alike.
        for _ in range(repeats):
            started = time.perf_counter()
            reference = plain()
            plain_s = min(plain_s, time.perf_counter() - started)
            started = time.perf_counter()
            observed = traced(telemetry_dir)
            traced_s = min(traced_s, time.perf_counter() - started)
    finally:
        shutil.rmtree(telemetry_dir, ignore_errors=True)
    for want, got in zip(reference, observed):
        assert np.array_equal(want.gold_words, got.gold_words), \
            f"telemetry perturbed {want.name} golden words"
        assert np.array_equal(want.netlist_words, got.netlist_words), \
            f"telemetry perturbed {want.name} netlist words"

    overhead = traced_s / plain_s if plain_s > 0 else float("inf")
    return {
        "width": width,
        "designs": len(spec.entries),
        "workloads": workloads,
        "jobs": spec.job_count,
        "trace_cycles": length,
        "plain_s": plain_s,
        "traced_s": traced_s,
        "overhead": overhead,
        "overhead_target": TELEMETRY_OVERHEAD_TARGET,
        "passed": overhead <= TELEMETRY_OVERHEAD_TARGET,
    }


def run_adaptive_search_comparison(width: int = 16, length: int = 128,
                                   cpr_levels=(0.0, 0.10), seed: int = 7) -> dict:
    """Adaptive frontier-guided search vs the exhaustive sweep.

    Sweeps the full width-``width`` quadruple space exhaustively (the
    reference frontier), then runs the surrogate-directed search of
    :mod:`repro.explore.adaptive` at its default 20 % budget against a
    throwaway result cache and scores the frontier-membership recall —
    the acceptance bar of the adaptive-explorer PR (recall >=
    ``ADAPTIVE_RECALL_TARGET`` simulating at most
    ``ADAPTIVE_BUDGET_FRACTION`` of the space).  A second, warm adaptive
    pass on the same cache must simulate zero jobs: batch selection is
    seed-deterministic, so every round re-requests exactly the designs
    the cold pass persisted.
    """
    from repro.experiments.designs import exact_entry
    from repro.explore import DesignSpace, SweepSpec, run_sweep, sweep_clock_plan
    from repro.explore.adaptive import AdaptiveSpec, frontier_recall, run_adaptive
    from repro.explore.pareto import aggregate_points, frontier_keys, pareto_frontier
    from repro.runtime import CachingBackend, SerialBackend
    from repro.workloads.generators import WorkloadSpec

    space = DesignSpace(width=width)
    template = SweepSpec(
        entries=(exact_entry(width),),
        clock_plan=sweep_clock_plan(tuple(cpr_levels)),
        workloads=(WorkloadSpec("uniform", length, width=width, seed=11),),
        simulator="fast",
        width=width,
    )

    started = time.perf_counter()
    exhaustive = run_sweep(template.with_entries(space.entries(include_exact=True)),
                           backend="serial")
    exhaustive_s = time.perf_counter() - started
    reference = pareto_frontier(aggregate_points(exhaustive.points))

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-adaptive-")
    try:
        spec = AdaptiveSpec(space=space, sweep=template, seed=seed)
        backend = CachingBackend(SerialBackend(), cache_dir)

        started = time.perf_counter()
        cold = run_adaptive(spec, backend=backend)
        adaptive_s = time.perf_counter() - started
        cold_misses = backend.stats.misses

        started = time.perf_counter()
        warm = run_adaptive(spec, backend=backend)
        warm_s = time.perf_counter() - started
        warm_simulated = backend.stats.misses - cold_misses

        assert frontier_keys(cold.frontier) == frontier_keys(warm.frontier), \
            "warm adaptive re-run recovered a different frontier"

        recall = frontier_recall(reference, cold.frontier)
        clock_points = len(template.clock_plan.cpr_levels)
        return {
            "width": width,
            "candidates": cold.candidates,
            "trace_cycles": length,
            "clock_points": clock_points,
            "exhaustive_s": exhaustive_s,
            "exhaustive_points_per_s": (cold.candidates + 1) * clock_points / exhaustive_s,
            "reference_frontier": len(reference),
            "adaptive_s": adaptive_s,
            "warm_s": warm_s,
            "simulated": cold.simulated,
            "fraction_simulated": cold.fraction_simulated,
            "rounds": len(cold.rounds),
            "recovered_frontier": len(cold.frontier),
            "recall": recall,
            "warm_simulated": warm_simulated,
            "speedup": exhaustive_s / adaptive_s if adaptive_s > 0 else float("inf"),
            "recall_target": ADAPTIVE_RECALL_TARGET,
            "budget_fraction_target": ADAPTIVE_BUDGET_FRACTION,
            "seed": seed,
            "note": "the bar is simulations avoided (80% of the space), not "
                    "wall time: at this CI-sized trace length the surrogate "
                    "fits rival the cheap simulations, while at production "
                    "trace lengths (or widths where exhaustive sweeps are "
                    "infeasible) per-design simulation cost dominates",
            "passed": (recall >= ADAPTIVE_RECALL_TARGET
                       and cold.fraction_simulated <= ADAPTIVE_BUDGET_FRACTION
                       and warm_simulated == 0),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def _best_of(callable_, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_engine_comparison(cycles: int = 20000, repeats: int = 3) -> dict:
    """Measure compiled vs reference on a 32-bit adder trace.

    Returns the record written to ``BENCH_throughput.json``; sampled
    outputs of the two engines are asserted equal along the way.
    """
    options = SynthesisOptions()
    design = synthesize(exact_adder_netlist(32, options.adder_architecture), options)
    trace = uniform_workload(cycles, width=32, seed=3)
    operands = {"A": trace.a, "B": trace.b,
                "cin": np.zeros(cycles, dtype=np.uint64)}
    clocks = [2.85e-10, 2.70e-10, BENCH_CLOCK]

    reference = FastTimingSimulator(design.netlist, design.annotation,
                                    engine="reference")
    compiled = FastTimingSimulator(design.netlist, design.annotation,
                                   engine="compiled")

    record = {
        "design": f"exact {options.adder_architecture} 32-bit (sized)",
        "gates": design.netlist.num_gates,
        "trace_cycles": cycles,
        "baseline": "reference engine (seed algorithm: per-gate uint8 logic, "
                    "dense float64 arrival times)",
        "speedup_target": SPEEDUP_TARGET,
        "host": host_metadata(),
        "results": {},
    }

    # zero-delay logic evaluation
    ref_eval, ref_words = _best_of(
        lambda: design.netlist.compute_words(operands, engine="reference"), repeats)
    new_eval, new_words = _best_of(
        lambda: design.netlist.compute_words(operands, engine="compiled"), repeats + 2)
    assert np.array_equal(ref_words, new_words), "logic engines disagree"
    record["results"]["logic_eval"] = {
        "reference_s": ref_eval, "compiled_s": new_eval,
        "speedup": ref_eval / new_eval,
    }

    # fast timing simulation, single clock (the headline number)
    ref_time, ref_trace = _best_of(
        lambda: reference.run_trace(operands, BENCH_CLOCK), repeats)
    new_time, new_trace = _best_of(
        lambda: compiled.run_trace(operands, BENCH_CLOCK), repeats + 2)
    assert np.array_equal(ref_trace.sampled_words, new_trace.sampled_words), \
        "timing engines disagree"
    record["results"]["fast_sim_single_clock"] = {
        "clock_period_s": BENCH_CLOCK,
        "reference_s": ref_time, "compiled_s": new_time,
        "speedup": ref_time / new_time,
        "compiled_cycles_per_s": (cycles - 1) / new_time,
    }

    # fast timing simulation, the paper's three-clock sweep
    ref_time3, _ = _best_of(
        lambda: reference.run_trace_multi(operands, clocks), repeats)
    new_time3, _ = _best_of(
        lambda: compiled.run_trace_multi(operands, clocks), repeats + 2)
    record["results"]["fast_sim_three_clocks"] = {
        "clock_periods_s": clocks,
        "reference_s": ref_time3, "compiled_s": new_time3,
        "speedup": ref_time3 / new_time3,
    }

    record["headline_speedup"] = record["results"]["fast_sim_single_clock"]["speedup"]
    record["passed"] = record["headline_speedup"] >= SPEEDUP_TARGET
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=20000,
                        help="trace length in cycles (default 20000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions, best-of (default 3)")
    parser.add_argument("--backend", choices=("serial", "multiprocess", "both"),
                        default="both",
                        help="runtime backends to benchmark on the characterization "
                             "workload (default both, which also records the speedup)")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker processes of the multiprocess backend (default 4)")
    parser.add_argument("--backend-cycles", type=int, default=600,
                        help="trace length of the backend characterization workload "
                             "(event-driven tier; default 600)")
    parser.add_argument("--explore-designs", type=int, default=24,
                        help="design budget of the explorer sweep benchmark "
                             "(default 24)")
    parser.add_argument("--multiplier-designs", type=int, default=32,
                        help="design budget of the multiplier-family sweep "
                             "benchmark (default 32)")
    parser.add_argument("--synth-designs", type=int, default=64,
                        help="design budget of the synthesis-flow benchmark "
                             "(default 64, the acceptance-criterion sweep size)")
    parser.add_argument("--adaptive-cycles", type=int, default=128,
                        help="trace length of the adaptive-search benchmark "
                             "(default 128; the exhaustive reference sweeps all "
                             "889 width-16 quadruples at this length)")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI run (4096 cycles, 2 repeats, 150-cycle backend "
                             "workload, 12-design explorer sweep, 12-design synthesis "
                             "flow, 64-cycle adaptive search); report-only — never "
                             "fails the exit code on noisy shared runners")
    parser.add_argument("--output", type=Path, default=RESULT_PATH,
                        help=f"artifact path (default {RESULT_PATH})")
    args = parser.parse_args(argv)
    if args.smoke:
        args.cycles, args.repeats, args.backend_cycles = 4096, 2, 150
        args.explore_designs = 12
        args.multiplier_designs = 12
        args.synth_designs = 12
        args.adaptive_cycles = 64

    record = run_engine_comparison(cycles=args.cycles, repeats=args.repeats)
    backends = ("serial", "multiprocess") if args.backend == "both" else (args.backend,)
    chars = record["results"]["characterization_backends"] = run_backend_comparison(
        cycles=args.backend_cycles, workers=args.jobs, backends=backends)
    cache = record["results"]["result_cache"] = run_cache_comparison(
        cycles=args.backend_cycles)
    explore = record["results"]["explore_sweep"] = run_explore_comparison(
        max_designs=args.explore_designs)
    mul = record["results"]["multiplier_sweep"] = run_multiplier_sweep_comparison(
        max_designs=args.multiplier_designs)
    # Best-of floor: the two paths alternate long wall-time sections, so
    # a couple of extra repeats are what shields the recorded ratio from
    # scheduler noise on shared hosts.
    batched = record["results"]["batched_sweep"] = run_batched_sweep_comparison(
        max_designs=args.explore_designs, repeats=max(args.repeats, 4))
    synth = record["results"]["synth_flow"] = run_synth_flow_comparison(
        max_designs=args.synth_designs, repeats=max(args.repeats - 1, 2))
    adaptive = record["results"]["adaptive_search"] = run_adaptive_search_comparison(
        length=args.adaptive_cycles)
    # The two modes differ by a couple of percent at most, so the
    # section needs a workload long enough (and enough best-of repeats)
    # to resolve the ratio above host noise.
    tele = record["results"]["telemetry_overhead"] = run_telemetry_overhead_comparison(
        max_designs=8 if args.smoke else 16, repeats=max(args.repeats, 5))
    # The artifact's overall verdict covers every bar: the engine
    # speedup, (when the host can judge it) the backend speedup, the
    # batched planner being no slower than per-job execution, the
    # synthesis flow (vector kernels no slower, warm cache synthesizing
    # nothing), and the adaptive search (frontier recall at a fifth of
    # the space, warm re-run simulating nothing).
    record["engine_passed"] = record.pop("passed")
    record["passed"] = (record["engine_passed"] and chars.get("passed", True)
                        and batched.get("passed", True)
                        and synth.get("passed", True)
                        and adaptive.get("passed", True)
                        and tele.get("passed", True))
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    single = record["results"]["fast_sim_single_clock"]
    print(f"fast simulator, {record['design']}, {record['trace_cycles']} cycles:")
    print(f"  reference : {single['reference_s'] * 1e3:8.1f} ms")
    print(f"  compiled  : {single['compiled_s'] * 1e3:8.1f} ms")
    print(f"  speedup   : {single['speedup']:8.1f}x  "
          f"(target >= {record['speedup_target']:g}x)")
    print(f"characterization backends, {chars['jobs']} designs, {chars['trace_cycles']} cycles "
          f"({chars['simulator']} tier), {record['host']['cpu_count']} CPUs:")
    for backend, entry in chars["backends"].items():
        label = f"{backend}[{chars['workers']}]" if backend == "multiprocess" else backend
        print(f"  {label:<16}: {entry['wall_s'] * 1e3:8.1f} ms")
    if "speedup" in chars:
        verdict = ""
        if "passed" in chars:
            verdict = f"  (target >= {chars['speedup_target']:g}x)"
        elif "note" in chars:
            verdict = "  (host-bound, see note)"
        print(f"  speedup         : {chars['speedup']:8.2f}x{verdict}")
    print(f"result cache, {cache['jobs']} designs, {cache['trace_cycles']} cycles "
          f"({cache['simulator']} tier):")
    print(f"  cold (simulate) : {cache['cold_s'] * 1e3:8.1f} ms  "
          f"({cache['cold_misses']} misses)")
    print(f"  warm (from disk): {cache['warm_s'] * 1e3:8.1f} ms  "
          f"({cache['warm_hits']} hits, zero simulation)")
    print(f"  warm speedup    : {cache['warm_speedup']:8.1f}x")
    print(f"explorer sweep, {explore['designs']} designs x 4 clock points, "
          f"{explore['trace_cycles']} cycles (width {explore['width']}):")
    print(f"  cold (simulate) : {explore['cold_s'] * 1e3:8.1f} ms  "
          f"({explore['points_per_s']:.0f} points/s)")
    print(f"  warm (from disk): {explore['warm_s'] * 1e3:8.1f} ms  "
          f"({explore['warm_speedup']:.1f}x, zero simulation)")
    print(f"multiplier sweep, {mul['designs']} designs x 4 clock points, "
          f"{mul['trace_cycles']} cycles (width {mul['width']}):")
    print(f"  cold (simulate) : {mul['cold_s'] * 1e3:8.1f} ms  "
          f"({mul['points_per_s']:.0f} points/s)")
    print(f"  warm (from disk): {mul['warm_s'] * 1e3:8.1f} ms  "
          f"({mul['warm_speedup']:.1f}x, zero simulation)")
    print(f"batched sweep, {batched['designs']} designs x {batched['workloads']} "
          f"workloads x 4 clock points, {batched['trace_cycles']} cycles "
          f"(width {batched['width']}):")
    print(f"  per-job         : {batched['per_job_s'] * 1e3:8.1f} ms  "
          f"({batched['per_job_points_per_s']:.0f} points/s)")
    print(f"  batched planner : {batched['batched_s'] * 1e3:8.1f} ms  "
          f"({batched['batched_points_per_s']:.0f} points/s)")
    print(f"  speedup         : {batched['speedup']:8.2f}x  "
          f"(target >= {batched['speedup_target']:g}x)")
    print(f"synthesis flow, {synth['designs']} designs x 4 clock points, "
          f"{synth['trace_cycles']} cycles (width {synth['width']}, serial):")
    print(f"  reference       : {synth['reference_s'] * 1e3:8.1f} ms  "
          f"({synth['reference_designs_per_s']:.1f} designs/s)")
    print(f"  vector kernels  : {synth['vector_s'] * 1e3:8.1f} ms  "
          f"({synth['vector_speedup']:.2f}x, target >= "
          f"{synth['vector_speedup_target']:g}x)")
    print(f"  warm synth cache: {synth['warm_s'] * 1e3:8.1f} ms  "
          f"({synth['warm_speedup']:.2f}x, target >= "
          f"{synth['warm_speedup_target']:g}x, "
          f"{synth['warm_synthesized']} designs synthesized)")
    print(f"adaptive search, width {adaptive['width']}, "
          f"{adaptive['candidates']} candidates x {adaptive['clock_points']} "
          f"clock points, {adaptive['trace_cycles']} cycles:")
    print(f"  exhaustive      : {adaptive['exhaustive_s'] * 1e3:8.1f} ms  "
          f"(frontier {adaptive['reference_frontier']} points)")
    print(f"  adaptive        : {adaptive['adaptive_s'] * 1e3:8.1f} ms  "
          f"(simulated {adaptive['simulated']} designs = "
          f"{adaptive['fraction_simulated'] * 100:.1f}% of the space in "
          f"{adaptive['rounds']} rounds)")
    print(f"  recall          : {adaptive['recall']:8.3f}   "
          f"(target >= {adaptive['recall_target']:g} at <= "
          f"{adaptive['budget_fraction_target'] * 100:g}% of the space)")
    print(f"  warm re-run     : {adaptive['warm_s'] * 1e3:8.1f} ms  "
          f"({adaptive['warm_simulated']} jobs simulated)")
    print(f"telemetry overhead, {tele['designs']} designs x {tele['workloads']} "
          f"workloads x 4 clock points, {tele['trace_cycles']} cycles "
          f"(width {tele['width']}, batched serial):")
    print(f"  tracing off     : {tele['plain_s'] * 1e3:8.1f} ms")
    print(f"  tracing on      : {tele['traced_s'] * 1e3:8.1f} ms  "
          f"(spans + metrics + manifest)")
    print(f"  overhead        : {tele['overhead']:8.3f}x  "
          f"(target <= {tele['overhead_target']:g}x)")
    print(f"[written to {args.output}]")
    return 0 if (record["passed"] or args.smoke) else 1


if __name__ == "__main__":
    sys.exit(main())
