"""Throughput benchmarks (A4): how fast the substrate itself is.

These are classic pytest-benchmark micro-benchmarks (multiple rounds) for
the operations the experiments lean on: vectorised behavioural ISA
characterisation, zero-delay netlist evaluation, the fast timing
simulator and synthesis of a full design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.synth.flow import synthesize
from repro.timing.fast_sim import FastTimingSimulator
from repro.workloads.generators import uniform_workload

CONFIG = ISAConfig.from_quadruple((8, 0, 0, 4))


@pytest.fixture(scope="module")
def operands():
    trace = uniform_workload(20000, width=32, seed=3)
    return trace


@pytest.fixture(scope="module")
def synthesized():
    return synthesize(CONFIG)


@pytest.mark.benchmark(group="throughput")
def test_behavioural_isa_throughput(benchmark, operands):
    """Vectorised golden-model characterisation (20k additions per round)."""
    adder = InexactSpeculativeAdder(CONFIG)
    result = benchmark(adder.add_many, operands.a, operands.b)
    assert result.shape == operands.a.shape


@pytest.mark.benchmark(group="throughput")
def test_structural_stats_throughput(benchmark, operands):
    """Golden model with per-block fault attribution (Fig. 10 structural series)."""
    adder = InexactSpeculativeAdder(CONFIG)
    result, stats = benchmark(adder.add_many_with_stats, operands.a, operands.b)
    assert stats.cycles == operands.length


@pytest.mark.benchmark(group="throughput")
def test_netlist_logic_evaluation_throughput(benchmark, operands, synthesized):
    """Zero-delay gate-level evaluation of the synthesized ISA netlist."""
    chunk = {"A": operands.a[:4000], "B": operands.b[:4000],
             "cin": np.zeros(4000, dtype=np.uint64)}
    words = benchmark(synthesized.netlist.compute_words, chunk)
    assert words.shape == (4000,)


@pytest.mark.benchmark(group="throughput")
def test_fast_timing_simulation_throughput(benchmark, operands, synthesized):
    """Vectorised two-vector timing simulation at the paper's 15% CPR clock."""
    simulator = FastTimingSimulator(synthesized.netlist, synthesized.annotation)
    trace_operands = {"A": operands.a[:3000], "B": operands.b[:3000],
                      "cin": np.zeros(3000, dtype=np.uint64)}
    trace = benchmark(simulator.run_trace, trace_operands, 2.55e-10)
    assert trace.cycles == 2999


@pytest.mark.benchmark(group="throughput")
def test_synthesis_flow_throughput(benchmark):
    """Full synthesis flow (generate, optimise, size, annotate) of one ISA."""
    design = benchmark(synthesize, ISAConfig.from_quadruple((16, 2, 1, 6)))
    assert design.netlist.num_gates > 0
