"""Benchmark regenerating Fig. 8: average value-level predictive error (AVPE).

Uses the same trained per-bit classifiers as the Fig. 7 benchmark
(experiment E2 in DESIGN.md) and reports how far the silver values
reconstructed from predicted timing classes deviate from the measured
silver values.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_fig7_abper import shared_prediction_study
from benchmarks.conftest import write_result


@pytest.mark.benchmark(group="figures")
def test_fig8_avpe(benchmark, bench_config, results_dir):
    """Regenerate Fig. 8 and check the paper's qualitative claims about AVPE."""
    result = benchmark.pedantic(shared_prediction_study, args=(bench_config,),
                                rounds=1, iterations=1)
    write_result(results_dir, "fig8_avpe", result.format_avpe_table())

    rows = result.rows
    # AVPE is reported with the same 1e-6 log floor as the paper.
    assert min(row.avpe for row in rows) >= 1e-6
    # Paper: designs without timing errors have negligible AVPE; robust
    # low-accuracy ISAs at 5% CPR stay at the floor.
    assert result.row("(8,0,0,0)", 0.05).avpe <= 1e-4
    # Paper: a handful of designs show large AVPE because mispredicted bits
    # can sit at high significance; most entries stay below ~1.
    assert sum(1 for row in rows if row.avpe < 1.0) / len(rows) >= 0.7
