"""Ablation A1: slack-driven sizing on vs off.

The sizing step is what makes every design's path-delay profile hug the
0.3 ns constraint (the "slack wall").  Without it the shallow ISA designs
keep huge margins and overclocking produces almost no timing errors, so
the joint-error picture of Fig. 9 collapses to the structural errors.
This ablation quantifies that.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import write_result
from repro.analysis.report import format_log_value, format_table
from repro.core.config import ISAConfig
from repro.experiments.common import characterize_design
from repro.experiments.designs import exact_entry, isa_entry
from repro.experiments.fig9_rms import fig9_rows_from_characterization
from repro.synth.flow import SynthesisOptions

ABLATION_DESIGNS = [isa_entry((8, 0, 0, 4)), isa_entry((16, 2, 0, 4)), exact_entry()]


def run_sizing_ablation(config):
    """Fig. 9-style rows for a design subset with sizing enabled and disabled."""
    rows = {}
    trace = config.characterization_trace()
    for label, enable in (("sized", True), ("unsized", False)):
        variant = replace(config, synthesis=SynthesisOptions(enable_sizing=enable))
        for entry in ABLATION_DESIGNS:
            characterization = characterize_design(entry, trace, variant)
            for row in fig9_rows_from_characterization(characterization, variant):
                rows[(label, row.design, row.cpr)] = row
    return rows


@pytest.mark.benchmark(group="ablations")
def test_ablation_sizing(benchmark, bench_config, results_dir):
    """Disabling the sizing step removes most timing errors of the shallow designs."""
    config = bench_config.scaled_down(0.5)
    rows = benchmark.pedantic(run_sizing_ablation, args=(config,), rounds=1, iterations=1)

    table_rows = []
    for (label, design, cpr), row in sorted(rows.items()):
        table_rows.append((label, design, f"{cpr * 100:g}%",
                           format_log_value(row.timing_rms * 100.0),
                           format_log_value(row.joint_rms * 100.0)))
    write_result(results_dir, "ablation_sizing",
                 format_table(["flow", "design", "CPR", "timing RMS RE (%)", "joint RMS RE (%)"],
                              table_rows, title="Ablation A1 — slack-driven sizing on/off"))

    # For a design that meets the constraint with nominal cells, sizing only
    # consumes slack, so disabling it can only reduce timing errors.  (The
    # exact adder and the deepest ISAs are sped *up* by synthesis, so the
    # relation does not apply to them.)
    for cpr in config.clock_plan.cpr_levels:
        sized = rows[("sized", "(8,0,0,4)", cpr)].timing_rms
        unsized = rows[("unsized", "(8,0,0,4)", cpr)].timing_rms
        assert unsized <= sized + 1e-12
    # Sizing is a purely timing-level transformation: structural errors are untouched.
    for (label, design, cpr), row in rows.items():
        other = "unsized" if label == "sized" else "sized"
        assert row.structural_rms == rows[(other, design, cpr)].structural_rms
