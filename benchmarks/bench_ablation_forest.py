"""Ablation A3: random-forest size for the bit-level timing-error model.

The paper motivates Random Forest Classification as a balance between
single-decision-tree overfitting and training cost.  This ablation trains
the per-bit model for one timing-error-prone design with 1, 4 and 12
trees and compares ABPER / AVPE on a held-out trace.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.report import format_log_value, format_table
from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.ml.model import BitLevelTimingModel, TimingModelOptions
from repro.synth.flow import synthesize
from repro.timing.clocking import ClockPlan
from repro.timing.event_sim import EventDrivenSimulator
from repro.workloads.generators import uniform_workload

FOREST_SIZES = (1, 4, 12)


def run_forest_ablation(train_length, eval_length):
    """ABPER/AVPE of the per-bit model for several ensemble sizes."""
    plan = ClockPlan.paper()
    period = plan.period_for(0.15)
    config = ISAConfig.from_quadruple((16, 1, 0, 2))
    design = synthesize(config)
    adder = InexactSpeculativeAdder(config)
    simulator = EventDrivenSimulator(design.netlist, design.annotation)

    train = uniform_workload(train_length, width=32, seed=41)
    evaluation = uniform_workload(eval_length, width=32, seed=42)
    train_gold = adder.add_many(train.a, train.b)
    eval_gold = adder.add_many(evaluation.a, evaluation.b)
    train_timing = simulator.run_trace(train.as_operands(), period)
    eval_timing = simulator.run_trace(evaluation.as_operands(), period)

    metrics = {}
    for n_estimators in FOREST_SIZES:
        options = TimingModelOptions(n_estimators=n_estimators, max_depth=8, seed=7)
        model = BitLevelTimingModel(design=config.name, clock_period=period,
                                    output_width=33, options=options)
        model.fit(train, train_gold, train_timing)
        metrics[n_estimators] = model.evaluate(evaluation, eval_gold, eval_timing)
    return metrics


@pytest.mark.benchmark(group="ablations")
def test_ablation_forest_size(benchmark, bench_config, results_dir):
    """Larger forests must not be (meaningfully) worse than a single tree."""
    train_length = max(bench_config.training_length // 2, 300)
    eval_length = max(bench_config.evaluation_length // 2, 250)
    metrics = benchmark.pedantic(run_forest_ablation, args=(train_length, eval_length),
                                 rounds=1, iterations=1)

    table_rows = [(n, format_log_value(values["abper"]), format_log_value(values["avpe"]))
                  for n, values in sorted(metrics.items())]
    write_result(results_dir, "ablation_forest",
                 format_table(["trees", "ABPER", "AVPE"], table_rows,
                              title="Ablation A3 — forest size for ISA (16,1,0,2) @ 15% CPR"))

    single_tree = metrics[1]["abper"]
    largest = metrics[max(FOREST_SIZES)]["abper"]
    assert largest <= single_tree * 1.5 + 1e-3
    for values in metrics.values():
        assert values["abper"] <= 0.1
