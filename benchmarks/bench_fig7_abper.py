"""Benchmark regenerating Fig. 7: average bit-level prediction error rate (ABPER).

Trains the per-bit random-forest timing-error classifiers for every
design and CPR level and evaluates them on a held-out trace (experiment
E1 in DESIGN.md).  The shared prediction study also serves Fig. 8; it is
cached in the pytest session so the two benchmarks train only once.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.prediction import run_prediction_study

_CACHE = {}


def shared_prediction_study(config):
    """Run the Fig. 7/8 prediction study once per benchmark session."""
    key = id(config)
    if key not in _CACHE:
        _CACHE[key] = run_prediction_study(config)
    return _CACHE[key]


@pytest.mark.benchmark(group="figures")
def test_fig7_abper(benchmark, bench_config, results_dir):
    """Regenerate Fig. 7 and check the paper's qualitative claims about ABPER."""
    result = benchmark.pedantic(shared_prediction_study, args=(bench_config,),
                                rounds=1, iterations=1)
    write_result(results_dir, "fig7_abper", result.format_abper_table())

    rows = result.rows
    # Paper: "almost all ABPER values are around or less than 1%".
    fraction_below_2pct = sum(1 for row in rows if row.abper <= 0.02) / len(rows)
    assert fraction_below_2pct >= 0.75
    # Paper: ABPER at higher CPR is larger than (or equal to) at lower CPR.
    for design in {row.design for row in rows}:
        series = [result.row(design, cpr).abper for cpr in (0.05, 0.10, 0.15)]
        assert series[0] <= series[2] + 1e-9
    # Error-free designs are reported at the 1e-6 floor, as in the paper.
    assert min(row.abper for row in rows) >= 1e-6
