"""Ablation A2: event-driven (glitch-aware) vs fast (no-glitch) timing simulation.

The event-driven simulator is the reference; the vectorised fast
simulator ignores glitches and is therefore optimistic about timing-error
rates.  This ablation measures both on the same design/trace and reports
the gap, justifying the choice of the event-driven simulator for the
figure experiments.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.report import format_table
from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.synth.flow import synthesize
from repro.timing.event_sim import EventDrivenSimulator
from repro.timing.fast_sim import FastTimingSimulator
from repro.workloads.generators import uniform_workload


def run_simulator_comparison(length):
    """Cycle/bit error rates of both simulators on ISA (16,2,0,4) at the paper's CPRs."""
    from repro.timing.clocking import ClockPlan
    plan = ClockPlan.paper()
    config = ISAConfig.from_quadruple((16, 2, 0, 4))
    design = synthesize(config)
    trace = uniform_workload(length, width=32, seed=31)
    operands = trace.as_operands()
    event = EventDrivenSimulator(design.netlist, design.annotation)
    fast = FastTimingSimulator(design.netlist, design.annotation)
    event_traces = event.run_trace_multi(operands, plan.periods)
    fast_traces = fast.run_trace_multi(operands, plan.periods)
    comparison = {}
    for cpr, period in plan.items():
        comparison[cpr] = {
            "event_cycle": event_traces[period].cycle_error_rate(),
            "fast_cycle": fast_traces[period].cycle_error_rate(),
            "event_bit": float(event_traces[period].bit_error_rate().mean()),
            "fast_bit": float(fast_traces[period].bit_error_rate().mean()),
        }
    return comparison


@pytest.mark.benchmark(group="ablations")
def test_ablation_simulator_agreement(benchmark, bench_config, results_dir):
    """The two simulators agree on the regime; the fast one is systematically optimistic."""
    length = max(bench_config.characterization_length // 2, 200)
    comparison = benchmark.pedantic(run_simulator_comparison, args=(length,),
                                    rounds=1, iterations=1)

    table_rows = [(f"{cpr * 100:g}%",
                   f"{values['event_cycle']:.4f}", f"{values['fast_cycle']:.4f}",
                   f"{values['event_bit']:.5f}", f"{values['fast_bit']:.5f}")
                  for cpr, values in sorted(comparison.items())]
    write_result(results_dir, "ablation_simulator",
                 format_table(["CPR", "event cycle-rate", "fast cycle-rate",
                               "event ABPER-like", "fast ABPER-like"],
                              table_rows,
                              title="Ablation A2 — event-driven vs fast timing simulation"))

    for values in comparison.values():
        # both remain in a physically sensible range
        assert 0.0 <= values["fast_cycle"] <= 1.0
        assert 0.0 <= values["event_cycle"] <= 1.0
    # Error rates grow with CPR for both simulators.
    cycle_rates_event = [comparison[cpr]["event_cycle"] for cpr in sorted(comparison)]
    assert cycle_rates_event == sorted(cycle_rates_event)
