"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's figures (or an ablation)
and writes the resulting table to ``benchmarks/results/`` so the numbers
can be compared against the paper (see EXPERIMENTS.md).

Trace lengths default to a laptop-friendly fraction of the full study and
can be scaled with the ``REPRO_BENCH_SCALE`` environment variable
(e.g. ``REPRO_BENCH_SCALE=4`` for a higher-fidelity overnight run).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import StudyConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Default trace lengths of the benchmark harness (multiplied by REPRO_BENCH_SCALE).
BENCH_CHARACTERIZATION = 1500
BENCH_TRAINING = 900
BENCH_EVALUATION = 700


def bench_scale() -> float:
    """Scale factor applied to every benchmark trace length."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_config() -> StudyConfig:
    """Study configuration shared by the figure benchmarks (event-driven simulator)."""
    scale = bench_scale()
    return StudyConfig(
        characterization_length=max(int(BENCH_CHARACTERIZATION * scale), 64),
        training_length=max(int(BENCH_TRAINING * scale), 64),
        evaluation_length=max(int(BENCH_EVALUATION * scale), 64),
        seed=2017,
        simulator="event",
    )


@pytest.fixture(scope="session")
def fast_bench_config(bench_config) -> StudyConfig:
    """Same study but with the fast (no-glitch) simulator, used by ablations."""
    from dataclasses import replace
    return replace(bench_config, simulator="fast")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated tables."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
