"""Extension benchmark: workload sensitivity of the joint error.

The paper characterises with uniform random inputs and motivates the work
with IoT/multimedia data, which is far from uniform.  This extension
sweeps the workload generators over one balanced ISA design at 15 % CPR
and reports how the structural/timing split moves — correlated,
low-activity inputs exercise fewer long paths and fewer speculation
faults, so both error sources shrink.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.report import format_log_value, format_table
from repro.core.combination import combine_errors
from repro.core.config import ISAConfig
from repro.core.isa import InexactSpeculativeAdder
from repro.synth.flow import synthesize
from repro.timing.clocking import ClockPlan
from repro.timing.event_sim import EventDrivenSimulator
from repro.workloads.generators import (
    correlated_workload,
    gaussian_workload,
    sparse_workload,
    uniform_workload,
)

WORKLOADS = {
    "uniform": uniform_workload,
    "correlated": correlated_workload,
    "gaussian": gaussian_workload,
    "sparse": sparse_workload,
}


def run_workload_sweep(length):
    """Structural/timing/joint RMS RE of ISA (8,0,0,4) at 15% CPR per workload."""
    period = ClockPlan.paper().period_for(0.15)
    config = ISAConfig.from_quadruple((8, 0, 0, 4))
    design = synthesize(config)
    adder = InexactSpeculativeAdder(config)
    simulator = EventDrivenSimulator(design.netlist, design.annotation)

    results = {}
    for name, generator in WORKLOADS.items():
        trace = generator(length, width=32, seed=77)
        gold = adder.add_many(trace.a, trace.b)
        diamond = trace.a + trace.b
        timing = simulator.run_trace(trace.as_operands(), period)
        errors = combine_errors(diamond[1:], gold[1:], timing.sampled_words)
        results[name] = errors.rms_relative_errors()
    return results


@pytest.mark.benchmark(group="extensions")
def test_workload_sensitivity(benchmark, bench_config, results_dir):
    """Correlated/sparse workloads reduce speculation faults relative to uniform inputs."""
    length = max(bench_config.characterization_length // 2, 300)
    results = benchmark.pedantic(run_workload_sweep, args=(length,), rounds=1, iterations=1)

    table_rows = [(name,
                   format_log_value(values["structural"] * 100.0),
                   format_log_value(values["timing"] * 100.0),
                   format_log_value(values["joint"] * 100.0))
                  for name, values in results.items()]
    write_result(results_dir, "workload_sensitivity",
                 format_table(["workload", "structural RMS RE (%)", "timing RMS RE (%)",
                               "joint RMS RE (%)"], table_rows,
                              title="Extension — workload sensitivity of ISA (8,0,0,4) @ 15% CPR"))

    assert set(results) == set(WORKLOADS)
    # A correlated low-activity stream produces no more structural error than
    # uniform random data (long carry-propagate patterns become rarer).
    assert results["correlated"]["structural"] <= results["uniform"]["structural"] * 1.5
    for values in results.values():
        assert values["joint"] >= 0.0
