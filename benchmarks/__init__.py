"""Benchmark harness regenerating the paper's figures and ablations."""
