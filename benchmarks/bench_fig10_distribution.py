"""Benchmark regenerating Fig. 10: bit-level error distribution of ISA (8,0,0,4).

Experiment E4 in DESIGN.md: structural errors are attributed to bit
positions by the behavioural model, timing errors by the overclocked
(15 % CPR) gate-level simulation of the same trace.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.experiments.fig10_distribution import run_fig10


@pytest.mark.benchmark(group="figures")
def test_fig10_bit_error_distribution(benchmark, bench_config, results_dir):
    """Regenerate Fig. 10 and check the paper's qualitative observations."""
    result = benchmark.pedantic(run_fig10, args=(bench_config,), rounds=1, iterations=1)
    write_result(results_dir, "fig10_distribution", result.format_table())

    distribution = result.distribution
    width = distribution.width

    # The first speculative path (LSB block) uses the adder carry-in directly,
    # so the low bits carry no structural error (paper, Section V-D).
    assert distribution.structural[:4].sum() == 0.0
    # Structural errors appear on the error-reduction bits of the preceding
    # sums, i.e. just below the block boundaries at 8, 16 and 24.
    for boundary in (8, 16, 24):
        assert distribution.structural[boundary - 4:boundary].sum() > 0.0
    # Structural errors never reach the MSB region above the last boundary.
    assert distribution.structural[25:].sum() == 0.0
    # Timing errors exist at 15% CPR for this design and are NOT confined to
    # the MSBs: the speculative structure spreads them across the paths.
    assert distribution.timing.sum() > 0.0
    lower_half_timing = distribution.timing[:width // 2].sum()
    assert lower_half_timing > 0.0
