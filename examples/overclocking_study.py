"""Overclocking study: combine structural and timing errors for one design.

Walks through the full methodology of the paper for a single ISA design:

1. synthesize the design to the 0.3 ns constraint (gate sizing included),
2. run delay-annotated timing simulation at 5/10/15 % clock-period
   reduction — both traces go through the characterization job pipeline
   of :mod:`repro.runtime`, so the design is synthesized once and the
   study parallelises/caches like every other driver,
3. combine structural and timing errors (diamond / gold / silver outputs),
4. train the per-bit random-forest timing-error predictor and report its
   ABPER / AVPE,
5. print the bit-position error distribution (the paper's Fig. 10 view).

Run with::

    python examples/overclocking_study.py [quadruple]   # default 8,0,0,4
"""

from __future__ import annotations

import sys

from repro import (
    BitLevelTimingModel,
    CharacterizationJob,
    ClockPlan,
    ISAConfig,
    TimingModelOptions,
    combine_errors,
    run_jobs,
    uniform_workload,
)
from repro.analysis.distribution import bit_error_distribution
from repro.analysis.report import format_log_value, format_table
from repro.experiments.designs import isa_entry

CHARACTERIZATION_VECTORS = 2500
TRAINING_VECTORS = 1500


def parse_quadruple(argv) -> tuple:
    if len(argv) > 1:
        return tuple(int(part) for part in argv[1].split(","))
    return (8, 0, 0, 4)


def main(argv=None) -> None:
    quadruple = parse_quadruple(argv or sys.argv)
    config = ISAConfig.from_quadruple(quadruple)
    plan = ClockPlan.paper()
    entry = isa_entry(quadruple)

    trace = uniform_workload(CHARACTERIZATION_VECTORS, width=config.width, seed=21)
    train = uniform_workload(TRAINING_VECTORS, width=config.width, seed=22)

    print(f"Characterizing ISA {config.name} over {trace.transitions} transitions "
          f"at {plan.labels()} CPR (event-driven tier, job pipeline)...")
    characterization, training = run_jobs([
        CharacterizationJob(entry=entry, trace=trace, clock_periods=plan.periods,
                            simulator="event", collect_structural_stats=True),
        CharacterizationJob(entry=entry, trace=train, clock_periods=plan.periods,
                            simulator="event"),
    ])
    design = characterization.synthesized
    print(design.describe())

    gold = characterization.gold_words
    diamond = characterization.diamond_words
    structural_stats = characterization.structural_stats
    timing_traces = characterization.timing_traces

    rows = []
    for cpr, period in plan.items():
        errors = combine_errors(diamond[1:], gold[1:], timing_traces[period].sampled_words)
        rms = errors.rms_relative_errors()
        rows.append((f"{cpr * 100:g}%",
                     format_log_value(rms["structural"] * 100),
                     format_log_value(rms["timing"] * 100),
                     format_log_value(rms["joint"] * 100),
                     f"{errors.compensation_rate():.2f}"))
    print("\n" + format_table(
        ["CPR", "structural RMS RE (%)", "timing RMS RE (%)", "joint RMS RE (%)",
         "compensating-cycle fraction"],
        rows, title=f"Error combination for ISA {config.name}"))

    # --- timing-error prediction (paper Section III) -------------------- #
    train_gold = training.gold_words
    train_timing = training.timing_traces
    prediction_rows = []
    for cpr, period in plan.items():
        model = BitLevelTimingModel(design=config.name, clock_period=period,
                                    output_width=config.width + 1,
                                    options=TimingModelOptions(n_estimators=6))
        model.fit(train, train_gold, train_timing[period])
        metrics = model.evaluate(trace, gold, timing_traces[period])
        prediction_rows.append((f"{cpr * 100:g}%",
                                format_log_value(metrics["abper"]),
                                format_log_value(metrics["avpe"]),
                                len(model.trained_bits)))
    print("\n" + format_table(["CPR", "ABPER", "AVPE", "bits with classifiers"],
                              prediction_rows,
                              title="Bit-level timing-error prediction model"))

    # --- bit-position distribution (paper Fig. 10) ---------------------- #
    worst_period = plan.period_for(plan.cpr_levels[-1])
    distribution = bit_error_distribution(config.name, config.width, structural_stats,
                                          timing_traces[worst_period])
    busy = [(position, f"{structural:.4f}", f"{timing:.4f}")
            for position, structural, timing in distribution.rows()
            if structural > 0 or timing > 0]
    print("\n" + format_table(
        ["bit position", "structural error rate", "timing error rate"], busy,
        title=f"Bit-position error distribution at {plan.cpr_levels[-1] * 100:g}% CPR "
              f"(dominant source: {distribution.dominant_source()})"))


if __name__ == "__main__":
    main()
