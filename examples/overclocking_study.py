"""Overclocking study: combine structural and timing errors for one design.

Walks through the full methodology of the paper for a single ISA design:

1. synthesize the design to the 0.3 ns constraint (gate sizing included),
2. run delay-annotated timing simulation at 5/10/15 % clock-period
   reduction,
3. combine structural and timing errors (diamond / gold / silver outputs),
4. train the per-bit random-forest timing-error predictor and report its
   ABPER / AVPE,
5. print the bit-position error distribution (the paper's Fig. 10 view).

Run with::

    python examples/overclocking_study.py [quadruple]   # default 8,0,0,4
"""

from __future__ import annotations

import sys

from repro import (
    BitLevelTimingModel,
    ClockPlan,
    ISAConfig,
    InexactSpeculativeAdder,
    TimingModelOptions,
    combine_errors,
    synthesize,
    uniform_workload,
)
from repro.analysis.distribution import bit_error_distribution
from repro.analysis.report import format_log_value, format_table
from repro.timing.event_sim import EventDrivenSimulator

CHARACTERIZATION_VECTORS = 2500
TRAINING_VECTORS = 1500


def parse_quadruple(argv) -> tuple:
    if len(argv) > 1:
        return tuple(int(part) for part in argv[1].split(","))
    return (8, 0, 0, 4)


def main(argv=None) -> None:
    quadruple = parse_quadruple(argv or sys.argv)
    config = ISAConfig.from_quadruple(quadruple)
    plan = ClockPlan.paper()

    print(f"Synthesizing ISA {config.name} for the {plan.safe_period * 1e9:.1f} ns constraint...")
    design = synthesize(config)
    print(design.describe())

    adder = InexactSpeculativeAdder(config)
    simulator = EventDrivenSimulator(design.netlist, design.annotation)

    trace = uniform_workload(CHARACTERIZATION_VECTORS, width=config.width, seed=21)
    gold, structural_stats = adder.add_many_with_stats(trace.a, trace.b)
    diamond = trace.a + trace.b
    print(f"\nRunning delay-annotated simulation over {trace.transitions} transitions "
          f"at {plan.labels()} CPR...")
    timing_traces = simulator.run_trace_multi(trace.as_operands(), plan.periods)

    rows = []
    for cpr, period in plan.items():
        errors = combine_errors(diamond[1:], gold[1:], timing_traces[period].sampled_words)
        rms = errors.rms_relative_errors()
        rows.append((f"{cpr * 100:g}%",
                     format_log_value(rms["structural"] * 100),
                     format_log_value(rms["timing"] * 100),
                     format_log_value(rms["joint"] * 100),
                     f"{errors.compensation_rate():.2f}"))
    print("\n" + format_table(
        ["CPR", "structural RMS RE (%)", "timing RMS RE (%)", "joint RMS RE (%)",
         "compensating-cycle fraction"],
        rows, title=f"Error combination for ISA {config.name}"))

    # --- timing-error prediction (paper Section III) -------------------- #
    train = uniform_workload(TRAINING_VECTORS, width=config.width, seed=22)
    train_gold = adder.add_many(train.a, train.b)
    train_timing = simulator.run_trace_multi(train.as_operands(), plan.periods)
    prediction_rows = []
    for cpr, period in plan.items():
        model = BitLevelTimingModel(design=config.name, clock_period=period,
                                    output_width=config.width + 1,
                                    options=TimingModelOptions(n_estimators=6))
        model.fit(train, train_gold, train_timing[period])
        metrics = model.evaluate(trace, gold, timing_traces[period])
        prediction_rows.append((f"{cpr * 100:g}%",
                                format_log_value(metrics["abper"]),
                                format_log_value(metrics["avpe"]),
                                len(model.trained_bits)))
    print("\n" + format_table(["CPR", "ABPER", "AVPE", "bits with classifiers"],
                              prediction_rows,
                              title="Bit-level timing-error prediction model"))

    # --- bit-position distribution (paper Fig. 10) ---------------------- #
    worst_period = plan.period_for(plan.cpr_levels[-1])
    distribution = bit_error_distribution(config.name, config.width, structural_stats,
                                          timing_traces[worst_period])
    busy = [(position, f"{structural:.4f}", f"{timing:.4f}")
            for position, structural, timing in distribution.rows()
            if structural > 0 or timing > 0]
    print("\n" + format_table(
        ["bit position", "structural error rate", "timing error rate"], busy,
        title=f"Bit-position error distribution at {plan.cpr_levels[-1] * 100:g}% CPR "
              f"(dominant source: {distribution.dominant_source()})"))


if __name__ == "__main__":
    main()
