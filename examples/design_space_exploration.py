"""Design-space exploration: accuracy vs. delay vs. area across ISA configurations.

The paper selects its twelve designs as "the best implementations fitting
the 0.3 ns timing constraint".  This example sweeps a grid of ISA
configurations through the synthesis flow, characterises their structural
accuracy behaviourally, and prints the Pareto frontier (RMS relative
error vs. critical-path delay, with gate count as an area proxy) that
such a selection would be made from.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro import ISAConfig, InexactSpeculativeAdder, SynthesisOptions, synthesize
from repro.analysis.metrics import rms_relative_error
from repro.analysis.report import format_table

BLOCK_SIZES = (8, 16)
SPEC_SIZES = (0, 2, 4)
CORRECTIONS = (0, 1)
REDUCTIONS = (0, 4)
VECTORS = 100_000


def explore() -> list:
    """Synthesize and characterise every configuration of the grid."""
    rng = np.random.default_rng(7)
    a = rng.integers(0, 2**32, VECTORS, dtype=np.uint64)
    b = rng.integers(0, 2**32, VECTORS, dtype=np.uint64)
    exact = a + b

    rows = []
    options = SynthesisOptions()
    for block, spec, correction, reduction in product(BLOCK_SIZES, SPEC_SIZES,
                                                      CORRECTIONS, REDUCTIONS):
        if spec > block or correction > block or reduction > block:
            continue
        config = ISAConfig(width=32, block_size=block, spec_size=spec,
                           correction=correction, reduction=reduction)
        design = synthesize(config, options)
        gold = InexactSpeculativeAdder(config).add_many(a, b)
        rows.append({
            "name": config.name,
            "rms_re": rms_relative_error(exact, gold),
            "delay_ps": design.critical_path_delay * 1e12,
            "gates": design.netlist.num_gates,
            "meets": design.critical_path_delay <= options.clock_constraint + 1e-15,
        })
    return rows


def pareto_frontier(rows: list) -> set:
    """Configurations not dominated in (RMS RE, delay, gates)."""
    frontier = set()
    for candidate in rows:
        dominated = any(
            other["rms_re"] <= candidate["rms_re"]
            and other["delay_ps"] <= candidate["delay_ps"]
            and other["gates"] <= candidate["gates"]
            and (other["rms_re"], other["delay_ps"], other["gates"])
            != (candidate["rms_re"], candidate["delay_ps"], candidate["gates"])
            for other in rows)
        if not dominated:
            frontier.add(candidate["name"])
    return frontier


def main() -> None:
    rows = explore()
    frontier = pareto_frontier(rows)
    table = [
        (row["name"],
         f"{row['rms_re'] * 100:.2e}",
         f"{row['delay_ps']:.0f}",
         row["gates"],
         "yes" if row["meets"] else "NO",
         "*" if row["name"] in frontier else "")
        for row in sorted(rows, key=lambda row: row["rms_re"])
    ]
    print(format_table(
        ["design", "RMS RE (%)", "critical path (ps)", "gates", "meets 0.3 ns", "Pareto"],
        table, title="ISA design-space exploration (structural accuracy vs. circuit cost)"))
    print(f"\n{len(frontier)} Pareto-optimal configurations out of {len(rows)} explored.")


if __name__ == "__main__":
    main()
