"""Design-space exploration: accuracy vs. cost vs. clock across ISA spaces.

The paper selects its twelve designs as "the best implementations fitting
the 0.3 ns timing constraint".  This example reruns that selection as a
search problem with :mod:`repro.explore`: enumerate a constrained slice
of the legal quadruple space, sweep it — together with the exact
baseline — over the paper's overclocking points through the cached job
pipeline, and print the Pareto frontier (exactness guarantee, joint RMS
relative error, gates, area, clock period) with nearest-paper-design
annotations.

The same exploration is available from the command line as
``repro-explore``; this script shows the library API the CLI is built
from.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.explore import (
    DesignSpace,
    SweepSpec,
    aggregate_points,
    pareto_frontier,
    rank_frontier,
    run_sweep,
    sweep_clock_plan,
)
from repro.explore.cli import frontier_table
from repro.workloads.generators import WorkloadSpec

WIDTH = 32
MAX_DESIGNS = 24
VECTORS = 4096


def main() -> None:
    # The paper's own slice of the space: 4x8 and 2x16-bit blocks, with a
    # cost cap on the speculation/correction/reduction overhead.
    space = DesignSpace(width=WIDTH, block_sizes=(8, 16), max_overhead_bits=12)
    entries = space.entries(max_designs=MAX_DESIGNS)
    print(f"space: {space.describe()}")

    spec = SweepSpec(
        entries=tuple(entries),
        clock_plan=sweep_clock_plan(),  # safe period + 5/10/15 % CPR
        workloads=(WorkloadSpec("uniform", VECTORS, width=WIDTH, seed=7),),
        simulator="fast",
        width=WIDTH,
    )
    print(f"sweep: {spec.describe()}\n")
    result = run_sweep(spec)

    candidates = aggregate_points(result.points)
    ranked = rank_frontier(pareto_frontier(candidates))
    print(frontier_table(ranked, total_candidates=len(candidates)))
    print(f"\n{len(ranked)} Pareto-optimal (design x CPR) points out of "
          f"{len(candidates)} explored.")


if __name__ == "__main__":
    main()
