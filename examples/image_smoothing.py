"""Multimedia application: image smoothing with overclocked inexact adders.

The paper argues that the RMS relative error is the right metric because
it is proportional to the SNR of multimedia workloads.  This example
makes that concrete: a synthetic grayscale image is smoothed with a
box-filter whose accumulations run on (a) an exact adder, (b) an ISA, and
(c) an overclocked ISA, and the resulting PSNR is reported for each.

The pixel accumulations are mapped onto the 32-bit adders by operating on
fixed-point pixel sums scaled into the upper bits, which is how such
accelerators use wide approximate adders in practice.

Run with::

    python examples/image_smoothing.py
"""

from __future__ import annotations

import numpy as np

from repro import ClockPlan, ISAConfig, InexactSpeculativeAdder, synthesize
from repro.analysis.report import format_table
from repro.timing.event_sim import EventDrivenSimulator

IMAGE_SIZE = 48
PIXEL_SCALE = 1 << 20  # place 8-bit pixels in the upper half of the 32-bit adder


def synthetic_image(size: int = IMAGE_SIZE, seed: int = 5) -> np.ndarray:
    """A smooth synthetic scene (gradient + blobs) plus sensor noise, 8-bit."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:size, 0:size]
    scene = 96 + 64 * np.sin(x / 7.0) * np.cos(y / 9.0) + 0.5 * x
    noise = rng.normal(0, 6, size=(size, size))
    return np.clip(scene + noise, 0, 255).astype(np.uint64)


def box_filter_with_adder(image: np.ndarray, add_pairs) -> np.ndarray:
    """3x3 box filter whose additions are delegated to ``add_pairs``.

    ``add_pairs(a, b)`` must accept two uint64 arrays of scaled pixel values
    and return their (possibly approximate) sums.
    """
    padded = np.pad(image, 1, mode="edge") * np.uint64(PIXEL_SCALE)
    height, width = image.shape
    accumulator = np.zeros((height, width), dtype=np.uint64)
    for dy in range(3):
        for dx in range(3):
            window = padded[dy:dy + height, dx:dx + width]
            accumulator = add_pairs(accumulator.ravel(), window.ravel()).reshape(height, width)
    return (accumulator // np.uint64(9 * PIXEL_SCALE)).astype(np.float64)


def psnr(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (255 full scale)."""
    mse = float(np.mean((reference - candidate) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 ** 2 / mse)


def main() -> None:
    image = synthetic_image()
    config = ISAConfig.from_quadruple((8, 0, 0, 4))
    adder = InexactSpeculativeAdder(config)
    plan = ClockPlan.paper()

    print(f"Smoothing a {IMAGE_SIZE}x{IMAGE_SIZE} synthetic image with a 3x3 box filter")
    print(f"Adder under test: ISA {config.name}, overclocked at "
          f"{plan.cpr_levels[-1] * 100:g}% CPR\n")

    exact_result = box_filter_with_adder(image, lambda a, b: a + b)
    golden_result = box_filter_with_adder(image, adder.add_many)

    design = synthesize(config)
    simulator = EventDrivenSimulator(design.netlist, design.annotation)
    period = plan.period_for(plan.cpr_levels[-1])

    def overclocked_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        operands = {"A": a, "B": b, "cin": np.zeros(a.shape[0], dtype=np.uint64)}
        # prepend a settling vector so every real addition is a simulated transition
        padded = {key: np.concatenate([values[:1], values]) for key, values in operands.items()}
        trace = simulator.run_trace(padded, period)
        return trace.sampled_words

    silver_result = box_filter_with_adder(image, overclocked_add)

    rows = [
        ("exact adder", f"{psnr(exact_result, exact_result)}", "reference"),
        ("ISA (golden, properly clocked)", f"{psnr(exact_result, golden_result):.1f} dB",
         "structural errors only"),
        (f"ISA overclocked ({plan.cpr_levels[-1] * 100:g}% CPR)",
         f"{psnr(exact_result, silver_result):.1f} dB", "structural + timing errors"),
    ]
    print(format_table(["configuration", "PSNR vs exact filter", "error sources"], rows,
                       title="Box-filter quality with approximate/overclocked adders"))
    print("\nPSNR above ~35-40 dB is usually considered visually lossless for 8-bit images.")


if __name__ == "__main__":
    main()
