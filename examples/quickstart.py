"""Quickstart: build an Inexact Speculative Adder and inspect its errors.

Reproduces, in code, the worked examples of the paper (Figs. 2, 4 and 5):
a single ISA addition with its per-block diagnostics, the diamond / gold
/ silver error decomposition, and a quick statistical characterisation
over random inputs.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ClockPlan, ExactAdder, ISAConfig, InexactSpeculativeAdder, combine_errors
from repro.analysis.metrics import error_statistics


def single_addition_walkthrough() -> None:
    """One addition through the paper's Fig. 10 design, block by block."""
    config = ISAConfig.from_quadruple((8, 0, 0, 4))
    adder = InexactSpeculativeAdder(config)
    exact = ExactAdder(config.width)

    print(config.describe())
    a, b = 0x00FF_13FF, 0x0001_2401
    detail = adder.add_detailed(a, b)
    print(f"\nA = {a:#010x}, B = {b:#010x}")
    print(f"exact (diamond) sum : {exact.add(a, b):#011x}")
    print(f"ISA (golden) sum    : {detail.value:#011x}")
    print(f"structural error    : {detail.structural_error}")
    for block in detail.blocks:
        status = "ok"
        if block.fault:
            status = "corrected" if block.corrected else ("balanced" if block.reduced else "dropped")
        print(f"  block {block.index} @ bit {block.offset:2d}: "
              f"speculated carry={block.speculated_carry}, real carry={block.hardware_carry_in}, "
              f"{status}")


def error_combination_example() -> None:
    """The additive and compensating examples of Figs. 4 and 5 of the paper."""
    print("\nError combination (paper Figs. 4 and 5)")
    additive = combine_errors([8], [6], [4])
    compensating = combine_errors([8], [6], [7])
    print(f"  additive      : REstruct={additive.re_struct[0]:+.3f} "
          f"REtiming={additive.re_timing[0]:+.3f} REjoint={additive.re_joint[0]:+.3f}")
    print(f"  compensating  : REstruct={compensating.re_struct[0]:+.3f} "
          f"REtiming={compensating.re_timing[0]:+.3f} REjoint={compensating.re_joint[0]:+.3f}")


def statistical_characterisation() -> None:
    """RMS relative error of a few designs over random vectors (structural only)."""
    print("\nStructural characterisation over 200k random vectors")
    rng = np.random.default_rng(1)
    a = rng.integers(0, 2**32, 200_000, dtype=np.uint64)
    b = rng.integers(0, 2**32, 200_000, dtype=np.uint64)
    exact = a + b
    for quadruple in ((8, 0, 0, 0), (8, 0, 0, 4), (16, 2, 1, 6)):
        adder = InexactSpeculativeAdder(ISAConfig.from_quadruple(quadruple))
        gold = adder.add_many(a, b)
        stats = error_statistics(exact, gold, width=33)
        print(f"  {adder.name:11s} error rate={stats.error_rate:7.4f} "
              f"RMS RE={stats.rms_relative_error * 100:.4f}%  SNR={stats.snr_db():.1f} dB")
    plan = ClockPlan.paper()
    print(f"\nPaper clock plan: safe={plan.safe_period * 1e9:.2f} ns, "
          f"overclocked periods={[f'{p * 1e12:.0f} ps' for p in plan.periods]}")


if __name__ == "__main__":
    single_addition_walkthrough()
    error_combination_example()
    statistical_characterisation()
