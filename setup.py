"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in fully offline environments where the
PEP 660 editable-wheel path is unavailable (no ``wheel`` package).
"""

from setuptools import setup

setup()
