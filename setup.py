"""Package metadata and console entry points.

``pip install -e .`` (or a plain install) exposes two CLIs:

* ``repro-experiments`` — regenerate the paper's Figs. 7-10
  (:func:`repro.experiments.runner.main`);
* ``repro-explore`` — enumerate, sweep and Pareto-rank ISA design
  spaces through the cached job pipeline
  (:func:`repro.explore.cli.main`);
* ``repro-stats`` — summarise telemetry directories (run manifests,
  phase totals, cache hit-rate trends, worker utilisation) and inspect
  cache-directory inventories (:func:`repro.obs.stats_cli.main`).

The modules also run without installation via ``PYTHONPATH=src
python -m repro.experiments.runner`` / ``python -m repro.explore.cli``
/ ``python -m repro.obs.stats_cli``.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "_version.py"), encoding="utf-8") as handle:
        match = re.search(r"__version__\s*=\s*['\"]([^'\"]+)['\"]", handle.read())
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/_version.py")
    return match.group(1)


setup(
    name="repro-isa-overclocking",
    version=read_version(),
    description="Reproduction of 'Combining Structural and Timing Errors in "
                "Overclocked Inexact Speculative Adders' (DATE 2017)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-explore=repro.explore.cli:main",
            "repro-stats=repro.obs.stats_cli:main",
        ],
    },
)
