"""Unified characterization runtime: jobs plus pluggable backends.

Every heavy operation of the reproduction — synthesize a design, compute
its golden references, simulate an operand trace at a set of clock
periods — is modelled as a :class:`CharacterizationJob` and scheduled by
a :class:`Backend`:

* ``serial`` executes jobs in-process (the reference behaviour),
* ``multiprocess`` fans independent jobs *and* independent word-aligned
  trace chunks out across worker processes, with per-worker caching of
  synthesized designs and compiled programs, merging chunks in trace
  order so results are bit-identical to serial at any worker count.

The experiment drivers (`repro.experiments`), the dataset assembly
(`repro.ml.dataset`), the ``repro-experiments`` CLI and the throughput
benchmarks all characterise through this runtime; future scaling work
(async, remote workers) plugs in here as additional backends.

:mod:`repro.runtime.cache` adds persistence on top: wrapping any
backend in a :class:`CachingBackend` stores every result in a
content-addressed on-disk store keyed by the job's full identity, so
re-runs (and large sharded traces interrupted half-way) reuse finished
work bit-identically instead of re-simulating it.

Quick start::

    from repro.runtime import CharacterizationJob, run_jobs
    from repro.experiments.designs import isa_entry

    job = CharacterizationJob(entry=isa_entry((8, 0, 0, 4)), trace=trace,
                              clock_periods=(2.55e-10,), simulator="fast")
    [result] = run_jobs([job], backend="multiprocess", workers=4)
"""

from repro.runtime.backends import (
    BACKENDS,
    Backend,
    GoldenTask,
    MultiprocessBackend,
    SerialBackend,
    Task,
    TimingChunkTask,
    execute_tasks,
    get_backend,
    run_jobs,
)
from repro.runtime.cache import (
    CacheStats,
    CachingBackend,
    ResultStore,
    job_digest,
    trace_digest,
)
from repro.runtime.faultinject import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    fault_point,
    parse_fault_plan,
    reset_fault_plan,
)
from repro.runtime.jobs import (
    SIMULATORS,
    CharacterizationJob,
    DesignCharacterization,
    build_simulator,
    clear_design_cache,
    execute_job,
    merge_timing_chunks,
    synthesize_entry,
    synthesize_job,
)
from repro.runtime.plan import PlannedBackend, execute_group
from repro.runtime.resilience import (
    RETRIES_ENV,
    RETRYABLE_EXCEPTIONS,
    TIMEOUT_ENV,
    RetryPolicy,
    deterministic_jitter,
    retry_call,
)
from repro.runtime.synth_cache import (
    SynthesisCache,
    active_synth_cache,
    configure_synth_cache,
    synth_digest,
)

__all__ = [
    "BACKENDS",
    "FAULT_PLAN_ENV",
    "RETRIES_ENV",
    "RETRYABLE_EXCEPTIONS",
    "SIMULATORS",
    "TIMEOUT_ENV",
    "Backend",
    "CacheStats",
    "CachingBackend",
    "CharacterizationJob",
    "DesignCharacterization",
    "FaultPlan",
    "FaultSpec",
    "GoldenTask",
    "MultiprocessBackend",
    "PlannedBackend",
    "ResultStore",
    "RetryPolicy",
    "SerialBackend",
    "SynthesisCache",
    "Task",
    "TimingChunkTask",
    "active_fault_plan",
    "active_synth_cache",
    "build_simulator",
    "clear_design_cache",
    "configure_synth_cache",
    "deterministic_jitter",
    "execute_group",
    "synth_digest",
    "execute_job",
    "execute_tasks",
    "fault_point",
    "get_backend",
    "job_digest",
    "merge_timing_chunks",
    "parse_fault_plan",
    "reset_fault_plan",
    "retry_call",
    "run_jobs",
    "synthesize_entry",
    "synthesize_job",
    "trace_digest",
]
