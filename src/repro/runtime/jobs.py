"""Characterization jobs: the unit of work of the execution runtime.

A :class:`CharacterizationJob` bundles everything needed to characterise
one design over one operand trace — the design entry to synthesize, the
trace, the clock periods to sample, the simulator tier (``event`` or
``fast``) and the execution engine of the fast tier (``auto`` /
``compiled`` / ``reference``).  :func:`execute_job` performs the job in
the calling process; the backends in :mod:`repro.runtime.backends`
schedule batches of jobs, possibly splitting each trace into independent
chunks.

Both timing tiers are *transition-local*: the outcome of cycle ``t``
depends only on the input vectors ``t-1`` and ``t`` (the event-driven
simulator seeds each transition from the settled state of the previous
vector, the fast simulator is a two-vector model by construction).  A
trace may therefore be cut at any transition boundary and simulated
chunk by chunk — with a one-vector overlap between chunks — and the
concatenated results are bit-identical to a single full-trace run.
That property is what the multiprocess backend exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.core.isa import StructuralFaultStats
from repro.exceptions import ConfigurationError
from repro.families import family_of
from repro.runtime.synth_cache import active_synth_cache
from repro.synth.flow import SynthesisOptions, SynthesizedDesign, synthesize
from repro.timing.errors import TimingErrorTrace
from repro.timing.event_sim import EventDrivenSimulator
from repro.timing.fast_sim import ENGINES, FastTimingSimulator
from repro.utils.phases import phase
from repro.utils.vector import use_vector
from repro.workloads.traces import OperandTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiments -> runtime)
    from repro.experiments.designs import DesignEntry

#: Timing-simulator tiers a job may request.
SIMULATORS = ("event", "fast")


@dataclass(frozen=True, eq=False)
class CharacterizationJob:
    """One (design x trace x clock plan x engine) characterisation.

    Jobs are immutable and picklable, so backends can ship them to
    worker processes.  They compare and hash by identity (the trace
    arrays make value equality ill-defined); :meth:`cache_key` is the
    value-level key — everything except the trace — under which
    backends cache synthesized designs and simulators.
    """

    entry: "DesignEntry"
    trace: OperandTrace
    clock_periods: Tuple[float, ...]
    simulator: str = "event"
    engine: str = "auto"
    synthesis: SynthesisOptions = field(default_factory=SynthesisOptions)
    width: int = 32
    collect_structural_stats: bool = False
    output_bus: str = "S"

    def __post_init__(self) -> None:
        if self.simulator not in SIMULATORS:
            raise ConfigurationError(
                f"simulator must be one of {SIMULATORS}, got {self.simulator!r}")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")
        if not self.clock_periods:
            raise ConfigurationError("a characterization job needs at least one clock period")
        for clk in self.clock_periods:
            if clk <= 0:
                raise ConfigurationError(f"clock periods must be positive, got {clk}")
        if self.trace.length < 2:
            raise ConfigurationError("a characterization trace needs at least two vectors")
        if self.synthesis.variation_sigma > 0 and self.synthesis.variation_seed is None:
            # Workers re-synthesize the design independently; an unseeded
            # variation draw would give every worker a differently
            # annotated circuit and silently break the bit-identity
            # guarantee between backends (and between runs).
            raise ConfigurationError(
                "characterization jobs with variation_sigma > 0 require an explicit "
                "variation_seed so every backend synthesizes the same annotated design")
        object.__setattr__(self, "clock_periods", tuple(self.clock_periods))

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Design label of the job (as used in the paper's figures)."""
        return self.entry.name

    def cache_key(self) -> tuple:
        """Key under which workers cache the synthesized design and simulator.

        Everything that determines the synthesized design and the
        simulator construction — but *not* the trace, so chunk tasks of
        the same job (and jobs re-running a design on another trace) hit
        the same cache entry and lowering happens once per process.
        """
        return (self.entry, self.width, self.synthesis, self.simulator,
                self.engine, self.output_bus)

    def with_trace(self, trace: OperandTrace) -> "CharacterizationJob":
        """The same job over a different (e.g. sliced) trace."""
        return replace(self, trace=trace)


@dataclass
class DesignCharacterization:
    """Everything the experiments need to know about one characterised design."""

    entry: "DesignEntry"
    synthesized: SynthesizedDesign
    trace: OperandTrace
    diamond_words: np.ndarray
    gold_words: np.ndarray
    timing_traces: Dict[float, TimingErrorTrace]
    structural_stats: Optional[StructuralFaultStats] = None
    netlist_words: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        """Design label as used in the paper's figures."""
        return self.entry.name

    def timing_trace(self, clock_period: float) -> TimingErrorTrace:
        """Timing-simulation result at one clock period of the plan."""
        try:
            return self.timing_traces[clock_period]
        except KeyError:
            raise ConfigurationError(
                f"design {self.name} was not simulated at clock period {clock_period}") from None


# --------------------------------------------------------------------- #
# Job execution building blocks (shared by all backends)
# --------------------------------------------------------------------- #
def synthesize_entry(entry: "DesignEntry", width: int,
                     options: SynthesisOptions) -> SynthesizedDesign:
    """Synthesize one design entry with the flow options.

    The entry's operator family decides what the flow materialises — a
    behavioural configuration with a registered generator, or a ready
    netlist (the exact baselines and all multiplier designs).
    """
    with phase("synthesize", design=entry.name, width=width):
        spec = family_of(entry).design_spec(entry, width, options)
        return synthesize(spec, options)


#: Process-wide memo of synthesized designs by synthesis identity.
#: Every backend synthesizes through :func:`synthesize_job`, so one
#: design is synthesized (or loaded from the persistent synthesis
#: cache) at most once per process regardless of how many jobs, traces
#: or simulator tiers request it.
_DESIGN_CACHE: Dict[tuple, SynthesizedDesign] = {}


def clear_design_cache() -> None:
    """Drop the process-wide design memo (tests and benchmarks)."""
    _DESIGN_CACHE.clear()


def synthesize_job(job: CharacterizationJob) -> SynthesizedDesign:
    """Synthesize the job's design entry with the job's flow options.

    This is the read-through path of the persistent synthesis cache
    (:mod:`repro.runtime.synth_cache`): an in-memory hit returns the
    process's shared instance, a disk hit (``REPRO_SYNTH_CACHE``) is
    unpickled once and memoised, and only a full miss actually runs the
    flow — and then persists the result for every other process and run.
    The ``synthesize`` phase counter therefore counts *actual* flow
    runs, which is what the warm-cache assertions observe.
    """
    key = (job.entry, job.width, job.synthesis)
    design = _DESIGN_CACHE.get(key)
    if design is not None:
        return design
    cache = active_synth_cache()
    if cache is not None:
        design = cache.load(job.entry, job.width, job.synthesis)
        if design is not None:
            _DESIGN_CACHE[key] = design
            return design
    design = synthesize_entry(job.entry, job.width, job.synthesis)
    if cache is not None:
        cache.store_design(job.entry, job.width, job.synthesis, design)
    _DESIGN_CACHE[key] = design
    return design


def build_simulator(kind: str, synthesized: SynthesizedDesign, engine: str = "auto",
                    clock_periods: Optional[Tuple[float, ...]] = None):
    """Instantiate the requested timing simulator for a synthesized design.

    ``engine`` selects the execution tier of the fast simulator; the
    event-driven simulator is its own (glitch-aware) reference tier and
    ignores it.  When ``clock_periods`` names the periods the caller will
    sample (a job's clock plan), the fast simulator is specialised to
    that plan — only the arrival-threshold cone those clocks reach is
    compiled, which is typically an order of magnitude smaller than the
    general program and bit-identical at the sampled periods.  The
    specialisation follows the ``REPRO_SYNTH_VECTOR`` toggle so the
    reference path reproduces the unspecialised lowering.
    """
    with phase("lower", simulator=kind, engine=engine,
               clocks=len(clock_periods) if clock_periods else 0):
        if kind == "event":
            return EventDrivenSimulator(synthesized.netlist, synthesized.annotation)
        if kind == "fast":
            if clock_periods is not None and use_vector():
                return FastTimingSimulator(synthesized.netlist, synthesized.annotation,
                                           engine=engine, clock_periods=clock_periods)
            return FastTimingSimulator(synthesized.netlist, synthesized.annotation,
                                       engine=engine)
    raise ConfigurationError(f"unknown simulator kind {kind!r}")


def golden_reference(job: CharacterizationJob, synthesized: SynthesizedDesign):
    """Diamond/golden words, structural stats and the gate-level cross-check.

    Returns ``(diamond, gold, structural_stats, netlist_words)``; raises
    :class:`~repro.exceptions.ConfigurationError` when the synthesized
    netlist disagrees with the behavioural golden model.
    """
    trace = job.trace
    family = family_of(job.entry)
    with phase("simulate", design=job.name, transitions=trace.length):
        diamond = family.exact_words(job.width, trace.a, trace.b)
        gold, structural_stats = family.golden_words(
            job.entry, job.width, trace.a, trace.b,
            collect_stats=job.collect_structural_stats, diamond=diamond)

        # Gate-level settled outputs from the compiled packed engine: the
        # netlist's own golden reference, checked against the behavioural one.
        netlist_words = synthesized.netlist.compute_words(trace.as_operands(),
                                                          output_bus=job.output_bus)
    if not np.array_equal(netlist_words, gold):
        raise ConfigurationError(
            f"synthesized netlist of {job.name} disagrees with its behavioural "
            "golden model; the synthesis flow is unfaithful")
    return diamond, gold, structural_stats, netlist_words


def run_timing(job: CharacterizationJob, simulator) -> Dict[float, TimingErrorTrace]:
    """Run the job's timing simulation over its (possibly sliced) trace."""
    with phase("simulate", transitions=job.trace.length,
               clocks=len(job.clock_periods)):
        return simulator.run_trace_multi(job.trace.as_operands(), job.clock_periods,
                                         output_bus=job.output_bus)


def merge_timing_chunks(chunks) -> Dict[float, TimingErrorTrace]:
    """Concatenate per-chunk timing results back into full-trace traces.

    ``chunks`` is a sequence of ``{clock_period: TimingErrorTrace}``
    dicts in chunk order.  Because both simulators are transition-local,
    the concatenation is bit-identical to a single full-trace run.
    """
    chunks = list(chunks)
    if not chunks:
        return {}
    merged: Dict[float, TimingErrorTrace] = {}
    settled = None
    for clk in chunks[0]:
        if settled is None:
            # Both simulators share one settled array across all clock
            # periods of a run; preserve that sharing after the merge.
            settled = np.concatenate([chunk[clk].settled_words for chunk in chunks])
        merged[clk] = TimingErrorTrace(
            clock_period=clk,
            sampled_words=np.concatenate([chunk[clk].sampled_words for chunk in chunks]),
            settled_words=settled,
            output_width=chunks[0][clk].output_width,
        )
    return merged


def execute_job(job: CharacterizationJob,
                synthesized: Optional[SynthesizedDesign] = None,
                simulator=None) -> DesignCharacterization:
    """Perform one characterization job in the calling process.

    This is the reference execution path (the serial backend calls it
    per job); ``synthesized`` and ``simulator`` may be supplied to reuse
    work cached by the caller (they must match the job's ``cache_key``).
    """
    if synthesized is None:
        synthesized = synthesize_job(job)
    diamond, gold, structural_stats, netlist_words = golden_reference(job, synthesized)
    if simulator is None:
        simulator = build_simulator(job.simulator, synthesized, engine=job.engine,
                                    clock_periods=job.clock_periods)
    timing_traces = run_timing(job, simulator)
    return DesignCharacterization(
        entry=job.entry,
        synthesized=synthesized,
        trace=job.trace,
        diamond_words=diamond,
        gold_words=gold,
        timing_traces=timing_traces,
        structural_stats=structural_stats,
        netlist_words=netlist_words,
    )
