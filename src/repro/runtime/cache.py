"""Persistent on-disk result cache for characterization jobs.

Re-running the paper's experiments re-characterises the same
(design x trace x clock plan) units on every figure run.  This module
adds a content-addressed store so that work survives across processes:

* :func:`job_digest` derives a stable SHA-256 key from the *full*
  identity of a :class:`~repro.runtime.jobs.CharacterizationJob` — the
  design entry and synthesis options, the trace content (operand bytes,
  not the presentational trace name), the clock plan, the simulator
  tier, the fast-engine tier, the structural-stats request and the
  library version.  Any change to any of these yields a new key, which
  is the entire invalidation story: stale entries are never *wrong*,
  only unreachable.
* :class:`ResultStore` is the on-disk layout: one directory per digest
  holding either a monolithic ``result.pkl`` or — for traces larger
  than the shard threshold — a ``golden.pkl`` plus word-aligned
  ``shard-<start>-<stop>.pkl`` timing shards (the spans of
  :func:`~repro.circuit.compiled.transition_chunks`).  Every write goes
  to a temp file in the same directory followed by :func:`os.replace`,
  so concurrent writers (e.g. multiprocess runs sharing one cache
  directory) can never expose a torn file.  Unreadable or truncated
  entries are discarded and recomputed, never raised.
* :class:`ResultStore` optionally enforces a byte budget
  (``limit_bytes`` / ``CachingBackend(limit_mb=...)``, or
  ``REPRO_CACHE_LIMIT_MB`` through
  :class:`~repro.experiments.common.StudyConfig`): after every batch
  that wrote entries, whole entries are pruned oldest-first until the
  store fits, so unbounded sweeps cannot fill the disk.
* :class:`CachingBackend` decorates any execution backend: hits
  deserialise stored :class:`~repro.runtime.jobs.DesignCharacterization`
  results bit-identically, misses delegate to the inner backend in one
  batch (preserving its scheduling) and persist on return.  Because
  both simulator tiers are transition-local, a sharded entry merges via
  :func:`~repro.runtime.jobs.merge_timing_chunks` into exactly the
  full-trace result, and a partially-populated entry (an interrupted
  run) resumes chunk by chunk — only the missing shards are simulated.

Two cost deviations on the *cold sharded* path, both bounded by one
golden-pass-equivalent per job and both absent from warm runs and from
ordinary (unsharded) misses: the full-trace golden references are
computed in the calling process (the backend interface only executes
whole jobs), and the delegated timing chunks — being whole jobs — each
re-derive chunk-local golden words that assembly discards.  A golden
pass is one packed netlist evaluation plus vectorised behavioural
adds, cheap next to the multi-clock timing shards it accompanies;
scheduling golden/timing sub-jobs through the backend interface
directly is noted on the ROADMAP.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._version import __version__
from repro.circuit.compiled import transition_chunks
from repro.circuit.library import TechnologyLibrary
from repro.exceptions import ConfigurationError
from repro.runtime.backends import Backend, get_backend
from repro.runtime.jobs import (
    CharacterizationJob,
    DesignCharacterization,
    golden_reference,
    merge_timing_chunks,
    synthesize_job,
)

#: Bumped whenever the stored payload layout changes; old entries are
#: then unreadable by design and silently recomputed.
CACHE_FORMAT = 1

#: Traces with more transitions than this spill to per-chunk timing
#: shards instead of one monolithic result pickle (word-aligned via
#: :func:`transition_chunks`), so interrupted runs resume chunk by chunk.
DEFAULT_SHARD_TRANSITIONS = 65536


# --------------------------------------------------------------------- #
# Job identity -> digest
# --------------------------------------------------------------------- #
def _canonical(value):
    """JSON-serialisable canonical form of a cache-key component.

    Floats go through :meth:`float.hex` so the digest is exact, not
    subject to repr rounding; dataclasses flatten to name-tagged field
    dicts; libraries use their value key (the same one their ``__eq__``
    compares by).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float.hex(value)
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, TechnologyLibrary):
        return {"__library__": _canonical(value._value_key())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        fields["__dataclass__"] = type(value).__name__
        return fields
    raise ConfigurationError(
        f"cannot derive a stable cache key from a {type(value).__name__} "
        f"({value!r}); cache keys are built from primitives and dataclasses")


def _canonical_synthesis(options) -> dict:
    """Synthesis options with the variation seed normalised for keying.

    With ``variation_sigma == 0`` the seed cannot influence the result,
    so it is normalised away (all unvaried runs share entries).  With a
    positive sigma only integer seeds are reproducible enough to cache
    under — generator objects carry hidden state a digest cannot see.
    """
    canonical = _canonical(
        dataclasses.replace(options, variation_seed=None)
        if options.variation_sigma == 0 else
        options if isinstance(options.variation_seed, int) else None)
    if canonical is None:
        raise ConfigurationError(
            "result caching with variation_sigma > 0 requires an integer "
            f"variation_seed, got {options.variation_seed!r}")
    return canonical


def trace_digest(trace) -> str:
    """SHA-256 of a trace's *content*: width, length and operand bytes.

    The trace name is deliberately excluded — it records provenance
    (e.g. slice positions), not stimulus, and two identically-valued
    traces must share cache entries.
    """
    digest = hashlib.sha256()
    digest.update(f"operand-trace/{trace.width}/{trace.length}/".encode())
    digest.update(np.asarray(trace.a, dtype=np.uint64).astype("<u8", copy=False).tobytes())
    digest.update(np.asarray(trace.b, dtype=np.uint64).astype("<u8", copy=False).tobytes())
    return digest.hexdigest()


def job_digest(job: CharacterizationJob) -> str:
    """Stable content digest of a characterization job's full identity."""
    payload = {
        "format": CACHE_FORMAT,
        "library_version": __version__,
        "entry": _canonical(job.entry),
        "width": job.width,
        "output_bus": job.output_bus,
        "collect_structural_stats": job.collect_structural_stats,
        "simulator": job.simulator,
        "engine": job.engine,
        "clock_periods": _canonical(job.clock_periods),
        "synthesis": _canonical_synthesis(job.synthesis),
        "trace": trace_digest(job.trace),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# On-disk store
# --------------------------------------------------------------------- #
@dataclass
class CacheStats:
    """Counters of one :class:`CachingBackend` (cumulative across runs).

    Shared backend instances accumulate over a whole process; callers
    reporting a single run take a :meth:`snapshot` first and describe the
    :meth:`since` delta (or call
    :meth:`CachingBackend.reset_counters`), so one study's footer never
    shows another study's hits.
    """

    hits: int = 0
    misses: int = 0
    shard_hits: int = 0
    shard_misses: int = 0
    corrupt: int = 0
    pruned: int = 0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counter values."""
        return dataclasses.replace(self)

    def since(self, baseline: "CacheStats") -> "CacheStats":
        """Counter deltas accumulated after ``baseline`` was snapshotted."""
        return CacheStats(**{
            counter.name: getattr(self, counter.name) - getattr(baseline, counter.name)
            for counter in dataclasses.fields(self)})

    def reset(self) -> None:
        """Zero every counter in place (the object stays shared with its store)."""
        for counter in dataclasses.fields(self):
            setattr(self, counter.name, 0)

    def describe(self) -> str:
        """Footer-ready summary, e.g. ``"24 hits / 0 misses"``."""
        text = f"{self.hits} hits / {self.misses} misses"
        if self.shard_hits or self.shard_misses:
            text += f" ({self.shard_hits} shards reused, {self.shard_misses} recomputed)"
        if self.corrupt:
            text += f", {self.corrupt} corrupt entries discarded"
        if self.pruned:
            text += f", {self.pruned} entries pruned to the size budget"
        return text


class ResultStore:
    """Content-addressed pickle store with atomic, corruption-safe entries.

    Layout: ``<root>/<digest[:2]>/<digest>/`` holds ``result.pkl``
    (monolithic entries), or ``golden.pkl`` plus
    ``shard-<start>-<stop>.pkl`` files (sharded entries), plus a
    best-effort human-readable ``meta.json``.

    ``limit_bytes`` puts the store on a byte budget: after a batch of
    writes, :meth:`prune_to_limit` deletes whole entries
    least-recently-used-first (:meth:`load` refreshes the mtime of what
    it reads, so both writes and hits count as use) until the store
    fits.  An unbounded design-space sweep can
    therefore never fill the disk; the evicted work simply becomes a
    recompute-miss on its next request.
    """

    def __init__(self, root, stats: Optional[CacheStats] = None,
                 limit_bytes: Optional[int] = None) -> None:
        if limit_bytes is not None and limit_bytes < 1:
            raise ConfigurationError(
                f"cache limit_bytes must be positive, got {limit_bytes}")
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = stats if stats is not None else CacheStats()
        self.limit_bytes = limit_bytes

    # ------------------------------------------------------------------ #
    def entry_dir(self, digest: str) -> Path:
        """Directory holding every file of one cache entry."""
        return self.root / digest[:2] / digest

    def result_path(self, digest: str) -> Path:
        return self.entry_dir(digest) / "result.pkl"

    def golden_path(self, digest: str) -> Path:
        return self.entry_dir(digest) / "golden.pkl"

    def shard_path(self, digest: str, start: int, stop: int) -> Path:
        return self.entry_dir(digest) / f"shard-{start:010d}-{stop:010d}.pkl"

    # ------------------------------------------------------------------ #
    def load(self, path: Path):
        """The stored payload, or ``None`` when absent or unreadable.

        A truncated, corrupted or foreign-format file is discarded and
        counted — the caller recomputes; a damaged cache never crashes
        a run.
        """
        try:
            with open(path, "rb") as handle:
                wrapper = pickle.load(handle)
            if wrapper["format"] != CACHE_FORMAT:
                raise ValueError(f"unknown cache format {wrapper['format']!r}")
            try:
                # Refresh the mtime so budget pruning evicts by *use*, not
                # by write: an entry the current batch just hit must never
                # be the "oldest" one the same batch's prune throws away.
                os.utime(path)
            except OSError:
                pass
            return wrapper["payload"]
        except FileNotFoundError:
            return None
        except Exception:
            self.stats.corrupt += 1
            self._discard(path)
            return None

    def store(self, path: Path, payload) -> None:
        """Atomically persist ``payload`` (write-to-temp + rename).

        The temp file lives in the target directory so the final
        :func:`os.replace` stays on one filesystem and is atomic;
        concurrent writers of the same key each publish a complete file
        and the last rename wins (all writers produce identical bytes
        for identical keys, so the winner does not matter).
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                             suffix=".pkl")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump({"format": CACHE_FORMAT, "payload": payload}, stream,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def write_meta(self, digest: str, meta: dict) -> None:
        """Best-effort ``meta.json`` describing the entry for humans."""
        path = self.entry_dir(digest) / "meta.json"
        if path.exists():
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                                 suffix=".json")
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(meta, stream, indent=2, sort_keys=True)
            os.replace(temp_name, path)
        except OSError:  # pragma: no cover - diagnostics only
            pass

    def _discard(self, path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    def entry_inventory(self) -> List[Tuple[float, int, Path]]:
        """Every entry directory as ``(newest_mtime, total_bytes, path)``.

        Unreadable entries (e.g. deleted by a concurrent pruner) are
        skipped — the inventory is advisory, never load-bearing.
        """
        inventory: List[Tuple[float, int, Path]] = []
        try:
            prefixes = [child for child in self.root.iterdir() if child.is_dir()]
        except OSError:
            return inventory
        for prefix in prefixes:
            try:
                entries = [child for child in prefix.iterdir() if child.is_dir()]
            except OSError:
                continue
            for entry in entries:
                newest, total = 0.0, 0
                try:
                    for item in entry.iterdir():
                        stat = item.stat()
                        newest = max(newest, stat.st_mtime)
                        total += stat.st_size
                except OSError:
                    continue
                inventory.append((newest, total, entry))
        return inventory

    def total_bytes(self) -> int:
        """Bytes currently held by every entry of the store."""
        return sum(size for _, size, _ in self.entry_inventory())

    def prune_to_limit(self) -> int:
        """Delete oldest entries until the store fits ``limit_bytes``.

        Returns the number of entries removed (also accumulated into
        ``stats.pruned``).  A ``None`` budget is a no-op.  Eviction is
        whole-entry: a half-deleted sharded entry would silently degrade
        into per-shard recomputation anyway, but removing the directory
        atomically-ish keeps the accounting simple and the common case
        (monolithic entries) clean.
        """
        if self.limit_bytes is None:
            return 0
        inventory = sorted(self.entry_inventory())
        total = sum(size for _, size, _ in inventory)
        removed = 0
        for _, size, entry in inventory:
            if total <= self.limit_bytes:
                break
            shutil.rmtree(entry, ignore_errors=True)
            total -= size
            removed += 1
        self.stats.pruned += removed
        return removed


# --------------------------------------------------------------------- #
# The caching decorator backend
# --------------------------------------------------------------------- #
@dataclass
class _JobPlan:
    """What one job of a batch needs: nothing (hit), or delegated work."""

    job: CharacterizationJob
    digest: str
    result: Optional[DesignCharacterization] = None
    spans: Optional[List[Tuple[int, int]]] = None
    golden: Optional[tuple] = None
    shard_payloads: Dict[Tuple[int, int], dict] = field(default_factory=dict)
    missing: List[Tuple[int, int]] = field(default_factory=list)
    pending: List[CharacterizationJob] = field(default_factory=list)
    computed: List[DesignCharacterization] = field(default_factory=list)


class CachingBackend(Backend):
    """Front any execution backend with the persistent result store.

    Parameters
    ----------
    inner:
        The backend (or backend name) that executes cache misses.
    cache_dir:
        Root directory of the store (created on demand).
    shard_transitions:
        Traces with more transitions than this are stored as per-chunk
        timing shards instead of one monolithic pickle, enabling
        chunk-by-chunk resume of interrupted runs.  ``None`` disables
        sharding.
    limit_mb:
        Byte budget of the store in mebibytes (``None`` = unbounded).
        After every batch that wrote new entries, oldest entries are
        pruned until the store fits — see
        :meth:`ResultStore.prune_to_limit`.
    """

    name = "cache"

    def __init__(self, inner, cache_dir,
                 shard_transitions: Optional[int] = DEFAULT_SHARD_TRANSITIONS,
                 limit_mb: Optional[float] = None) -> None:
        if shard_transitions is not None and shard_transitions < 1:
            raise ConfigurationError(
                f"shard_transitions must be at least 1, got {shard_transitions}")
        if limit_mb is not None and limit_mb <= 0:
            raise ConfigurationError(
                f"cache limit_mb must be positive, got {limit_mb}")
        self.inner = get_backend(inner)
        self.stats = CacheStats()
        limit_bytes = None if limit_mb is None else max(int(limit_mb * 1024 * 1024), 1)
        self.store = ResultStore(cache_dir, stats=self.stats, limit_bytes=limit_bytes)
        self.shard_transitions = shard_transitions

    def describe(self) -> str:
        return f"cache[{self.inner.describe()}]"

    def close(self) -> None:
        self.inner.close()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters so the next run reports only itself.

        The stats object is shared with the store, so the reset is
        in place rather than a reassignment.
        """
        self.stats.reset()

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        misses_before = self.stats.misses
        plans = [self._plan(job) for job in jobs]

        # One delegated batch covering every miss — plain jobs and
        # missing shards alike — so the inner backend schedules at its
        # full batch granularity.  A fully warm batch delegates nothing.
        pending: List[CharacterizationJob] = []
        owners: List[_JobPlan] = []
        for plan in plans:
            pending.extend(plan.pending)
            owners.extend([plan] * len(plan.pending))
        if pending:
            for plan, computed in zip(owners, self.inner.run(pending)):
                plan.computed.append(computed)

        results = [self._assemble(plan) for plan in plans]
        if self.stats.misses > misses_before:
            # Every write path counts a miss first, so this is exactly
            # "the batch grew the store"; the budget is then enforced
            # once per batch, not once per write.
            self.store.prune_to_limit()
        return results

    # ------------------------------------------------------------------ #
    def _sharded(self, job: CharacterizationJob) -> bool:
        return (self.shard_transitions is not None
                and job.trace.transitions > self.shard_transitions)

    def _plan(self, job: CharacterizationJob) -> _JobPlan:
        digest = job_digest(job)
        plan = _JobPlan(job=job, digest=digest)
        if self._sharded(job):
            self._plan_sharded(plan)
            return plan
        payload = self.store.load(self.store.result_path(digest))
        if payload is not None:
            payload.trace = job.trace  # stripped before storage, restore
            plan.result = payload
            self.stats.hits += 1
        else:
            plan.pending.append(job)
            self.stats.misses += 1
        return plan

    def _plan_sharded(self, plan: _JobPlan) -> None:
        job, digest = plan.job, plan.digest
        plan.spans = transition_chunks(job.trace.transitions, self.shard_transitions)
        plan.golden = self.store.load(self.store.golden_path(digest))
        for start, stop in plan.spans:
            payload = self.store.load(self.store.shard_path(digest, start, stop))
            if payload is not None:
                plan.shard_payloads[(start, stop)] = payload
                self.stats.shard_hits += 1
            else:
                plan.missing.append((start, stop))
                self.stats.shard_misses += 1
        if plan.golden is not None and not plan.missing:
            self.stats.hits += 1
            return
        self.stats.misses += 1
        if plan.golden is None:
            # The golden pass (synthesis cross-check + behavioural
            # references) runs in-process: the backend interface only
            # executes whole jobs, and this pass is cheap next to the
            # multi-clock timing shards it accompanies.
            synthesized = synthesize_job(job)
            plan.golden = (synthesized,) + golden_reference(job, synthesized)
            self.store.store(self.store.golden_path(digest), plan.golden)
        for start, stop in plan.missing:
            # A chunk over transitions [start, stop) simulates vectors
            # [start, stop] — one vector of overlap, exactly as the
            # multiprocess backend splits.  The chunk job never collects
            # structural stats; the golden pass covers the full trace.
            plan.pending.append(dataclasses.replace(
                job, trace=job.trace.slice(start, stop + 1),
                collect_structural_stats=False))

    def _assemble(self, plan: _JobPlan) -> DesignCharacterization:
        if plan.result is not None:
            return plan.result
        if plan.spans is None:
            [result] = plan.computed
            self.store.store(self.store.result_path(plan.digest),
                             dataclasses.replace(result, trace=None))
            self._write_meta(plan, sharded=False)
            return result
        for span, chunk in zip(plan.missing, plan.computed):
            payload = chunk.timing_traces
            self.store.store(self.store.shard_path(plan.digest, *span), payload)
            plan.shard_payloads[span] = payload
        self._write_meta(plan, sharded=True)
        synthesized, diamond, gold, structural_stats, netlist_words = plan.golden
        return DesignCharacterization(
            entry=plan.job.entry,
            synthesized=synthesized,
            trace=plan.job.trace,
            diamond_words=diamond,
            gold_words=gold,
            timing_traces=merge_timing_chunks(
                plan.shard_payloads[span] for span in plan.spans),
            structural_stats=structural_stats,
            netlist_words=netlist_words,
        )

    def _write_meta(self, plan: _JobPlan, sharded: bool) -> None:
        job = plan.job
        self.store.write_meta(plan.digest, {
            "design": job.name,
            "trace_length": job.trace.length,
            "clock_periods": list(job.clock_periods),
            "simulator": job.simulator,
            "engine": job.engine,
            "collect_structural_stats": job.collect_structural_stats,
            "library_version": __version__,
            "sharded": sharded,
        })
