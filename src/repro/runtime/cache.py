"""Persistent on-disk result cache for characterization jobs.

Re-running the paper's experiments re-characterises the same
(design x trace x clock plan) units on every figure run.  This module
adds a content-addressed store so that work survives across processes:

* :func:`job_digest` derives a stable SHA-256 key from the *full*
  identity of a :class:`~repro.runtime.jobs.CharacterizationJob` — the
  design entry and synthesis options, the trace content (operand bytes,
  not the presentational trace name), the clock plan, the simulator
  tier, the fast-engine tier, the structural-stats request and the
  library version.  Any change to any of these yields a new key, which
  is the entire invalidation story: stale entries are never *wrong*,
  only unreachable.
* :class:`ResultStore` is the on-disk layout: one directory per digest
  holding either a monolithic ``result.pkl`` or — for traces larger
  than the shard threshold — a ``golden.pkl`` plus word-aligned
  ``shard-<start>-<stop>.pkl`` timing shards (the spans of
  :func:`~repro.circuit.compiled.transition_chunks`).  Every write goes
  to a temp file in the same directory followed by :func:`os.replace`,
  so concurrent writers (e.g. multiprocess runs sharing one cache
  directory) can never expose a torn file.  Unreadable or truncated
  entries are discarded and recomputed, never raised.
* :class:`ResultStore` optionally enforces a byte budget
  (``limit_bytes`` / ``CachingBackend(limit_mb=...)``, or
  ``REPRO_CACHE_LIMIT_MB`` through
  :class:`~repro.experiments.common.StudyConfig`): after every batch
  that wrote entries, whole entries are pruned oldest-first until the
  store fits, so unbounded sweeps cannot fill the disk.
* :class:`CachingBackend` decorates any execution backend: hits
  deserialise stored :class:`~repro.runtime.jobs.DesignCharacterization`
  results bit-identically, misses delegate to the inner backend in one
  batch (preserving its scheduling) and persist on return.  Because
  both simulator tiers are transition-local, a sharded entry merges via
  :func:`~repro.runtime.jobs.merge_timing_chunks` into exactly the
  full-trace result, and a partially-populated entry (an interrupted
  run) resumes chunk by chunk — only the missing shards are simulated.

The cold sharded path schedules at *sub-job* granularity: one
:class:`~repro.runtime.backends.GoldenTask` for the missing golden
references plus one :class:`~repro.runtime.backends.TimingChunkTask`
per missing shard, delegated to the inner backend as one golden batch
(persisted immediately, so interrupted runs resume with it) followed by
one timing batch.  Timing chunks therefore never re-derive chunk-local
golden words only to discard them, the golden pass parallelises (and
batches) like any other task, and the execution planner can stack the
chunks of one sharded job into a single multi-trace evaluation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.circuit.compiled import transition_chunks
from repro.exceptions import ConfigurationError
from repro.obs.metrics import record_counter_deltas
from repro.runtime.backends import (
    Backend,
    GoldenTask,
    Task,
    TimingChunkTask,
    get_backend,
)
from repro.runtime.jobs import (
    CharacterizationJob,
    DesignCharacterization,
    merge_timing_chunks,
)
from repro.runtime.store import (  # noqa: F401 - re-exported cache machinery
    STORE_FORMAT,
    CacheStats,
    ResultStore,
    _canonical,
    _canonical_synthesis,
    digest_of,
    trace_digest,
)

#: Format counter of the job-result payloads; tracks :data:`STORE_FORMAT`
#: (kept as a distinct name so the two can diverge if only one payload
#: layout changes).
CACHE_FORMAT = STORE_FORMAT

#: Traces with more transitions than this spill to per-chunk timing
#: shards instead of one monolithic result pickle (word-aligned via
#: :func:`transition_chunks`), so interrupted runs resume chunk by chunk.
DEFAULT_SHARD_TRANSITIONS = 65536


def job_digest(job: CharacterizationJob) -> str:
    """Stable content digest of a characterization job's full identity."""
    payload = {
        "format": CACHE_FORMAT,
        "library_version": __version__,
        "entry": _canonical(job.entry),
        "width": job.width,
        "output_bus": job.output_bus,
        "collect_structural_stats": job.collect_structural_stats,
        "simulator": job.simulator,
        "engine": job.engine,
        "clock_periods": _canonical(job.clock_periods),
        "synthesis": _canonical_synthesis(job.synthesis),
        "trace": trace_digest(job.trace),
    }
    # The operator family joins the key only for non-adder entries:
    # adder digests predate the family registry and must stay
    # byte-identical so existing caches remain warm.
    family = getattr(job.entry, "family", "adder")
    if family != "adder":
        payload["family"] = family
    return digest_of(payload)


# --------------------------------------------------------------------- #
# The caching decorator backend
# --------------------------------------------------------------------- #
@dataclass
class _JobPlan:
    """What one job of a batch needs: nothing (hit), or delegated work.

    Plain (unsharded) misses delegate the whole job (``pending`` /
    ``computed``); sharded misses delegate sub-job tasks (``pending_tasks``
    / ``task_results``) — a golden task when ``golden`` is absent, plus
    one timing task per missing shard.  Golden tasks are batched and
    persisted *before* the timing batch runs, so a run interrupted
    mid-simulation resumes with its golden pass already on disk.
    """

    job: CharacterizationJob
    digest: str
    result: Optional[DesignCharacterization] = None
    spans: Optional[List[Tuple[int, int]]] = None
    golden: Optional[tuple] = None
    shard_payloads: Dict[Tuple[int, int], dict] = field(default_factory=dict)
    missing: List[Tuple[int, int]] = field(default_factory=list)
    pending: List[CharacterizationJob] = field(default_factory=list)
    computed: List[DesignCharacterization] = field(default_factory=list)
    pending_tasks: List[Task] = field(default_factory=list)
    task_results: List[object] = field(default_factory=list)


class CachingBackend(Backend):
    """Front any execution backend with the persistent result store.

    Parameters
    ----------
    inner:
        The backend (or backend name) that executes cache misses.
    cache_dir:
        Root directory of the store (created on demand).
    shard_transitions:
        Traces with more transitions than this are stored as per-chunk
        timing shards instead of one monolithic pickle, enabling
        chunk-by-chunk resume of interrupted runs.  ``None`` disables
        sharding.
    limit_mb:
        Byte budget of the store in mebibytes (``None`` = unbounded).
        After every batch that wrote new entries, oldest entries are
        pruned until the store fits — see
        :meth:`ResultStore.prune_to_limit`.
    """

    name = "cache"

    def __init__(self, inner, cache_dir,
                 shard_transitions: Optional[int] = DEFAULT_SHARD_TRANSITIONS,
                 limit_mb: Optional[float] = None) -> None:
        if shard_transitions is not None and shard_transitions < 1:
            raise ConfigurationError(
                f"shard_transitions must be at least 1, got {shard_transitions}")
        if limit_mb is not None and limit_mb <= 0:
            raise ConfigurationError(
                f"cache limit_mb must be positive, got {limit_mb}")
        self.inner = get_backend(inner)
        self.stats = CacheStats()
        limit_bytes = None if limit_mb is None else max(int(limit_mb * 1024 * 1024), 1)
        self.store = ResultStore(cache_dir, stats=self.stats, limit_bytes=limit_bytes)
        self.shard_transitions = shard_transitions

    def describe(self) -> str:
        return f"cache[{self.inner.describe()}]"

    def close(self) -> None:
        self.inner.close()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters so the next run reports only itself.

        The stats object is shared with the store, so the reset is
        in place rather than a reassignment.
        """
        self.stats.reset()

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        misses_before = self.stats.misses
        stats_before = self.stats.snapshot()
        plans = [self._plan(job) for job in jobs]

        # One delegated batch per granularity covering every miss —
        # whole jobs for plain misses, sub-job tasks for sharded ones —
        # so the inner backend schedules at its full batch width.  A
        # fully warm batch delegates nothing.
        pending: List[CharacterizationJob] = []
        owners: List[_JobPlan] = []
        golden_tasks: List[Task] = []
        golden_owners: List[_JobPlan] = []
        timing_tasks: List[Task] = []
        timing_owners: List[_JobPlan] = []
        for plan in plans:
            pending.extend(plan.pending)
            owners.extend([plan] * len(plan.pending))
            for task in plan.pending_tasks:
                if isinstance(task, GoldenTask):
                    golden_tasks.append(task)
                    golden_owners.append(plan)
                else:
                    timing_tasks.append(task)
                    timing_owners.append(plan)
        if golden_tasks:
            # Golden passes run and persist first — before any other
            # simulation of the batch — so an interrupted run resumes
            # with them on disk (the PR 3 sharded-resume guarantee).
            for plan, outcome in zip(golden_owners,
                                     self.inner.run_tasks(golden_tasks)):
                plan.golden = outcome
                self.store.store(self.store.golden_path(plan.digest), outcome)
        if pending:
            for plan, computed in zip(owners, self.inner.run(pending)):
                plan.computed.append(computed)
        if timing_tasks:
            for plan, outcome in zip(timing_owners,
                                     self.inner.run_tasks(timing_tasks)):
                plan.task_results.append(outcome)

        results = [self._assemble(plan) for plan in plans]
        if self.stats.misses > misses_before:
            # Every write path counts a miss first, so this is exactly
            # "the batch grew the store"; the budget is then enforced
            # once per batch, not once per write.
            self.store.prune_to_limit()
        record_counter_deltas(
            "cache", dataclasses.asdict(self.stats.since(stats_before)))
        return results

    # ------------------------------------------------------------------ #
    def _sharded(self, job: CharacterizationJob) -> bool:
        return (self.shard_transitions is not None
                and job.trace.transitions > self.shard_transitions)

    def _plan(self, job: CharacterizationJob) -> _JobPlan:
        digest = job_digest(job)
        plan = _JobPlan(job=job, digest=digest)
        if self._sharded(job):
            self._plan_sharded(plan)
            return plan
        payload = self.store.load(self.store.result_path(digest))
        if payload is not None:
            payload.trace = job.trace  # stripped before storage, restore
            plan.result = payload
            self.stats.hits += 1
        else:
            plan.pending.append(job)
            self.stats.misses += 1
        return plan

    def _plan_sharded(self, plan: _JobPlan) -> None:
        job, digest = plan.job, plan.digest
        plan.spans = transition_chunks(job.trace.transitions, self.shard_transitions)
        plan.golden = self.store.load(self.store.golden_path(digest))
        for start, stop in plan.spans:
            payload = self.store.load(self.store.shard_path(digest, start, stop))
            if payload is not None:
                plan.shard_payloads[(start, stop)] = payload
                self.stats.shard_hits += 1
            else:
                plan.missing.append((start, stop))
                self.stats.shard_misses += 1
        if plan.golden is not None and not plan.missing:
            self.stats.hits += 1
            return
        self.stats.misses += 1
        if plan.golden is None:
            # The golden pass (synthesis cross-check + behavioural
            # references) is one sub-job task on the inner backend, so
            # it schedules — and, under the planner, batches — exactly
            # like the timing shards it accompanies.
            plan.pending_tasks.append(GoldenTask(job))
        for start, stop in plan.missing:
            # A chunk over transitions [start, stop) simulates vectors
            # [start, stop] — one vector of overlap, exactly as the
            # multiprocess backend splits.  Timing tasks derive no golden
            # words at all; the golden task covers the full trace.
            plan.pending_tasks.append(TimingChunkTask(dataclasses.replace(
                job, trace=job.trace.slice(start, stop + 1),
                collect_structural_stats=False)))

    def _assemble(self, plan: _JobPlan) -> DesignCharacterization:
        if plan.result is not None:
            return plan.result
        if plan.spans is None:
            [result] = plan.computed
            self.store.store(self.store.result_path(plan.digest),
                             dataclasses.replace(result, trace=None))
            self._write_meta(plan, sharded=False)
            return result
        for span, payload in zip(plan.missing, plan.task_results):
            self.store.store(self.store.shard_path(plan.digest, *span), payload)
            plan.shard_payloads[span] = payload
        self._write_meta(plan, sharded=True)
        synthesized, diamond, gold, structural_stats, netlist_words = plan.golden
        return DesignCharacterization(
            entry=plan.job.entry,
            synthesized=synthesized,
            trace=plan.job.trace,
            diamond_words=diamond,
            gold_words=gold,
            timing_traces=merge_timing_chunks(
                plan.shard_payloads[span] for span in plan.spans),
            structural_stats=structural_stats,
            netlist_words=netlist_words,
        )

    def _write_meta(self, plan: _JobPlan, sharded: bool) -> None:
        job = plan.job
        self.store.write_meta(plan.digest, {
            "design": job.name,
            "trace_length": job.trace.length,
            "clock_periods": list(job.clock_periods),
            "simulator": job.simulator,
            "engine": job.engine,
            "collect_structural_stats": job.collect_structural_stats,
            "library_version": __version__,
            "sharded": sharded,
        })
