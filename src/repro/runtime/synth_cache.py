"""Persistent content-addressed cache of synthesized designs.

A design-space sweep synthesizes the same (entry, width, options)
triples on every cold run — and, worse, in *every worker process* of a
multiprocess run, because the in-memory design cache is per-process.
This module persists the synthesis flow's output the same way
:mod:`repro.runtime.cache` persists characterization results:

* :func:`synth_digest` derives a stable SHA-256 key from the *synthesis
  identity* of a job — the design entry, the target width, the
  :class:`~repro.synth.flow.SynthesisOptions` (with the technology
  library keyed by value and the variation seed normalised away when
  ``variation_sigma == 0``) and the library version.  The trace, clock
  plan, simulator and engine are deliberately excluded: they do not
  influence the synthesized design, and jobs differing only in them
  must share one entry.
* :class:`SynthesisCache` stores the whole pickled
  :class:`~repro.synth.flow.SynthesizedDesign` — optimized netlist,
  delay annotation, sizing result and reports — through the shared
  :class:`~repro.runtime.store.ResultStore` machinery, inheriting its
  atomic writes, corruption-as-miss loads and LRU byte budget.
* :func:`active_synth_cache` is the process-wide activation point,
  driven by ``REPRO_SYNTH_CACHE`` (cache directory) and
  ``REPRO_SYNTH_CACHE_LIMIT_MB`` (optional byte budget).
  :func:`configure_synth_cache` activates it programmatically and — by
  default — exports the environment variables so multiprocess workers
  spawned later inherit the same cache directory.

:func:`repro.runtime.jobs.synthesize_job` is the single integration
point: every backend (serial, multiprocess workers, the planner's
grouped path and the caching backend's miss path) synthesizes through
it, so one on-disk entry serves them all.  The in-memory design cache
remains a read-through layer above this one — a disk hit is memoised
per process and never re-read.

Designs synthesized with ``variation_sigma > 0`` and a non-integer
variation seed are silently *not* cached (the draw is irreproducible,
so an entry could never be validated); everything else is.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro._version import __version__
from repro.exceptions import ConfigurationError
from repro.obs.metrics import metric_count
from repro.runtime.store import (
    CacheStats,
    ResultStore,
    _canonical,
    _canonical_synthesis,
    digest_of,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.designs import DesignEntry
    from repro.synth.flow import SynthesisOptions, SynthesizedDesign

#: Environment variable naming the synthesis-cache directory; unset or
#: empty disables the cache.
SYNTH_CACHE_ENV = "REPRO_SYNTH_CACHE"

#: Environment variable bounding the synthesis cache in mebibytes.
SYNTH_CACHE_LIMIT_ENV = "REPRO_SYNTH_CACHE_LIMIT_MB"

#: Bumped whenever the synthesized-design payload layout changes; old
#: entries then key differently and are silently recomputed.
SYNTH_CACHE_FORMAT = 1


def cacheable(options: "SynthesisOptions") -> bool:
    """Whether a design synthesized with ``options`` may be cached.

    An irreproducible variation draw (positive sigma with a non-integer
    seed) cannot be keyed — the cache silently bypasses it rather than
    failing the run.
    """
    return options.variation_sigma == 0 or isinstance(options.variation_seed, int)


def synth_digest(entry: "DesignEntry", width: int,
                 options: "SynthesisOptions") -> str:
    """Stable content digest of one design's synthesis identity.

    Keyed like :func:`~repro.runtime.cache.job_digest` but covering only
    what determines the synthesized design: the entry, the width, the
    synthesis options (library by value, variation seed normalised when
    ``variation_sigma == 0``) and the library version.
    """
    payload = {
        "format": SYNTH_CACHE_FORMAT,
        "library_version": __version__,
        "entry": _canonical(entry),
        "width": width,
        "synthesis": _canonical_synthesis(options),
    }
    # Same conditional-key rule as job_digest: only non-adder entries
    # carry the family axis, keeping pre-registry adder digests warm.
    family = getattr(entry, "family", "adder")
    if family != "adder":
        payload["family"] = family
    return digest_of(payload)


class SynthesisCache:
    """On-disk synthesized-design cache over a :class:`ResultStore`.

    One entry per :func:`synth_digest`, holding the pickled
    :class:`~repro.synth.flow.SynthesizedDesign`.  All the durability
    properties of the store apply: concurrent writers publish complete
    files atomically, corrupt entries are discarded and recomputed, and
    ``limit_mb`` keeps the store on an LRU byte budget.
    """

    def __init__(self, root, limit_mb: Optional[float] = None) -> None:
        if limit_mb is not None and limit_mb <= 0:
            raise ConfigurationError(
                f"synthesis cache limit_mb must be positive, got {limit_mb}")
        self.stats = CacheStats()
        limit_bytes = None if limit_mb is None else max(int(limit_mb * 1024 * 1024), 1)
        self.store = ResultStore(root, stats=self.stats, limit_bytes=limit_bytes)

    # ------------------------------------------------------------------ #
    def load(self, entry: "DesignEntry", width: int,
             options: "SynthesisOptions") -> Optional["SynthesizedDesign"]:
        """The cached design, or ``None`` on a miss (counted) or when
        ``options`` is not cacheable (not counted)."""
        if not cacheable(options):
            return None
        digest = synth_digest(entry, width, options)
        payload = self.store.load(self.store.result_path(digest))
        if payload is not None:
            self.stats.hits += 1
            metric_count("synth_cache.hits")
            return payload
        self.stats.misses += 1
        metric_count("synth_cache.misses")
        return None

    def store_design(self, entry: "DesignEntry", width: int,
                     options: "SynthesisOptions",
                     synthesized: "SynthesizedDesign") -> None:
        """Persist one synthesized design (no-op when not cacheable),
        then enforce the byte budget."""
        if not cacheable(options):
            return
        digest = synth_digest(entry, width, options)
        self.store.store(self.store.result_path(digest), synthesized)
        self.store.write_meta(digest, {
            "design": entry.name,
            "width": width,
            "gates": synthesized.netlist.num_gates,
            "library_version": __version__,
        })
        self.store.prune_to_limit()


# --------------------------------------------------------------------- #
# Process-wide activation
# --------------------------------------------------------------------- #
_ACTIVE: Optional[SynthesisCache] = None
_ACTIVE_KEY: Optional[tuple] = None


def active_synth_cache() -> Optional[SynthesisCache]:
    """The process-wide cache named by ``REPRO_SYNTH_CACHE``, or ``None``.

    The instance is rebuilt whenever the environment changes, so worker
    processes (which inherit the exported environment) and tests (which
    monkeypatch it) both see the right cache without explicit plumbing.
    """
    global _ACTIVE, _ACTIVE_KEY
    root = os.environ.get(SYNTH_CACHE_ENV, "").strip()
    if not root:
        _ACTIVE, _ACTIVE_KEY = None, None
        return None
    raw_limit = os.environ.get(SYNTH_CACHE_LIMIT_ENV, "").strip()
    limit_mb: Optional[float] = None
    if raw_limit:
        try:
            limit_mb = float(raw_limit)
        except ValueError:
            raise ConfigurationError(
                f"{SYNTH_CACHE_LIMIT_ENV} must be a number of mebibytes, "
                f"got {raw_limit!r}")
        if limit_mb <= 0:
            raise ConfigurationError(
                f"{SYNTH_CACHE_LIMIT_ENV} must be positive, got {raw_limit!r}")
    key = (root, limit_mb)
    if _ACTIVE is None or _ACTIVE_KEY != key:
        _ACTIVE = SynthesisCache(root, limit_mb=limit_mb)
        _ACTIVE_KEY = key
    return _ACTIVE


def configure_synth_cache(root, limit_mb: Optional[float] = None,
                          export_env: bool = True) -> Optional[SynthesisCache]:
    """Activate (or with a falsy ``root``, deactivate) the synthesis cache.

    With ``export_env`` (the default) the configuration is also written
    to the process environment, so multiprocess workers spawned later
    activate the same cache directory.
    """
    global _ACTIVE, _ACTIVE_KEY
    if not root:
        if export_env:
            os.environ.pop(SYNTH_CACHE_ENV, None)
            os.environ.pop(SYNTH_CACHE_LIMIT_ENV, None)
        _ACTIVE, _ACTIVE_KEY = None, None
        return None
    if export_env:
        os.environ[SYNTH_CACHE_ENV] = str(root)
        if limit_mb is None:
            os.environ.pop(SYNTH_CACHE_LIMIT_ENV, None)
        else:
            os.environ[SYNTH_CACHE_LIMIT_ENV] = repr(limit_mb)
    _ACTIVE = SynthesisCache(root, limit_mb=limit_mb)
    _ACTIVE_KEY = (str(root), limit_mb)
    return _ACTIVE


def reset_synth_cache() -> None:
    """Drop the process-wide instance (tests; the env decides the next one)."""
    global _ACTIVE, _ACTIVE_KEY
    _ACTIVE, _ACTIVE_KEY = None, None
