"""Task-level resilience: retry policies, deterministic backoff, timeouts.

Every characterization task is deterministic and transition-local, so a
retried task is **bit-identical by construction** — which is what makes
task-level retries safe to apply everywhere: a transient failure
(injected or real: a killed worker, an ``OSError`` out of a flaky
filesystem, a stalled task) costs one re-execution, never a changed
result.  :class:`RetryPolicy` bundles the knobs:

* ``max_attempts`` — total tries per task (1 = no retries), driven by
  ``REPRO_MAX_RETRIES`` (retries *on top of* the first attempt);
* exponential backoff whose jitter is a pure function of the task key
  and the attempt number (SHA-256, not :mod:`random`), so two runs of
  the same failing batch sleep identically — reproducibility extends
  to the failure path;
* ``task_timeout`` — optional per-task wall-clock budget
  (``REPRO_TASK_TIMEOUT`` seconds).  The multiprocess backend treats a
  window with no completed task as a stall and re-dispatches
  (see :meth:`MultiprocessBackend.run_calls`); the serial backend
  checks post-hoc, since an in-process task cannot be preempted.

Only *transient* failures are retried: :data:`RETRYABLE_EXCEPTIONS`
covers :class:`OSError` (I/O hiccups, injected faults),
:class:`TimeoutError` and :class:`~repro.exceptions.TaskTimeoutError`.
Deterministic failures — a golden-model mismatch, a
:class:`~repro.exceptions.ConfigurationError` — propagate immediately:
retrying them would repeat the same failure while hiding its origin.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.exceptions import ConfigurationError, TaskTimeoutError
from repro.obs.metrics import metric_count

#: Extra attempts per task on top of the first (``max_attempts - 1``).
RETRIES_ENV = "REPRO_MAX_RETRIES"

#: Per-task wall-clock budget, in seconds (float).
TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: Default retries when the environment does not say otherwise: two
#: retries (three attempts) absorb one transient fault plus one unlucky
#: recurrence without masking a persistent failure for long.
DEFAULT_RETRIES = 2

#: Exception types worth retrying — transient by nature.  Everything
#: else (assertion-style cross-check failures, configuration errors)
#: reflects the task itself and propagates on the first attempt.
RETRYABLE_EXCEPTIONS = (OSError, TimeoutError, TaskTimeoutError)


def deterministic_jitter(key: str, attempt: int) -> float:
    """A uniform [0, 1) draw that is a pure function of (key, attempt)."""
    digest = hashlib.sha256(f"{key}#{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _env_retries() -> int:
    value = os.environ.get(RETRIES_ENV, "")
    if not value.strip():
        return DEFAULT_RETRIES
    try:
        retries = int(value)
        if retries < 0:
            raise ValueError
    except ValueError:
        raise ConfigurationError(
            f"{RETRIES_ENV} must be a non-negative integer retry count, "
            f"got {value!r}") from None
    return retries


def _env_timeout() -> Optional[float]:
    value = os.environ.get(TIMEOUT_ENV, "")
    if not value.strip():
        return None
    try:
        timeout = float(value)
        if timeout <= 0:
            raise ValueError
    except ValueError:
        raise ConfigurationError(
            f"{TIMEOUT_ENV} must be a positive number of seconds, "
            f"got {value!r}") from None
    return timeout


@dataclass(frozen=True)
class RetryPolicy:
    """How a backend retries one failed task."""

    max_attempts: int = DEFAULT_RETRIES + 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be non-negative, got {self.backoff_base}")
        if self.backoff_factor < 1:
            raise ConfigurationError(
                f"backoff_factor must be at least 1, got {self.backoff_factor}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {self.task_timeout}")

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """The policy named by ``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT``.

        Malformed values raise :class:`ConfigurationError` naming the
        variable and the value, like every other ``REPRO_*`` knob.
        """
        return cls(max_attempts=_env_retries() + 1, task_timeout=_env_timeout())

    def retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is transient enough to be worth a re-run."""
        return isinstance(error, RETRYABLE_EXCEPTIONS)

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before re-running ``key`` after its ``attempt``-th try.

        Exponential in the attempt with a deterministic per-key jitter
        factor in [0.5, 1.5): staggered like random jitter, reproducible
        like everything else in the pipeline.
        """
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return base * (0.5 + deterministic_jitter(key, attempt))


def retry_call(policy: RetryPolicy, key: str, function: Callable, *args,
               clock: Callable[[], float] = time.monotonic,
               sleep: Callable[[float], None] = time.sleep):
    """Run ``function(*args)`` under ``policy``, in the calling process.

    The in-process twin of the multiprocess gather loop: transient
    failures are retried with backoff up to ``max_attempts`` (each retry
    counted as ``tasks.retried``), the *original* error propagates on
    exhaustion, and — because an in-process task cannot be preempted —
    the per-task timeout is enforced post-hoc: an attempt that finishes
    over budget counts as a retryable :class:`TaskTimeoutError`.
    """
    attempt = 1
    while True:
        started = clock()
        try:
            result = function(*args)
        except Exception as error:
            if not policy.retryable(error) or attempt >= policy.max_attempts:
                raise
        else:
            elapsed = clock() - started
            if policy.task_timeout is None or elapsed <= policy.task_timeout:
                return result
            error = TaskTimeoutError(
                f"task {key} took {elapsed:.3f} s, over its "
                f"{policy.task_timeout:g} s budget")
            if attempt >= policy.max_attempts:
                raise error
        metric_count("tasks.retried")
        sleep(policy.delay(key, attempt))
        attempt += 1
