"""Content-addressed pickle store shared by the runtime caches.

This module is the cache *mechanism*, split out of
:mod:`repro.runtime.cache` so that more than one cache can sit on top of
it: the job-level result cache (:class:`~repro.runtime.cache.CachingBackend`)
and the synthesis-level design cache
(:class:`~repro.runtime.synth_cache.SynthesisCache`) both persist through
the same :class:`ResultStore` machinery — atomic temp-file + rename
writes, corruption-as-miss loads, an LRU byte budget and an
incrementally maintained inventory index.

It also holds the *identity* helpers shared by every digest:
:func:`_canonical` (stable canonical forms of key components),
:func:`_canonical_synthesis` (variation-seed normalisation) and
:func:`trace_digest` (content digest of an operand trace).  The
digest *composition* stays with each cache — see
:func:`repro.runtime.cache.job_digest` and
:func:`repro.runtime.synth_cache.synth_digest`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.library import TechnologyLibrary
from repro.exceptions import ConfigurationError
from repro.obs.metrics import active_registries, metric_count
from repro.runtime.faultinject import (
    POINT_STORE_WRITE,
    POINT_STORE_WRITE_DONE,
    fault_point,
)

#: Bumped whenever a stored payload layout changes; old entries are
#: then unreadable by design and silently recomputed.  Caches layer
#: their own format counters on top (``CACHE_FORMAT``,
#: ``SYNTH_CACHE_FORMAT``) for payload-specific evolution.
STORE_FORMAT = 1


# --------------------------------------------------------------------- #
# Identity -> digest building blocks
# --------------------------------------------------------------------- #
def _canonical(value):
    """JSON-serialisable canonical form of a cache-key component.

    Floats go through :meth:`float.hex` so the digest is exact, not
    subject to repr rounding; dataclasses flatten to name-tagged field
    dicts; libraries use their value key (the same one their ``__eq__``
    compares by).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float.hex(value)
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in sorted(value.items())}
    if isinstance(value, TechnologyLibrary):
        return {"__library__": _canonical(value._value_key())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _canonical(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        fields["__dataclass__"] = type(value).__name__
        return fields
    raise ConfigurationError(
        f"cannot derive a stable cache key from a {type(value).__name__} "
        f"({value!r}); cache keys are built from primitives and dataclasses")


def _canonical_synthesis(options) -> dict:
    """Synthesis options with the variation seed normalised for keying.

    With ``variation_sigma == 0`` the seed cannot influence the result,
    so it is normalised away (all unvaried runs share entries).  With a
    positive sigma only integer seeds are reproducible enough to cache
    under — generator objects carry hidden state a digest cannot see.
    """
    canonical = _canonical(
        dataclasses.replace(options, variation_seed=None)
        if options.variation_sigma == 0 else
        options if isinstance(options.variation_seed, int) else None)
    if canonical is None:
        raise ConfigurationError(
            "result caching with variation_sigma > 0 requires an integer "
            f"variation_seed, got {options.variation_seed!r}")
    return canonical


def trace_digest(trace) -> str:
    """SHA-256 of a trace's *content*: width, length and operand bytes.

    The trace name is deliberately excluded — it records provenance
    (e.g. slice positions), not stimulus, and two identically-valued
    traces must share cache entries.
    """
    digest = hashlib.sha256()
    digest.update(f"operand-trace/{trace.width}/{trace.length}/".encode())
    digest.update(np.asarray(trace.a, dtype=np.uint64).astype("<u8", copy=False).tobytes())
    digest.update(np.asarray(trace.b, dtype=np.uint64).astype("<u8", copy=False).tobytes())
    return digest.hexdigest()


def digest_of(payload: dict) -> str:
    """SHA-256 of a canonical-form key payload (sorted compact JSON)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# On-disk store
# --------------------------------------------------------------------- #
@dataclass
class CacheStats:
    """Counters of one cache (cumulative across runs).

    Shared cache instances accumulate over a whole process; callers
    reporting a single run take a :meth:`snapshot` first and describe the
    :meth:`since` delta (or call
    :meth:`~repro.runtime.cache.CachingBackend.reset_counters`), so one
    study's footer never shows another study's hits.
    """

    hits: int = 0
    misses: int = 0
    shard_hits: int = 0
    shard_misses: int = 0
    corrupt: int = 0
    pruned: int = 0
    write_errors: int = 0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counter values."""
        return dataclasses.replace(self)

    def since(self, baseline: "CacheStats") -> "CacheStats":
        """Counter deltas accumulated after ``baseline`` was snapshotted."""
        return CacheStats(**{
            counter.name: getattr(self, counter.name) - getattr(baseline, counter.name)
            for counter in dataclasses.fields(self)})

    def reset(self) -> None:
        """Zero every counter in place (the object stays shared with its store)."""
        for counter in dataclasses.fields(self):
            setattr(self, counter.name, 0)

    def describe(self) -> str:
        """Footer-ready summary, e.g. ``"24 hits / 0 misses"``."""
        text = f"{self.hits} hits / {self.misses} misses"
        if self.shard_hits or self.shard_misses:
            text += f" ({self.shard_hits} shards reused, {self.shard_misses} recomputed)"
        if self.corrupt:
            text += f", {self.corrupt} corrupt entries discarded"
        if self.pruned:
            text += f", {self.pruned} entries pruned to the size budget"
        if self.write_errors:
            text += f", {self.write_errors} writes skipped on I/O errors"
        return text


class ResultStore:
    """Content-addressed pickle store with atomic, corruption-safe entries.

    Layout: ``<root>/<digest[:2]>/<digest>/`` holds ``result.pkl``
    (monolithic entries), or ``golden.pkl`` plus
    ``shard-<start>-<stop>.pkl`` files (sharded entries), plus a
    best-effort human-readable ``meta.json``.

    ``limit_bytes`` puts the store on a byte budget: after a batch of
    writes, :meth:`prune_to_limit` deletes whole entries
    least-recently-used-first (:meth:`load` refreshes the mtime of what
    it reads, so both writes and hits count as use) until the store
    fits.  An unbounded design-space sweep can
    therefore never fill the disk; the evicted work simply becomes a
    recompute-miss on its next request.

    The inventory behind the budget is an in-memory ``(newest mtime,
    total bytes)`` index per entry, built by one full scan on first use
    and updated incrementally by this store's own writes, reads and
    prunes.  Work by *other* processes is detected through the mtimes of
    the 256 prefix directories (entry creation and deletion touch them),
    so a refresh costs O(prefixes) stats instead of O(entries x files);
    a concurrent writer mutating files *inside* an existing entry goes
    unseen until that entry is touched locally — acceptable, because the
    inventory is advisory (budget enforcement), never load-bearing.
    """

    def __init__(self, root, stats: Optional[CacheStats] = None,
                 limit_bytes: Optional[int] = None) -> None:
        if limit_bytes is not None and limit_bytes < 1:
            raise ConfigurationError(
                f"cache limit_bytes must be positive, got {limit_bytes}")
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = stats if stats is not None else CacheStats()
        self.limit_bytes = limit_bytes
        self._write_warned = False
        #: prefix dir -> {entry dir -> [newest mtime, total bytes]};
        #: None until first use.  Bucketing by prefix keeps a prefix
        #: rescan proportional to that prefix's entries, not the store.
        self._index: Optional[Dict[Path, Dict[Path, List]]] = None
        #: prefix dir -> st_mtime_ns at the last (re)scan.
        self._prefix_signatures: Dict[Path, int] = {}

    # ------------------------------------------------------------------ #
    def entry_dir(self, digest: str) -> Path:
        """Directory holding every file of one cache entry."""
        return self.root / digest[:2] / digest

    def result_path(self, digest: str) -> Path:
        return self.entry_dir(digest) / "result.pkl"

    def golden_path(self, digest: str) -> Path:
        return self.entry_dir(digest) / "golden.pkl"

    def shard_path(self, digest: str, start: int, stop: int) -> Path:
        return self.entry_dir(digest) / f"shard-{start:010d}-{stop:010d}.pkl"

    # ------------------------------------------------------------------ #
    def load(self, path: Path):
        """The stored payload, or ``None`` when absent or unreadable.

        A truncated, corrupted or foreign-format file is discarded and
        counted — the caller recomputes; a damaged cache never crashes
        a run.
        """
        try:
            with open(path, "rb") as handle:
                wrapper = pickle.load(handle)
            if wrapper["format"] != STORE_FORMAT:
                raise ValueError(f"unknown cache format {wrapper['format']!r}")
            try:
                # Refresh the mtime so budget pruning evicts by *use*, not
                # by write: an entry the current batch just hit must never
                # be the "oldest" one the same batch's prune throws away.
                os.utime(path)
            except OSError:
                pass
            self._note_use(path)
            return wrapper["payload"]
        except FileNotFoundError:
            return None
        except Exception:
            self.stats.corrupt += 1
            self._discard(path)
            return None

    def store(self, path: Path, payload) -> None:
        """Atomically persist ``payload`` (write-to-temp + rename).

        The temp file lives in the target directory so the final
        :func:`os.replace` stays on one filesystem and is atomic;
        concurrent writers of the same key each publish a complete file
        and the last rename wins (all writers produce identical bytes
        for identical keys, so the winner does not matter).

        A transient :class:`OSError` anywhere in the write path
        (``ENOSPC``, ``EACCES``, a flaky filesystem) is absorbed: the
        entry simply stays a miss, counted in ``stats.write_errors`` and
        warned about once per store — symmetric with :meth:`load`
        treating corruption as a miss, so cache I/O never crashes a long
        sweep.  Unpicklable payloads still raise: that is a caller bug,
        not an environment fault.
        """
        temp_name = None
        try:
            fault_point(POINT_STORE_WRITE, str(path))
            observation = self._observe_before_write(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                                 suffix=".pkl")
            replaced = self._size_of(path)
            with os.fdopen(handle, "wb") as stream:
                pickle.dump({"format": STORE_FORMAT, "payload": payload}, stream,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except OSError as error:
            self._cleanup_temp(temp_name)
            self._note_write_failure(path, error)
            return
        except BaseException:
            self._cleanup_temp(temp_name)
            raise
        self._note_write(path, replaced, observation)
        if active_registries():
            metric_count("store.bytes_written", self._size_of(path))
        # Post-publish hook: lets the fault harness corrupt the entry we
        # just wrote (exercising the corruption-as-miss read path).
        fault_point(POINT_STORE_WRITE_DONE, str(path))

    @staticmethod
    def _cleanup_temp(temp_name: Optional[str]) -> None:
        if temp_name is not None:
            try:
                os.unlink(temp_name)
            except OSError:
                pass

    def _note_write_failure(self, path: Path, error: OSError) -> None:
        """Count a swallowed write error; warn on the first one only."""
        self.stats.write_errors += 1
        metric_count("store.write_errors")
        if not self._write_warned:
            self._write_warned = True
            warnings.warn(
                f"cache write to {path} failed ({error}); the entry stays a "
                f"miss and further write failures of this store will not be "
                f"re-warned", RuntimeWarning, stacklevel=3)

    def write_meta(self, digest: str, meta: dict) -> None:
        """Best-effort ``meta.json`` describing the entry for humans."""
        path = self.entry_dir(digest) / "meta.json"
        if path.exists():
            return
        observation = self._observe_before_write(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                                 suffix=".json")
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(meta, stream, indent=2, sort_keys=True)
            os.replace(temp_name, path)
        except OSError:  # pragma: no cover - diagnostics only
            return
        self._note_write(path, 0, observation)

    def _discard(self, path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            return
        if self._index is not None:
            # Corruption implies an outside actor already touched the
            # entry, so the cheap size delta cannot be trusted — rescan
            # this one entry (corruption is rare; the scan is per-file
            # stats of a single directory).
            entry = path.parent
            bucket = self._index.setdefault(entry.parent, {})
            record = self._scan_entry(entry)
            if record is not None:
                bucket[entry] = record
            else:
                bucket.pop(entry, None)

    # ------------------------------------------------------------------ #
    # Inventory index
    # ------------------------------------------------------------------ #
    @staticmethod
    def _size_of(path: Path) -> int:
        try:
            return os.stat(path).st_size
        except OSError:
            return 0

    def _observe_before_write(self, path: Path) -> Optional[Tuple[bool, Optional[int]]]:
        """Snapshot taken before a write: is the entry dir new, and what
        was the prefix's mtime at that moment?  ``None`` before first use."""
        if self._index is None:
            return None
        entry = path.parent
        if entry.is_dir():
            return (False, None)
        try:
            return (True, entry.parent.stat().st_mtime_ns)
        except OSError:
            return (True, None)

    def _note_write(self, path: Path, replaced_bytes: int,
                    observation: Optional[Tuple[bool, Optional[int]]]) -> None:
        """Fold one written file into the index (no-op before first use)."""
        if self._index is None or observation is None:
            return
        try:
            stat = os.stat(path)
        except OSError:
            return
        entry = path.parent
        bucket = self._index.setdefault(entry.parent, {})
        record = bucket.get(entry)
        if record is None:
            bucket[entry] = [stat.st_mtime, stat.st_size]
        else:
            record[0] = max(record[0], stat.st_mtime)
            record[1] = max(record[1] + stat.st_size - replaced_bytes, 0)
        created_entry, prefix_sig_before = observation
        if created_entry:
            # Our mkdir changed the prefix mtime.  Re-record it only if
            # nothing else had changed it since our last scan — else a
            # concurrent writer's entries would be masked behind our own
            # signature; leaving it stale forces a rescan that sees both.
            prefix = entry.parent
            if prefix_sig_before is not None and \
                    self._prefix_signatures.get(prefix) == prefix_sig_before:
                try:
                    self._prefix_signatures[prefix] = prefix.stat().st_mtime_ns
                except OSError:
                    self._prefix_signatures.pop(prefix, None)

    def _note_use(self, path: Path) -> None:
        """Track a refreshed mtime so pruning sees the entry as recent."""
        if self._index is None:
            return
        record = self._index.get(path.parent.parent, {}).get(path.parent)
        if record is not None:
            try:
                record[0] = max(record[0], os.stat(path).st_mtime)
            except OSError:
                pass

    def _scan_entry(self, entry: Path) -> Optional[List]:
        newest, total = 0.0, 0
        try:
            for item in entry.iterdir():
                stat = item.stat()
                newest = max(newest, stat.st_mtime)
                total += stat.st_size
        except OSError:
            return None
        return [newest, total]

    def _rescan_prefix(self, prefix: Path) -> None:
        assert self._index is not None
        try:
            signature = prefix.stat().st_mtime_ns
        except OSError:
            signature = None
        bucket: Dict[Path, List] = {}
        try:
            children = [child for child in prefix.iterdir() if child.is_dir()]
        except OSError:
            children = []
        for entry in children:
            record = self._scan_entry(entry)
            if record is not None:
                bucket[entry] = record
        self._index[prefix] = bucket
        if signature is not None:
            self._prefix_signatures[prefix] = signature
        else:
            self._prefix_signatures.pop(prefix, None)

    def _refresh_index(self) -> None:
        """Build the index on first use; afterwards rescan only prefixes
        whose mtime changed (external entry creation or deletion)."""
        try:
            prefixes = [child for child in self.root.iterdir() if child.is_dir()]
        except OSError:
            prefixes = []
        if self._index is None:
            self._index = {}
            self._prefix_signatures = {}
            for prefix in prefixes:
                self._rescan_prefix(prefix)
            return
        current = set(prefixes)
        for prefix in prefixes:
            try:
                signature = prefix.stat().st_mtime_ns
            except OSError:
                continue
            if self._prefix_signatures.get(prefix) != signature:
                self._rescan_prefix(prefix)
        for prefix in list(self._index):
            if prefix not in current:
                self._index.pop(prefix, None)
                self._prefix_signatures.pop(prefix, None)

    def entry_inventory(self) -> List[Tuple[float, int, Path]]:
        """Every entry directory as ``(newest_mtime, total_bytes, path)``.

        Served from the incrementally maintained index — one full scan
        on first use, O(prefix-dir stats) afterwards.  Entries deleted
        by a concurrent pruner may linger until their prefix is
        rescanned — the inventory is advisory, never load-bearing.
        """
        self._refresh_index()
        assert self._index is not None
        return [(record[0], record[1], entry)
                for bucket in self._index.values()
                for entry, record in bucket.items()]

    def total_bytes(self) -> int:
        """Bytes currently held by every entry of the store."""
        return sum(size for _, size, _ in self.entry_inventory())

    def prune_to_limit(self) -> int:
        """Delete oldest entries until the store fits ``limit_bytes``.

        Returns the number of entries removed (also accumulated into
        ``stats.pruned``).  A ``None`` budget is a no-op.  Eviction is
        whole-entry: a half-deleted sharded entry would silently degrade
        into per-shard recomputation anyway, but removing the directory
        atomically-ish keeps the accounting simple and the common case
        (monolithic entries) clean.
        """
        if self.limit_bytes is None:
            return 0
        inventory = sorted(self.entry_inventory())
        total = sum(size for _, size, _ in inventory)
        removed = 0
        for _, size, entry in inventory:
            if total <= self.limit_bytes:
                break
            shutil.rmtree(entry, ignore_errors=True)
            if self._index is not None:
                self._index.get(entry.parent, {}).pop(entry, None)
            # The rmtree changed the prefix mtime; the recorded signature
            # is deliberately left stale so the next refresh rescans the
            # prefix — that also surfaces any concurrent writer's entries.
            total -= size
            removed += 1
        self.stats.pruned += removed
        if removed:
            metric_count("store.entries_pruned", removed)
        return removed
