"""Structure-aware execution planner: batched sweep kernels.

A design-space sweep submits many :class:`CharacterizationJob` units
that share almost everything — the same design, the same clock plan,
often the same workload trace — yet per-job execution pays the Python
dispatch of every gate batch, every arrival-threshold application and
every trace packing once *per job*.  The planner restores the economics:

* **Grouping** — jobs are grouped by design identity + clock plan
  (:meth:`CharacterizationJob.cache_key` plus ``clock_periods``).  Each
  group synthesizes once, lowers one *clock-specialised* timing program
  (only the arrival-threshold cone the group's clocks sample is
  compiled), and simulates every trace of the group in one stacked
  multi-trace pass (:meth:`FastTimingSimulator.run_traces_multi`), so
  one bitwise operation per gate batch covers the whole group.
* **Trace interning** — traces are identified by content digest.
  In-process, operand expansion and packing happen once per unique
  trace (shared across every design of a sweep); under the multiprocess
  backend each unique trace is spilled to disk once and loaded once per
  worker, instead of being pickled into every job.
* **Fan-out/fan-in** — per-job results are sliced back out of the
  batched arrays in submission order.  Because packed words of
  different traces never mix and the behavioural golden models are
  elementwise, every result is **bit-identical** to per-job execution
  (asserted by ``tests/test_plan.py`` across serial, multiprocess and
  cached backends).

Jobs that cannot batch — the event-driven simulator tier, or groups
smaller than ``min_group_size`` — pass through to the wrapped backend
unchanged, preserving its whole-job/split scheduling (a single-design
batch behaves exactly as before the planner existed).  The planner
slots *under* :class:`~repro.runtime.cache.CachingBackend`: the cache
keys and stores per-job entries, and only its misses reach the planner,
so warm sweeps still execute zero jobs.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.families import family_of
from repro.obs.metrics import metric_count, metric_observe
from repro.runtime.backends import (
    Backend,
    MultiprocessBackend,
    Task,
    TimingChunkTask,
    _cached_design,
    get_backend,
)
from repro.runtime.faultinject import POINT_TASK, fault_point
from repro.runtime.resilience import retry_call
from repro.runtime.cache import trace_digest
from repro.runtime.jobs import (
    CharacterizationJob,
    DesignCharacterization,
    synthesize_job,
)
from repro.timing.fast_sim import FastTimingSimulator
from repro.utils.lru import IdentityMemo, LRUDict
from repro.utils.phases import phase
from repro.workloads.traces import OperandTrace

#: Traces whose operand dicts are memoised per object identity, so the
#: interned expansion cache in :mod:`repro.timing.operands` sees stable
#: array identities across the many groups of one sweep.
_OPERAND_CACHE: "IdentityMemo[dict]" = IdentityMemo(64)


def _operands_of(trace: OperandTrace) -> dict:
    """``trace.as_operands()``, memoised per trace object.

    Re-deriving the dict per group would mint fresh ``cin`` arrays every
    time and defeat the identity-keyed expansion interning downstream.
    """
    operands = _OPERAND_CACHE.get((trace,))
    if operands is None:
        operands = _OPERAND_CACHE.put((trace,), trace.as_operands())
    return operands


def group_key(job: CharacterizationJob) -> tuple:
    """Planner grouping key: everything but the trace and the stats flag."""
    return (job.cache_key(), job.clock_periods)


def build_group_simulator(job: CharacterizationJob,
                          synthesized) -> FastTimingSimulator:
    """The clock-specialised fast simulator of one planner group.

    Grouping by clock plan is what makes the specialisation safe: every
    job of the group samples exactly these periods, so the compiled
    program only needs their arrival-threshold cone.
    """
    with phase("lower"):
        return FastTimingSimulator(synthesized.netlist, synthesized.annotation,
                                   engine=job.engine,
                                   clock_periods=job.clock_periods)


def execute_group(jobs: Sequence[CharacterizationJob],
                  synthesized=None, simulator=None) -> List[DesignCharacterization]:
    """Execute one same-design, same-clock-plan group in a batched pass.

    Behavioural golden references run as **one** vectorised pass over
    the concatenated operand arrays (both models are elementwise, so
    slicing the result per job is bit-identical to per-job calls); the
    gate-level golden words fall out of the same packed evaluation that
    feeds the timing masks, so the group pays a single logic pass where
    per-job execution pays two per job.
    """
    jobs = list(jobs)
    job0 = jobs[0]
    metric_count("jobs.simulated", len(jobs))
    if synthesized is None:
        synthesized = synthesize_job(job0)
    if simulator is None:
        simulator = build_group_simulator(job0, synthesized)
    traces = [job.trace for job in jobs]
    bounds = np.cumsum([0] + [trace.length for trace in traces])

    family = family_of(job0.entry)
    with phase("simulate", design=job0.name, jobs=len(jobs),
               transitions=int(bounds[-1])):
        a = np.concatenate([trace.a for trace in traces])
        b = np.concatenate([trace.b for trace in traces])
        diamond_all = family.exact_words(job0.width, a, b)
        # golden_words copies the exact baseline's diamond buffer, like
        # golden_reference() does: a result must never alias its gold
        # and diamond words to one buffer.
        gold_all, _ = family.golden_words(job0.entry, job0.width, a, b,
                                          diamond=diamond_all)

    batched = simulator.run_traces_multi(
        [_operands_of(trace) for trace in traces], job0.clock_periods,
        output_bus=job0.output_bus, include_settled_values=True)

    results: List[DesignCharacterization] = []
    for index, job in enumerate(jobs):
        low, high = int(bounds[index]), int(bounds[index + 1])
        diamond = diamond_all[low:high]
        gold = gold_all[low:high]
        structural_stats = None
        if job.collect_structural_stats and not job0.entry.is_exact:
            with phase("simulate"):
                gold, structural_stats = family.golden_words(
                    job.entry, job.width, job.trace.a, job.trace.b,
                    collect_stats=True)
        netlist_words = batched.settled_values[index]
        if not np.array_equal(netlist_words, gold):
            raise ConfigurationError(
                f"synthesized netlist of {job.name} disagrees with its behavioural "
                "golden model; the synthesis flow is unfaithful")
        results.append(DesignCharacterization(
            entry=job.entry,
            synthesized=synthesized,
            trace=job.trace,
            diamond_words=diamond,
            gold_words=gold,
            timing_traces=batched.timing[index],
            structural_stats=structural_stats,
            netlist_words=netlist_words,
        ))
    return results


# --------------------------------------------------------------------- #
# Multiprocess group execution: interned traces, one task per group
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _TraceRef:
    """One group member's trace, by content digest and spill path.

    Presentational trace names ride along in the spill payload; results
    never depend on them (jobs report their *design* name).
    """

    digest: str
    path: str
    collect_structural_stats: bool


@dataclass(frozen=True)
class _GroupSpec:
    """A planner group as shipped to a worker: jobs minus their traces."""

    entry: object
    width: int
    synthesis: object
    simulator: str
    engine: str
    output_bus: str
    clock_periods: Tuple[float, ...]
    members: Tuple[_TraceRef, ...]
    timing_only: bool = False


#: Worker-side interned traces by digest (LRU; traces can be large).
_WORKER_TRACES: "LRUDict[str, OperandTrace]" = LRUDict(32)

#: Worker-side clock-specialised simulators per (cache key, clock plan).
#: LRU-bounded: a sweep touches each group once, so entries beyond the
#: working set are dead weight in a long-lived warm pool.
_GROUP_SIMULATORS: "LRUDict[tuple, FastTimingSimulator]" = LRUDict(16)


def _load_trace(ref: _TraceRef) -> OperandTrace:
    """Resolve a trace ref in the worker: one disk load per digest."""
    trace = _WORKER_TRACES.get(ref.digest)
    if trace is None:
        with open(ref.path, "rb") as handle:
            payload = pickle.load(handle)
        trace = _WORKER_TRACES.put(ref.digest, OperandTrace(
            a=payload["a"], b=payload["b"],
            width=payload["width"], name=payload["name"]))
    return trace


def _group_jobs(spec: _GroupSpec) -> List[CharacterizationJob]:
    return [CharacterizationJob(
        entry=spec.entry,
        trace=_load_trace(ref),
        clock_periods=spec.clock_periods,
        simulator=spec.simulator,
        engine=spec.engine,
        synthesis=spec.synthesis,
        width=spec.width,
        collect_structural_stats=ref.collect_structural_stats,
        output_bus=spec.output_bus,
    ) for ref in spec.members]


def _group_simulator(job: CharacterizationJob, synthesized) -> FastTimingSimulator:
    key = group_key(job)
    simulator = _GROUP_SIMULATORS.get(key)
    if simulator is None:
        simulator = _GROUP_SIMULATORS.put(key,
                                          build_group_simulator(job, synthesized))
    return simulator


def _planned_group_task(spec: _GroupSpec):
    """Worker task: one whole planner group, batched.

    Returns per-member results in member order; traces are stripped
    before pickling back (the parent restores them), and ``timing_only``
    groups return just the per-member timing dicts.
    """
    jobs = _group_jobs(spec)
    job0 = jobs[0]
    fault_point(POINT_TASK, job0.name)
    synthesized = _cached_design(job0)
    simulator = _group_simulator(job0, synthesized)
    if spec.timing_only:
        return simulator.run_traces_multi(
            [_operands_of(job.trace) for job in jobs], job0.clock_periods,
            output_bus=job0.output_bus).timing
    results = execute_group(jobs, synthesized=synthesized, simulator=simulator)
    for result in results:
        result.trace = None
    return results


class PlannedBackend(Backend):
    """Decorate a backend with grouping, interning and batched execution.

    Parameters
    ----------
    inner:
        The backend (or backend name) the plan executes on.  Serial
        inners run batched groups in the calling process; a
        :class:`MultiprocessBackend` receives one task per group on its
        own pool (traces spilled once per unique digest, loaded once per
        worker).  Anything the planner cannot batch is passed through to
        ``inner`` untouched, in one batch, preserving its scheduling.
    min_group_size:
        Smallest group worth batching (default 2); smaller groups pass
        through, so the single-job split path of the multiprocess
        backend is never regressed.
    """

    name = "planned"

    def __init__(self, inner="serial", min_group_size: int = 2) -> None:
        if min_group_size < 2:
            raise ConfigurationError(
                f"min_group_size must be at least 2, got {min_group_size}")
        self.inner = get_backend(inner)
        self.min_group_size = min_group_size
        # Digest memo; modest capacity on purpose — entries pin their
        # trace (for the identity check), and recomputing a SHA-256 is
        # far cheaper than keeping large dead traces alive.
        self._digests: "IdentityMemo[str]" = IdentityMemo(64)

    def describe(self) -> str:
        return f"planned[{self.inner.describe()}]"

    def close(self) -> None:
        self.inner.close()

    # ------------------------------------------------------------------ #
    def _digest(self, trace: OperandTrace) -> str:
        digest = self._digests.get((trace,))
        if digest is None:
            digest = self._digests.put((trace,), trace_digest(trace))
        return digest

    def _split(self, jobs: Sequence[CharacterizationJob]
               ) -> Tuple[List[List[int]], List[int]]:
        """Indices of batchable groups, and pass-through indices in order."""
        grouped: Dict[tuple, List[int]] = {}
        for index, job in enumerate(jobs):
            grouped.setdefault(group_key(job), []).append(index)
        batched: List[List[int]] = []
        passthrough: List[int] = []
        for key, indices in grouped.items():
            job = jobs[indices[0]]
            if job.simulator == "fast" and len(indices) >= self.min_group_size:
                batched.append(indices)
            else:
                passthrough.extend(indices)
        passthrough.sort()
        return batched, passthrough

    def _spill_specs(self, jobs: Sequence[CharacterizationJob],
                     batched: List[List[int]], spill_dir: str,
                     timing_only: bool) -> List[_GroupSpec]:
        """Write each unique trace once, build one spec per group."""
        paths: Dict[str, str] = {}
        specs: List[_GroupSpec] = []
        for indices in batched:
            members = []
            for index in indices:
                job = jobs[index]
                digest = self._digest(job.trace)
                path = paths.get(digest)
                if path is None:
                    path = paths[digest] = os.path.join(spill_dir, f"{digest}.pkl")
                    with open(path, "wb") as handle:
                        pickle.dump({"a": job.trace.a, "b": job.trace.b,
                                     "width": job.trace.width,
                                     "name": job.trace.name}, handle,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                members.append(_TraceRef(
                    digest=digest, path=path,
                    collect_structural_stats=job.collect_structural_stats))
            job0 = jobs[indices[0]]
            specs.append(_GroupSpec(
                entry=job0.entry, width=job0.width, synthesis=job0.synthesis,
                simulator=job0.simulator, engine=job0.engine,
                output_bus=job0.output_bus, clock_periods=job0.clock_periods,
                members=tuple(members), timing_only=timing_only))
        metric_count("plan.traces_interned", len(paths))
        return specs

    @staticmethod
    def _subdivide(batched: List[List[int]], target: int) -> List[List[int]]:
        """Split index groups until at least ``target`` tasks exist.

        One task per group starves a wide pool when a batch has few
        groups (a single design over many traces, or the chunk tasks of
        one sharded cache entry).  Splitting a group is always safe —
        each sub-group is itself a valid same-design, same-clock-plan
        group, and concatenating sub-group results in index order is
        the group's result — so the largest group is halved until the
        task count reaches the pool width (or nothing is left to split).
        """
        groups = [list(indices) for indices in batched]
        while len(groups) < target:
            largest = max(range(len(groups)), key=lambda i: len(groups[i]))
            if len(groups[largest]) < 2:
                break
            indices = groups[largest]
            middle = len(indices) // 2
            groups[largest:largest + 1] = [indices[:middle], indices[middle:]]
        return groups

    def _run_grouped(self, jobs: Sequence[CharacterizationJob],
                     batched: List[List[int]], timing_only: bool,
                     results: List, passthrough_fn: Callable[[], None]) -> None:
        """Execute the batched groups, interleaving the pass-through batch.

        On a multiprocess inner the group tasks are submitted first so
        the pass-through jobs (scheduled by the inner backend itself)
        overlap with them on the same pool; groups are subdivided until
        the pool has one task per worker, so a batch with fewer groups
        than workers still parallelises.
        """
        if batched:
            metric_count("plan.groups", len(batched))
            for indices in batched:
                metric_observe("plan.group_size", len(indices))
        if isinstance(self.inner, MultiprocessBackend) and batched:
            batched = self._subdivide(batched, self.inner.workers)
            spill_dir = tempfile.mkdtemp(prefix="repro-plan-traces-")
            try:
                specs = self._spill_specs(jobs, batched, spill_dir, timing_only)
                # Group tasks go through the inner backend's resilient
                # gather: transient group failures retry, a killed worker
                # re-dispatches only unfinished groups, and the
                # pass-through batch interleaves on the same pool.
                gathered = self.inner.run_calls(
                    [(_planned_group_task, (spec,), f"group:{index}")
                     for index, spec in enumerate(specs)],
                    interleave=passthrough_fn)
                for indices, outcomes in zip(batched, gathered):
                    for index, outcome in zip(indices, outcomes):
                        results[index] = outcome
                self.inner.drain_telemetry()
                if not timing_only:
                    for indices in batched:
                        for index in indices:
                            results[index].trace = jobs[index].trace
            finally:
                shutil.rmtree(spill_dir, ignore_errors=True)
            return

        designs: Dict[tuple, object] = {}
        simulators: Dict[tuple, FastTimingSimulator] = {}
        policy = self.inner.retry_policy
        for group_index, indices in enumerate(batched):
            group = [jobs[index] for index in indices]
            job0 = group[0]

            def body(group=group, job0=job0):
                fault_point(POINT_TASK, job0.name)
                design_key = job0.cache_key()
                synthesized = designs.get(design_key)
                if synthesized is None:
                    synthesized = designs[design_key] = synthesize_job(job0)
                simulator_key = group_key(job0)
                simulator = simulators.get(simulator_key)
                if simulator is None:
                    simulator = simulators[simulator_key] = \
                        build_group_simulator(job0, synthesized)
                if timing_only:
                    return simulator.run_traces_multi(
                        [_operands_of(job.trace) for job in group],
                        job0.clock_periods, output_bus=job0.output_bus).timing
                return execute_group(group, synthesized=synthesized,
                                     simulator=simulator)
            outcomes = retry_call(policy, f"group:{job0.name}:{group_index}", body)
            for index, outcome in zip(indices, outcomes):
                results[index] = outcome
        passthrough_fn()

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        jobs = list(jobs)
        batched, passthrough = self._split(jobs)
        if not batched:
            # Nothing groups: hand the whole batch to the inner backend so
            # its scheduling heuristics (whole-job vs split) see the full
            # picture — the planner leaves no trace on this path.
            return self.inner.run(jobs)
        results: List = [None] * len(jobs)

        def passthrough_fn() -> None:
            if passthrough:
                outcomes = self.inner.run([jobs[index] for index in passthrough])
                for index, outcome in zip(passthrough, outcomes):
                    results[index] = outcome

        self._run_grouped(jobs, batched, False, results, passthrough_fn)
        return results

    def run_tasks(self, tasks: Sequence[Task]) -> List[object]:
        tasks = list(tasks)
        timing_indices = [index for index, task in enumerate(tasks)
                          if isinstance(task, TimingChunkTask)]
        timing_jobs = [tasks[index].job for index in timing_indices]
        batched, passthrough_local = self._split(timing_jobs)
        if not batched:
            return self.inner.run_tasks(tasks)
        # Map the grouping (computed over timing tasks only) back to the
        # full task list; golden tasks always pass through.
        batched = [[timing_indices[local] for local in group] for group in batched]
        passthrough = sorted(
            set(range(len(tasks)))
            - {index for group in batched for index in group})
        results: List = [None] * len(tasks)

        def passthrough_fn() -> None:
            if passthrough:
                outcomes = self.inner.run_tasks([tasks[index] for index in passthrough])
                for index, outcome in zip(passthrough, outcomes):
                    results[index] = outcome

        self._run_grouped([task.job for task in tasks], batched, True, results,
                          passthrough_fn)
        return results
