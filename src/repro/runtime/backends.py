"""Pluggable execution backends for characterization jobs.

``serial``
    Executes jobs one after the other in the calling process — the
    reference behaviour, identical to calling
    :func:`~repro.runtime.jobs.execute_job` in a loop.

``multiprocess``
    Fans jobs out across worker processes with
    :class:`concurrent.futures.ProcessPoolExecutor`.  Each job is split
    into one *golden* task (synthesis cross-check, diamond/golden words,
    structural statistics) plus one timing task per word-aligned trace
    chunk (see :func:`repro.circuit.compiled.transition_chunks`), so a
    single large job parallelises as well as a batch of small ones.
    Workers cache the synthesized design, its compiled programs and the
    simulator per :meth:`CharacterizationJob.cache_key`, so lowering
    happens once per process no matter how many chunks it executes.
    Chunks are merged strictly in trace order, and both simulator tiers
    are transition-local, so results are **bit-identical to the serial
    backend at any worker count**.

Backends raise whatever the job execution raises (e.g. the golden-model
cross-check failure) — scheduling does not swallow errors.  *Transient*
failures, however, are survived rather than raised: both backends retry
individual tasks under a :class:`~repro.runtime.resilience.RetryPolicy`
(safe because every task is deterministic and transition-local, so a
retried task is bit-identical by construction), and the multiprocess
backend recovers from a broken pool by rebuilding its executor and
re-dispatching only the tasks whose futures did not complete — after
``max_rebuilds`` consecutive rebuilds without progress it degrades to
in-process execution with a :class:`RuntimeWarning` instead of failing
the batch.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as _wait_futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.circuit.compiled import WORD_BITS, transition_chunks
from repro.exceptions import ConfigurationError, TaskTimeoutError
from repro.obs.manifest import resolve_telemetry_dir, telemetry_run
from repro.obs.metrics import metric_count
from repro.obs.spill import drain_spill_dir, spilled_call, telemetry_active
from repro.runtime.faultinject import POINT_TASK, fault_point, reset_fault_plan
from repro.runtime.resilience import RetryPolicy, retry_call
from repro.runtime.jobs import (
    CharacterizationJob,
    DesignCharacterization,
    build_simulator,
    execute_job,
    golden_reference,
    merge_timing_chunks,
    run_timing,
    synthesize_job,
)
from repro.utils.phases import phase

#: Names accepted by :func:`get_backend` (and ``StudyConfig.backend``).
BACKENDS = ("serial", "multiprocess")


# --------------------------------------------------------------------- #
# Sub-job tasks: the finer scheduling granularity below a whole job
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GoldenTask:
    """Sub-job unit: the golden half of one job, no timing simulation.

    Executing it yields the 5-tuple ``(synthesized, diamond_words,
    gold_words, structural_stats, netlist_words)`` over the job's full
    trace — exactly what :func:`~repro.runtime.jobs.golden_reference`
    returns, prefixed with the synthesized design.
    """

    job: CharacterizationJob


@dataclass(frozen=True)
class TimingChunkTask:
    """Sub-job unit: timing simulation of one (typically sliced) trace.

    The job's trace *is* the chunk — callers slice before building the
    task.  Executing it yields the ``{clock_period: TimingErrorTrace}``
    dict of :func:`~repro.runtime.jobs.run_timing`; no golden words are
    derived, which is the point: a caller that only needs timing shards
    (the result cache's cold sharded path) no longer pays for
    chunk-local golden references it would discard.
    """

    job: CharacterizationJob


#: A schedulable sub-job unit.
Task = Union[GoldenTask, TimingChunkTask]


def execute_tasks(tasks: Sequence[Task],
                  designs: Optional[Dict[tuple, object]] = None,
                  simulators: Optional[Dict[tuple, object]] = None) -> List[object]:
    """Execute sub-job tasks in the calling process, in order.

    ``designs`` / ``simulators`` are per-``cache_key`` reuse maps (the
    same sharing the serial backend applies to whole jobs); passing
    dicts in lets a caller keep them warm across batches.
    """
    designs = designs if designs is not None else {}
    simulators = simulators if simulators is not None else {}
    results: List[object] = []
    for task in tasks:
        job = task.job
        key = job.cache_key()
        synthesized = designs.get(key)
        if synthesized is None:
            synthesized = designs[key] = synthesize_job(job)
        if isinstance(task, GoldenTask):
            results.append((synthesized,) + golden_reference(job, synthesized))
            continue
        # Simulators are clock-specialised, so their reuse key carries
        # the clock plan on top of the design identity.
        simulator_key = (key, job.clock_periods)
        simulator = simulators.get(simulator_key)
        if simulator is None:
            simulator = simulators[simulator_key] = build_simulator(
                job.simulator, synthesized, engine=job.engine,
                clock_periods=job.clock_periods)
        results.append(run_timing(job, simulator))
    return results


class Backend:
    """Interface of an execution backend: run a batch of jobs in order.

    Besides whole jobs, every backend also schedules *sub-job tasks*
    (:class:`GoldenTask` / :class:`TimingChunkTask`) through
    :meth:`run_tasks` — the granularity the result cache's sharded path
    and the execution planner use.  The base implementation executes
    tasks serially in the calling process; concrete backends override it
    with their own scheduling.
    """

    name = "abstract"

    #: The task-level retry policy; concrete backends resolve it from
    #: the environment at construction (``REPRO_MAX_RETRIES`` /
    #: ``REPRO_TASK_TIMEOUT``) unless one is passed in.
    retry_policy: RetryPolicy = RetryPolicy()

    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        """Execute ``jobs`` and return their results in submission order."""
        raise NotImplementedError

    def run_tasks(self, tasks: Sequence[Task]) -> List[object]:
        """Execute sub-job tasks and return their results in order."""
        return execute_tasks(tasks)

    def describe(self) -> str:
        """Short human-readable backend description (recorded in reports)."""
        return self.name

    def close(self) -> None:
        """Release held resources (worker pools); idempotent, no-op by default."""

    def drain_telemetry(self) -> None:
        """Merge any worker-side telemetry spills; no-op for in-process backends."""


class SerialBackend(Backend):
    """Run every job in the calling process, one after the other.

    Like the multiprocess workers, a batch shares one synthesized design
    and one simulator per :meth:`CharacterizationJob.cache_key`, so a
    study submitting several traces of the same design (e.g. the
    prediction study's training + evaluation pair) lowers it only once.

    Each job runs under the backend's :class:`RetryPolicy`: transient
    failures are retried in place, and — since an in-process task cannot
    be preempted — the per-task timeout is enforced post-hoc (an attempt
    finishing over budget counts as a retryable timeout).
    """

    name = "serial"

    def __init__(self, retry_policy: Optional[RetryPolicy] = None) -> None:
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy.from_env())

    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        metric_count("jobs.simulated", len(jobs))
        simulators: Dict[tuple, object] = {}
        results: List[DesignCharacterization] = []
        for index, job in enumerate(jobs):
            def body(job=job):
                fault_point(POINT_TASK, job.name)
                # synthesize_job memoises process-wide (and reads through
                # the persistent synthesis cache), so a batch shares one
                # design per synthesis identity without a batch-local dict.
                synthesized = synthesize_job(job)
                simulator_key = (job.cache_key(), job.clock_periods)
                if simulator_key not in simulators:
                    simulators[simulator_key] = build_simulator(
                        job.simulator, synthesized, engine=job.engine,
                        clock_periods=job.clock_periods)
                return execute_job(job, synthesized=synthesized,
                                   simulator=simulators[simulator_key])
            results.append(retry_call(self.retry_policy,
                                      f"{job.name}:{index}", body))
        return results

    def run_tasks(self, tasks: Sequence[Task]) -> List[object]:
        designs: Dict[tuple, object] = {}
        simulators: Dict[tuple, object] = {}
        results: List[object] = []
        for index, task in enumerate(tasks):
            def body(task=task):
                fault_point(POINT_TASK, task.job.name)
                return execute_tasks([task], designs, simulators)[0]
            results.append(retry_call(self.retry_policy,
                                      f"{task.job.name}:{index}", body))
        return results


# --------------------------------------------------------------------- #
# Worker-side machinery of the multiprocess backend
# --------------------------------------------------------------------- #
#: Per-process simulator cache by (job cache key, clock plan).  The
#: design-side cache lives in :func:`repro.runtime.jobs.synthesize_job`
#: (the read-through path of the persistent synthesis cache), so
#: lowering happens once per worker process and design, no matter how
#: many trace chunks the worker executes.
_SIMULATOR_CACHE: Dict[tuple, object] = {}


def _cached_design(job: CharacterizationJob):
    return synthesize_job(job)


def _cached_simulator(job: CharacterizationJob):
    # Clock plan in the key: simulators are specialised to the periods
    # the job samples, so two plans over one design need two programs.
    key = (job.cache_key(), job.clock_periods)
    simulator = _SIMULATOR_CACHE.get(key)
    if simulator is None:
        simulator = _SIMULATOR_CACHE[key] = build_simulator(
            job.simulator, _cached_design(job), engine=job.engine,
            clock_periods=job.clock_periods)
    return simulator


def _golden_task(job: CharacterizationJob):
    """Worker task: synthesize (cached) and compute the golden references."""
    fault_point(POINT_TASK, job.name)
    synthesized = _cached_design(job)
    diamond, gold, stats, netlist_words = golden_reference(job, synthesized)
    return synthesized, diamond, gold, stats, netlist_words


def _timing_chunk_task(chunk_job: CharacterizationJob):
    """Worker task: simulate one trace chunk (the job's trace is the slice)."""
    fault_point(POINT_TASK, chunk_job.name)
    return run_timing(chunk_job, _cached_simulator(chunk_job))


def _whole_job_task(job: CharacterizationJob) -> DesignCharacterization:
    """Worker task: one complete job, with the worker's design/simulator cache.

    The trace is stripped from the result before it is pickled back —
    the parent already holds it on the job and restores it on receipt.
    """
    fault_point(POINT_TASK, job.name)
    result = execute_job(job, synthesized=_cached_design(job),
                         simulator=_cached_simulator(job))
    result.trace = None
    return result


@dataclass
class _PendingCall:
    """Driver-side state of one schedulable callable in a resilient gather."""

    index: int
    function: Callable
    args: tuple
    key: str
    attempts: int = 0
    resolved: bool = False
    future: object = field(default=None, repr=False)


class MultiprocessBackend(Backend):
    """Fan characterization work out across worker processes.

    Parameters
    ----------
    workers:
        Worker process count (defaults to ``os.cpu_count()``).  Requests
        beyond the machine's CPU count are clamped to it with a warning:
        the workload is compute-bound, so extra processes only add
        scheduling overhead (a 1-CPU bench host measured 0.92x with 4
        workers).
    chunk_transitions:
        Transitions per timing chunk.  ``None`` picks a word-aligned
        size splitting each job into about ``workers`` chunks; explicit
        values are rounded up to the packed word size (64), which keeps
        chunked execution bit-identical to a full-trace run.
    retry_policy:
        Task-level :class:`RetryPolicy` (default: from the environment —
        ``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT``).
    max_rebuilds:
        Consecutive pool rebuilds without a single completed task before
        the backend degrades to in-process execution (with a
        :class:`RuntimeWarning`) instead of thrashing a pool whose
        workers die on every task.
    """

    name = "multiprocess"

    def __init__(self, workers: Optional[int] = None,
                 chunk_transitions: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 max_rebuilds: int = 3) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {workers}")
        if chunk_transitions is not None and chunk_transitions < 1:
            raise ConfigurationError(
                f"chunk_transitions must be at least 1, got {chunk_transitions}")
        if max_rebuilds < 1:
            raise ConfigurationError(
                f"max_rebuilds must be at least 1, got {max_rebuilds}")
        cpus = os.cpu_count() or 1
        if workers is not None and workers > cpus:
            warnings.warn(
                f"clamping {workers} requested workers to the {cpus} available "
                f"CPU(s); oversubscribing a compute-bound pool only adds overhead",
                RuntimeWarning, stacklevel=2)
            workers = cpus
        self.workers = workers if workers is not None else cpus
        self.chunk_transitions = chunk_transitions
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy.from_env())
        self.max_rebuilds = max_rebuilds
        self._pool: Optional[ProcessPoolExecutor] = None
        self._degraded = False
        self._rebuilds_without_progress = 0
        # Telemetry spill: per-worker JSONL files the driver merges back
        # (created lazily when a task is submitted under active
        # telemetry, removed by close()).  Offsets track the bytes each
        # drain already consumed, so draining is safe mid-batch.
        self._spill_dir: Optional[str] = None
        self._spill_offsets: Dict[str, int] = {}

    def describe(self) -> str:
        return f"multiprocess[{self.workers}]"

    # ------------------------------------------------------------------ #
    # Pool lifecycle.  The executor persists across run() calls so the
    # per-worker design/simulator caches stay warm between batches; it is
    # created lazily and torn down by close() (or by the executor's own
    # manager thread once the backend is garbage-collected).
    # ------------------------------------------------------------------ #
    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Workers drop any fault-plan instance inherited via fork:
            # fault event counters are per-process by contract, and an
            # inherited driver counter would otherwise let a plan like
            # "kill every 40th task" kill every fresh worker on its
            # first task.
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             initializer=reset_fault_plan)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        Telemetry spills are drained *first*, so spans and metrics of
        completed workers survive a close on the failure path too; the
        temp spill directory is then removed.
        """
        self.drain_telemetry()
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._spill_offsets = {}

    def __enter__(self) -> "MultiprocessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _chunk_size(self, transitions: int) -> int:
        if self.chunk_transitions is not None:
            return self.chunk_transitions
        # About one chunk per worker, word-aligned, at least one word.
        per_worker = -(-transitions // self.workers)
        return max(WORD_BITS, -(-per_worker // WORD_BITS) * WORD_BITS)

    def submit(self, function: Callable, *args):
        """Submit one callable to the worker pool (a raw future).

        Callers own the future; most should schedule through
        :meth:`run_calls` instead, which layers retries, pool recovery
        and re-dispatch on top of raw submission.

        When telemetry is active in the submitting context, the task is
        wrapped so the worker records its own spans/metrics and spills
        them for :meth:`drain_telemetry` to merge — callers get worker
        attribution for free.
        """
        if telemetry_active():
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix="repro-obs-spill-")
            return self._executor().submit(spilled_call, self._spill_dir,
                                           function, *args)
        return self._executor().submit(function, *args)

    def drain_telemetry(self) -> None:
        """Merge completed workers' spilled spans/metrics into ambient state."""
        if self._spill_dir is not None:
            drain_spill_dir(self._spill_dir, self._spill_offsets)

    # ------------------------------------------------------------------ #
    # Resilient gather: the one scheduling path every batch goes through
    # ------------------------------------------------------------------ #
    def _recover_pool(self, progressed: bool) -> None:
        """Tear down a broken/stalled pool and account for the rebuild.

        The spill directory survives (only :meth:`close` removes it), so
        completed workers' telemetry is drained before their processes
        are reaped; stuck workers are terminated best-effort — a pool
        rebuilt around them would otherwise inherit their task queue.
        """
        self.drain_telemetry()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        metric_count("pool.rebuilds")
        self._rebuilds_without_progress = \
            (0 if progressed else self._rebuilds_without_progress) + 1
        if self._rebuilds_without_progress >= self.max_rebuilds and not self._degraded:
            self._degraded = True
            metric_count("backend.degraded")
            warnings.warn(
                f"multiprocess backend degraded to in-process execution after "
                f"{self._rebuilds_without_progress} consecutive pool rebuilds "
                f"without progress", RuntimeWarning, stacklevel=3)

    def run_calls(self, calls: Sequence[Tuple[Callable, tuple, str]],
                  interleave: Optional[Callable[[], None]] = None) -> List[object]:
        """Resiliently execute ``(function, args, key)`` callables in order.

        The scheduling substrate under :meth:`run` / :meth:`run_tasks`
        and the planner's group tasks.  Per round: every outstanding
        call is submitted, then the driver waits for completions —

        * a transient task failure is retried (with the policy's
          deterministic backoff) up to ``max_attempts``; the original
          error propagates on exhaustion, non-retryable errors at once;
        * a :class:`BrokenProcessPool` (worker killed mid-task) rebuilds
          the executor and re-dispatches only the calls whose futures
          did not complete — completed results are kept, a re-dispatched
          task is bit-identical by construction;
        * a wait window of ``task_timeout`` seconds with **no** task
          completing counts as a stall: the pool is rebuilt and every
          unresolved call charged one timeout attempt, so a genuinely
          stuck task exhausts its budget with a
          :class:`TaskTimeoutError` instead of re-dispatching forever;
        * after ``max_rebuilds`` consecutive rebuilds without progress
          the backend degrades to in-process execution (warned once).

        ``interleave`` is invoked once after the first submission —
        the planner hook that overlaps pass-through jobs with group
        tasks on the same pool.
        """
        policy = self.retry_policy
        pending = [_PendingCall(index, function, args, key)
                   for index, (function, args, key) in enumerate(calls)]
        results: List[object] = [None] * len(pending)
        outstanding = pending
        while outstanding:
            if self._degraded:
                if interleave is not None:
                    interleave, hook = None, interleave
                    hook()
                for call in outstanding:
                    results[call.index] = retry_call(
                        policy, call.key, call.function, *call.args)
                    call.resolved = True
                break
            broken = stalled = progressed = False
            failure: Optional[Tuple[int, Exception]] = None
            unresolved: Dict[object, _PendingCall] = {}
            try:
                for call in outstanding:
                    call.future = self.submit(call.function, *call.args)
                    unresolved[call.future] = call
            except BrokenProcessPool:
                broken = True
            if interleave is not None:
                interleave, hook = None, interleave
                hook()
            retries: List[_PendingCall] = []
            if not broken:
                with phase("schedule.wait"):
                    while unresolved and not broken:
                        done, _ = _wait_futures(set(unresolved),
                                                timeout=policy.task_timeout,
                                                return_when=FIRST_COMPLETED)
                        if not done:
                            stalled = True
                            break
                        for future in done:
                            call = unresolved.pop(future)
                            try:
                                outcome = future.result()
                            except BrokenProcessPool:
                                broken = True
                                continue
                            except Exception as error:
                                if policy.retryable(error) and \
                                        call.attempts + 1 < policy.max_attempts:
                                    call.attempts += 1
                                    retries.append(call)
                                elif failure is None or call.index < failure[0]:
                                    failure = (call.index, error)
                                continue
                            results[call.index] = outcome
                            call.resolved = True
                            progressed = True
            if broken or stalled:
                self._recover_pool(progressed)
                outstanding = [call for call in outstanding if not call.resolved]
                if stalled:
                    # No task finished inside the timeout window: charge
                    # every unresolved call one timeout attempt.
                    for call in outstanding:
                        call.attempts += 1
                        if call.attempts >= policy.max_attempts:
                            raise TaskTimeoutError(
                                f"task {call.key} made no progress within its "
                                f"{policy.task_timeout:g} s budget across "
                                f"{call.attempts} attempts")
                metric_count("tasks.retried", len(outstanding))
                continue
            if failure is not None:
                raise failure[1]
            if retries:
                metric_count("tasks.retried", len(retries))
                time.sleep(max(policy.delay(call.key, call.attempts)
                               for call in retries))
                outstanding = retries
                continue
            outstanding = []
        return results

    def run_tasks(self, tasks: Sequence[Task]) -> List[object]:
        tasks = list(tasks)
        if not tasks:
            return []
        results = self.run_calls([
            (_golden_task if isinstance(task, GoldenTask) else _timing_chunk_task,
             (task.job,), f"{task.job.name}:{index}")
            for index, task in enumerate(tasks)])
        self.drain_telemetry()
        return results

    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        jobs = list(jobs)
        if not jobs:
            return []

        # Scheduling granularity.  A batch with at least one job per
        # worker parallelises best as whole jobs: every design is
        # synthesized exactly once somewhere in the pool.  A small batch
        # (fewer jobs than workers) is instead split into one golden task
        # plus per-chunk timing tasks, trading a little duplicated
        # lowering for intra-job parallelism.  An explicit
        # ``chunk_transitions`` always forces the split (the determinism
        # tests rely on it).  Either way results are bit-identical.
        split = self.chunk_transitions is not None or len(jobs) < self.workers
        metric_count("jobs.simulated", len(jobs))
        if not split:
            results = self.run_calls([
                (_whole_job_task, (job,), f"{job.name}:{index}")
                for index, job in enumerate(jobs)])
            for job, result in zip(jobs, results):
                result.trace = job.trace
        else:
            results = self._run_split(jobs)
        self.drain_telemetry()
        return results

    def _run_split(self, jobs: List[CharacterizationJob]) -> List[DesignCharacterization]:
        # Plan: per job, one golden task plus one timing task per chunk.
        # A chunk over transitions [start, stop) needs input vectors
        # [start, stop] — one vector of overlap with its predecessor.
        spans: List[List[Tuple[int, int]]] = [
            transition_chunks(job.trace.transitions, self._chunk_size(job.trace.transitions))
            for job in jobs
        ]
        # One flat resilient gather: goldens first, then every chunk in
        # job order (the chunk merge below is local compute, not waiting).
        calls: List[Tuple[Callable, tuple, str]] = [
            (_golden_task, (job,), f"golden:{job.name}:{index}")
            for index, job in enumerate(jobs)]
        chunk_slices: List[Tuple[int, int]] = []
        for index, job in enumerate(jobs):
            start_call = len(calls)
            calls.extend(
                (_timing_chunk_task, (job.with_trace(job.trace.slice(start, stop + 1)),),
                 f"chunk:{job.name}:{index}:{start}")
                for start, stop in spans[index])
            chunk_slices.append((start_call, len(calls)))
        outcomes = self.run_calls(calls)
        golden_results = outcomes[:len(jobs)]
        chunk_results = [outcomes[start:stop] for start, stop in chunk_slices]
        results: List[DesignCharacterization] = []
        for index, job in enumerate(jobs):
            synthesized, diamond, gold, stats, netlist_words = golden_results[index]
            timing_traces = merge_timing_chunks(iter(chunk_results[index]))
            results.append(DesignCharacterization(
                entry=job.entry,
                synthesized=synthesized,
                trace=job.trace,
                diamond_words=diamond,
                gold_words=gold,
                timing_traces=timing_traces,
                structural_stats=stats,
                netlist_words=netlist_words,
            ))
        return results


# --------------------------------------------------------------------- #
# Lookup / convenience entry points
# --------------------------------------------------------------------- #
def get_backend(backend, workers: Optional[int] = None) -> Backend:
    """Resolve a backend name (or pass a :class:`Backend` through).

    ``workers`` only applies to the multiprocess backend; ``None`` means
    one worker per CPU.
    """
    if isinstance(backend, Backend):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "multiprocess":
        return MultiprocessBackend(workers=workers)
    raise ConfigurationError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}")


def run_jobs(jobs: Sequence[CharacterizationJob], backend="serial",
             workers: Optional[int] = None,
             cache_dir: Optional[str] = None,
             plan: bool = True,
             telemetry_dir: Optional[str] = None) -> List[DesignCharacterization]:
    """Run a batch of characterization jobs on the requested backend.

    ``cache_dir`` fronts the backend with the persistent on-disk result
    cache of :mod:`repro.runtime.cache`: hits skip execution entirely,
    misses run on the backend and are persisted for the next call.

    ``telemetry_dir`` (or ``$REPRO_TELEMETRY_DIR``) appends a run
    manifest — phases, spans, worker utilisation, metrics — to the
    given directory (see :mod:`repro.obs.manifest`).  When an outer
    telemetry session is already active (a CLI, or ``run_sweep``), the
    batch is observed by it and no extra manifest is written.

    ``plan`` (default on) routes the batch through the execution planner
    of :mod:`repro.runtime.plan`: jobs sharing a design and clock plan
    are grouped and simulated as one multi-trace batch, bit-identically
    to per-job execution.  The planner slots *under* the cache, so cache
    entries stay per-job and warm batches still execute zero jobs; pass
    ``plan=False`` to schedule every job individually (the reference
    path the planner is benchmarked against).

    This is the one-shot convenience entry point: a backend constructed
    here from a *name* (and its worker pool, if any) is closed before
    returning.  To keep a pool and its per-worker caches warm across
    batches, pass a :class:`Backend` instance you own — it is left
    open — or schedule through ``StudyConfig.runtime_backend()``.
    """
    inner = get_backend(backend, workers=workers)
    owns_inner = inner is not backend  # constructed here, not caller-supplied
    resolved = inner
    # A caller-supplied caching or planned stack is used as given —
    # wrapping it in another planner would route grouped jobs around
    # the caller's cache (or double-plan).
    from repro.runtime.cache import CachingBackend  # deferred: cache builds on backends
    from repro.runtime.plan import PlannedBackend  # deferred: plan builds on backends
    if plan and not isinstance(inner, (PlannedBackend, CachingBackend)):
        resolved = PlannedBackend(resolved)
    if cache_dir is not None:
        resolved = CachingBackend(resolved, cache_dir)
    jobs = list(jobs)
    with telemetry_run(resolve_telemetry_dir(telemetry_dir),
                       command="run_jobs",
                       config={"backend": resolved.describe(),
                               "jobs": len(jobs),
                               "cache_dir": str(cache_dir) if cache_dir else None,
                               "plan": plan}):
        try:
            return resolved.run(jobs)
        finally:
            if owns_inner:
                inner.close()
