"""Pluggable execution backends for characterization jobs.

``serial``
    Executes jobs one after the other in the calling process — the
    reference behaviour, identical to calling
    :func:`~repro.runtime.jobs.execute_job` in a loop.

``multiprocess``
    Fans jobs out across worker processes with
    :class:`concurrent.futures.ProcessPoolExecutor`.  Each job is split
    into one *golden* task (synthesis cross-check, diamond/golden words,
    structural statistics) plus one timing task per word-aligned trace
    chunk (see :func:`repro.circuit.compiled.transition_chunks`), so a
    single large job parallelises as well as a batch of small ones.
    Workers cache the synthesized design, its compiled programs and the
    simulator per :meth:`CharacterizationJob.cache_key`, so lowering
    happens once per process no matter how many chunks it executes.
    Chunks are merged strictly in trace order, and both simulator tiers
    are transition-local, so results are **bit-identical to the serial
    backend at any worker count**.

Backends raise whatever the job execution raises (e.g. the golden-model
cross-check failure) — scheduling does not swallow errors.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.circuit.compiled import WORD_BITS, transition_chunks
from repro.exceptions import ConfigurationError
from repro.obs.manifest import resolve_telemetry_dir, telemetry_run
from repro.obs.metrics import metric_count
from repro.obs.spill import drain_spill_dir, spilled_call, telemetry_active
from repro.runtime.jobs import (
    CharacterizationJob,
    DesignCharacterization,
    build_simulator,
    execute_job,
    golden_reference,
    merge_timing_chunks,
    run_timing,
    synthesize_job,
)
from repro.utils.phases import phase

#: Names accepted by :func:`get_backend` (and ``StudyConfig.backend``).
BACKENDS = ("serial", "multiprocess")


# --------------------------------------------------------------------- #
# Sub-job tasks: the finer scheduling granularity below a whole job
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GoldenTask:
    """Sub-job unit: the golden half of one job, no timing simulation.

    Executing it yields the 5-tuple ``(synthesized, diamond_words,
    gold_words, structural_stats, netlist_words)`` over the job's full
    trace — exactly what :func:`~repro.runtime.jobs.golden_reference`
    returns, prefixed with the synthesized design.
    """

    job: CharacterizationJob


@dataclass(frozen=True)
class TimingChunkTask:
    """Sub-job unit: timing simulation of one (typically sliced) trace.

    The job's trace *is* the chunk — callers slice before building the
    task.  Executing it yields the ``{clock_period: TimingErrorTrace}``
    dict of :func:`~repro.runtime.jobs.run_timing`; no golden words are
    derived, which is the point: a caller that only needs timing shards
    (the result cache's cold sharded path) no longer pays for
    chunk-local golden references it would discard.
    """

    job: CharacterizationJob


#: A schedulable sub-job unit.
Task = Union[GoldenTask, TimingChunkTask]


def execute_tasks(tasks: Sequence[Task],
                  designs: Optional[Dict[tuple, object]] = None,
                  simulators: Optional[Dict[tuple, object]] = None) -> List[object]:
    """Execute sub-job tasks in the calling process, in order.

    ``designs`` / ``simulators`` are per-``cache_key`` reuse maps (the
    same sharing the serial backend applies to whole jobs); passing
    dicts in lets a caller keep them warm across batches.
    """
    designs = designs if designs is not None else {}
    simulators = simulators if simulators is not None else {}
    results: List[object] = []
    for task in tasks:
        job = task.job
        key = job.cache_key()
        synthesized = designs.get(key)
        if synthesized is None:
            synthesized = designs[key] = synthesize_job(job)
        if isinstance(task, GoldenTask):
            results.append((synthesized,) + golden_reference(job, synthesized))
            continue
        # Simulators are clock-specialised, so their reuse key carries
        # the clock plan on top of the design identity.
        simulator_key = (key, job.clock_periods)
        simulator = simulators.get(simulator_key)
        if simulator is None:
            simulator = simulators[simulator_key] = build_simulator(
                job.simulator, synthesized, engine=job.engine,
                clock_periods=job.clock_periods)
        results.append(run_timing(job, simulator))
    return results


class Backend:
    """Interface of an execution backend: run a batch of jobs in order.

    Besides whole jobs, every backend also schedules *sub-job tasks*
    (:class:`GoldenTask` / :class:`TimingChunkTask`) through
    :meth:`run_tasks` — the granularity the result cache's sharded path
    and the execution planner use.  The base implementation executes
    tasks serially in the calling process; concrete backends override it
    with their own scheduling.
    """

    name = "abstract"

    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        """Execute ``jobs`` and return their results in submission order."""
        raise NotImplementedError

    def run_tasks(self, tasks: Sequence[Task]) -> List[object]:
        """Execute sub-job tasks and return their results in order."""
        return execute_tasks(tasks)

    def describe(self) -> str:
        """Short human-readable backend description (recorded in reports)."""
        return self.name

    def close(self) -> None:
        """Release held resources (worker pools); idempotent, no-op by default."""

    def drain_telemetry(self) -> None:
        """Merge any worker-side telemetry spills; no-op for in-process backends."""


class SerialBackend(Backend):
    """Run every job in the calling process, one after the other.

    Like the multiprocess workers, a batch shares one synthesized design
    and one simulator per :meth:`CharacterizationJob.cache_key`, so a
    study submitting several traces of the same design (e.g. the
    prediction study's training + evaluation pair) lowers it only once.
    """

    name = "serial"

    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        metric_count("jobs.simulated", len(jobs))
        simulators: Dict[tuple, object] = {}
        results: List[DesignCharacterization] = []
        for job in jobs:
            # synthesize_job memoises process-wide (and reads through the
            # persistent synthesis cache), so a batch shares one design
            # per synthesis identity without a batch-local dict.
            synthesized = synthesize_job(job)
            simulator_key = (job.cache_key(), job.clock_periods)
            if simulator_key not in simulators:
                simulators[simulator_key] = build_simulator(
                    job.simulator, synthesized, engine=job.engine,
                    clock_periods=job.clock_periods)
            results.append(execute_job(job, synthesized=synthesized,
                                       simulator=simulators[simulator_key]))
        return results


# --------------------------------------------------------------------- #
# Worker-side machinery of the multiprocess backend
# --------------------------------------------------------------------- #
#: Per-process simulator cache by (job cache key, clock plan).  The
#: design-side cache lives in :func:`repro.runtime.jobs.synthesize_job`
#: (the read-through path of the persistent synthesis cache), so
#: lowering happens once per worker process and design, no matter how
#: many trace chunks the worker executes.
_SIMULATOR_CACHE: Dict[tuple, object] = {}


def _cached_design(job: CharacterizationJob):
    return synthesize_job(job)


def _cached_simulator(job: CharacterizationJob):
    # Clock plan in the key: simulators are specialised to the periods
    # the job samples, so two plans over one design need two programs.
    key = (job.cache_key(), job.clock_periods)
    simulator = _SIMULATOR_CACHE.get(key)
    if simulator is None:
        simulator = _SIMULATOR_CACHE[key] = build_simulator(
            job.simulator, _cached_design(job), engine=job.engine,
            clock_periods=job.clock_periods)
    return simulator


def _golden_task(job: CharacterizationJob):
    """Worker task: synthesize (cached) and compute the golden references."""
    synthesized = _cached_design(job)
    diamond, gold, stats, netlist_words = golden_reference(job, synthesized)
    return synthesized, diamond, gold, stats, netlist_words


def _timing_chunk_task(chunk_job: CharacterizationJob):
    """Worker task: simulate one trace chunk (the job's trace is the slice)."""
    return run_timing(chunk_job, _cached_simulator(chunk_job))


def _whole_job_task(job: CharacterizationJob) -> DesignCharacterization:
    """Worker task: one complete job, with the worker's design/simulator cache.

    The trace is stripped from the result before it is pickled back —
    the parent already holds it on the job and restores it on receipt.
    """
    result = execute_job(job, synthesized=_cached_design(job),
                         simulator=_cached_simulator(job))
    result.trace = None
    return result


class MultiprocessBackend(Backend):
    """Fan characterization work out across worker processes.

    Parameters
    ----------
    workers:
        Worker process count (defaults to ``os.cpu_count()``).  Requests
        beyond the machine's CPU count are clamped to it with a warning:
        the workload is compute-bound, so extra processes only add
        scheduling overhead (a 1-CPU bench host measured 0.92x with 4
        workers).
    chunk_transitions:
        Transitions per timing chunk.  ``None`` picks a word-aligned
        size splitting each job into about ``workers`` chunks; explicit
        values are rounded up to the packed word size (64), which keeps
        chunked execution bit-identical to a full-trace run.
    """

    name = "multiprocess"

    def __init__(self, workers: Optional[int] = None,
                 chunk_transitions: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {workers}")
        if chunk_transitions is not None and chunk_transitions < 1:
            raise ConfigurationError(
                f"chunk_transitions must be at least 1, got {chunk_transitions}")
        cpus = os.cpu_count() or 1
        if workers is not None and workers > cpus:
            warnings.warn(
                f"clamping {workers} requested workers to the {cpus} available "
                f"CPU(s); oversubscribing a compute-bound pool only adds overhead",
                RuntimeWarning, stacklevel=2)
            workers = cpus
        self.workers = workers if workers is not None else cpus
        self.chunk_transitions = chunk_transitions
        self._pool: Optional[ProcessPoolExecutor] = None
        # Telemetry spill: per-worker JSONL files the driver merges back
        # (created lazily when a task is submitted under active
        # telemetry, removed by close()).  Offsets track the bytes each
        # drain already consumed, so draining is safe mid-batch.
        self._spill_dir: Optional[str] = None
        self._spill_offsets: Dict[str, int] = {}

    def describe(self) -> str:
        return f"multiprocess[{self.workers}]"

    # ------------------------------------------------------------------ #
    # Pool lifecycle.  The executor persists across run() calls so the
    # per-worker design/simulator caches stay warm between batches; it is
    # created lazily and torn down by close() (or by the executor's own
    # manager thread once the backend is garbage-collected).
    # ------------------------------------------------------------------ #
    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
            self._spill_offsets = {}

    def __enter__(self) -> "MultiprocessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _chunk_size(self, transitions: int) -> int:
        if self.chunk_transitions is not None:
            return self.chunk_transitions
        # About one chunk per worker, word-aligned, at least one word.
        per_worker = -(-transitions // self.workers)
        return max(WORD_BITS, -(-per_worker // WORD_BITS) * WORD_BITS)

    def submit(self, function: Callable, *args):
        """Submit one callable to the worker pool (a raw future).

        The extension point the execution planner uses to schedule its
        batched group tasks on this backend's pool alongside ordinary
        jobs; callers own the future and must handle
        :class:`~concurrent.futures.process.BrokenProcessPool` like
        :meth:`run` does (close the backend, then re-raise).

        When telemetry is active in the submitting context, the task is
        wrapped so the worker records its own spans/metrics and spills
        them for :meth:`drain_telemetry` to merge — callers get worker
        attribution for free.
        """
        if telemetry_active():
            if self._spill_dir is None:
                self._spill_dir = tempfile.mkdtemp(prefix="repro-obs-spill-")
            return self._executor().submit(spilled_call, self._spill_dir,
                                           function, *args)
        return self._executor().submit(function, *args)

    def drain_telemetry(self) -> None:
        """Merge completed workers' spilled spans/metrics into ambient state."""
        if self._spill_dir is not None:
            drain_spill_dir(self._spill_dir, self._spill_offsets)

    def run_tasks(self, tasks: Sequence[Task]) -> List[object]:
        tasks = list(tasks)
        if not tasks:
            return []
        try:
            futures = [self.submit(_golden_task if isinstance(task, GoldenTask)
                                   else _timing_chunk_task, task.job)
                       for task in tasks]
            with phase("schedule.wait"):
                results = [future.result() for future in futures]
        except BrokenProcessPool:
            self.close()
            raise
        self.drain_telemetry()
        return results

    def run(self, jobs: Sequence[CharacterizationJob]) -> List[DesignCharacterization]:
        jobs = list(jobs)
        if not jobs:
            return []

        # Scheduling granularity.  A batch with at least one job per
        # worker parallelises best as whole jobs: every design is
        # synthesized exactly once somewhere in the pool.  A small batch
        # (fewer jobs than workers) is instead split into one golden task
        # plus per-chunk timing tasks, trading a little duplicated
        # lowering for intra-job parallelism.  An explicit
        # ``chunk_transitions`` always forces the split (the determinism
        # tests rely on it).  Either way results are bit-identical.
        split = self.chunk_transitions is not None or len(jobs) < self.workers
        metric_count("jobs.simulated", len(jobs))
        try:
            if not split:
                futures = [self.submit(_whole_job_task, job) for job in jobs]
                with phase("schedule.wait"):
                    results = [future.result() for future in futures]
                for job, result in zip(jobs, results):
                    result.trace = job.trace
            else:
                results = self._run_split(jobs)
        except BrokenProcessPool:
            # A broken pool (worker killed mid-task) is not recoverable;
            # drop it so the next run starts fresh.  Ordinary job errors
            # propagate with the warm pool intact.
            self.close()
            raise
        self.drain_telemetry()
        return results

    def _run_split(self, jobs: List[CharacterizationJob]) -> List[DesignCharacterization]:
        # Plan: per job, one golden task plus one timing task per chunk.
        # A chunk over transitions [start, stop) needs input vectors
        # [start, stop] — one vector of overlap with its predecessor.
        spans: List[List[Tuple[int, int]]] = [
            transition_chunks(job.trace.transitions, self._chunk_size(job.trace.transitions))
            for job in jobs
        ]
        golden_futures = [self.submit(_golden_task, job) for job in jobs]
        chunk_futures = [
            [self.submit(_timing_chunk_task,
                         job.with_trace(job.trace.slice(start, stop + 1)))
             for start, stop in spans[index]]
            for index, job in enumerate(jobs)
        ]
        # Gather every raw worker result under one wait phase, then merge
        # chunks driver-side — the merge is local compute, not waiting.
        with phase("schedule.wait"):
            golden_results = [future.result() for future in golden_futures]
            chunk_results = [[future.result() for future in futures]
                             for futures in chunk_futures]
        results: List[DesignCharacterization] = []
        for index, job in enumerate(jobs):
            synthesized, diamond, gold, stats, netlist_words = golden_results[index]
            timing_traces = merge_timing_chunks(iter(chunk_results[index]))
            results.append(DesignCharacterization(
                entry=job.entry,
                synthesized=synthesized,
                trace=job.trace,
                diamond_words=diamond,
                gold_words=gold,
                timing_traces=timing_traces,
                structural_stats=stats,
                netlist_words=netlist_words,
            ))
        return results


# --------------------------------------------------------------------- #
# Lookup / convenience entry points
# --------------------------------------------------------------------- #
def get_backend(backend, workers: Optional[int] = None) -> Backend:
    """Resolve a backend name (or pass a :class:`Backend` through).

    ``workers`` only applies to the multiprocess backend; ``None`` means
    one worker per CPU.
    """
    if isinstance(backend, Backend):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "multiprocess":
        return MultiprocessBackend(workers=workers)
    raise ConfigurationError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}")


def run_jobs(jobs: Sequence[CharacterizationJob], backend="serial",
             workers: Optional[int] = None,
             cache_dir: Optional[str] = None,
             plan: bool = True,
             telemetry_dir: Optional[str] = None) -> List[DesignCharacterization]:
    """Run a batch of characterization jobs on the requested backend.

    ``cache_dir`` fronts the backend with the persistent on-disk result
    cache of :mod:`repro.runtime.cache`: hits skip execution entirely,
    misses run on the backend and are persisted for the next call.

    ``telemetry_dir`` (or ``$REPRO_TELEMETRY_DIR``) appends a run
    manifest — phases, spans, worker utilisation, metrics — to the
    given directory (see :mod:`repro.obs.manifest`).  When an outer
    telemetry session is already active (a CLI, or ``run_sweep``), the
    batch is observed by it and no extra manifest is written.

    ``plan`` (default on) routes the batch through the execution planner
    of :mod:`repro.runtime.plan`: jobs sharing a design and clock plan
    are grouped and simulated as one multi-trace batch, bit-identically
    to per-job execution.  The planner slots *under* the cache, so cache
    entries stay per-job and warm batches still execute zero jobs; pass
    ``plan=False`` to schedule every job individually (the reference
    path the planner is benchmarked against).

    This is the one-shot convenience entry point: a backend constructed
    here from a *name* (and its worker pool, if any) is closed before
    returning.  To keep a pool and its per-worker caches warm across
    batches, pass a :class:`Backend` instance you own — it is left
    open — or schedule through ``StudyConfig.runtime_backend()``.
    """
    inner = get_backend(backend, workers=workers)
    owns_inner = inner is not backend  # constructed here, not caller-supplied
    resolved = inner
    # A caller-supplied caching or planned stack is used as given —
    # wrapping it in another planner would route grouped jobs around
    # the caller's cache (or double-plan).
    from repro.runtime.cache import CachingBackend  # deferred: cache builds on backends
    from repro.runtime.plan import PlannedBackend  # deferred: plan builds on backends
    if plan and not isinstance(inner, (PlannedBackend, CachingBackend)):
        resolved = PlannedBackend(resolved)
    if cache_dir is not None:
        resolved = CachingBackend(resolved, cache_dir)
    jobs = list(jobs)
    with telemetry_run(resolve_telemetry_dir(telemetry_dir),
                       command="run_jobs",
                       config={"backend": resolved.describe(),
                               "jobs": len(jobs),
                               "cache_dir": str(cache_dir) if cache_dir else None,
                               "plan": plan}):
        try:
            return resolved.run(jobs)
        finally:
            if owns_inner:
                inner.close()
