"""Deterministic fault injection for resilience tests and chaos CI.

A *fault plan* is a small JSON document naming faults to inject at
instrumented points of the runtime — worker task entry
(:data:`POINT_TASK`) and result-store writes (:data:`POINT_STORE_WRITE`
/ :data:`POINT_STORE_WRITE_DONE`).  The plan is activated through the
``REPRO_FAULT_PLAN`` environment variable (either the JSON itself or a
path to a file holding it), so multiprocess workers — which inherit the
environment — arm the same plan without any explicit plumbing, exactly
like the synthesis cache (:func:`repro.runtime.synth_cache.active_synth_cache`).

Plan format::

    {"faults": [
        {"kind": "kill-worker", "every": 40},
        {"kind": "task-error", "at": 2},
        {"kind": "delay", "at": 1, "seconds": 0.5, "times": 1},
        {"kind": "store-error", "point": "store.write", "every": 5,
         "match": "chaos-cache"},
        {"kind": "truncate", "point": "store.write.done", "at": 3}
     ],
     "state_dir": "/tmp/faults"}

Each fault spec counts the events of its point **per process** and
fires on the ``at``-th event (once) or on every ``every``-th event;
``match`` restricts the count to events whose key (job name, store
path) contains the substring.  ``times`` caps the *global* firings
across all processes through atomically-claimed token files in
``state_dir`` (default: a temp directory derived from the plan text, so
every process of one run shares it).  Everything else is a pure
function of the plan and the per-process event sequence, which is what
makes injected failures reproducible: the same plan against the same
deterministic task stream kills the same worker on the same task.

Fault kinds
-----------
``kill-worker``
    ``os._exit(1)`` — but only inside a worker process
    (:func:`multiprocessing.parent_process` is set); the driver is
    immune, so a plan armed for a whole test suite can never kill the
    test runner itself.
``task-error``
    Raise a transient :class:`OSError` from the task body (retryable).
``delay``
    Sleep ``seconds`` inside the task (exercises per-task timeouts).
``store-error``
    Raise :class:`OSError` from inside a result-store write (absorbed
    as a warn-and-continue miss by :meth:`ResultStore.store`).
``truncate``
    Truncate the just-written cache entry file to half its size (the
    next load sees corruption and recomputes — the corruption-as-miss
    path).

Malformed plans raise :class:`~repro.exceptions.ConfigurationError`
naming the variable and the offending value, consistent with every
other ``REPRO_*`` knob.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.obs.metrics import metric_count

#: Environment variable holding the fault plan (JSON text, or a path to
#: a JSON file); unset or empty disables injection entirely.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Instrumented points a fault spec may attach to.
POINT_TASK = "task"
POINT_STORE_WRITE = "store.write"
POINT_STORE_WRITE_DONE = "store.write.done"
POINTS = (POINT_TASK, POINT_STORE_WRITE, POINT_STORE_WRITE_DONE)

#: Fault kind -> the point it defaults to when the spec names none.
KINDS = {
    "kill-worker": POINT_TASK,
    "task-error": POINT_TASK,
    "delay": POINT_TASK,
    "store-error": POINT_STORE_WRITE,
    "truncate": POINT_STORE_WRITE_DONE,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: what, where, and on which events."""

    kind: str
    point: str
    at: Optional[int] = None
    every: Optional[int] = None
    times: Optional[int] = None
    seconds: float = 0.0
    match: Optional[str] = None

    def due(self, counter: int) -> bool:
        """Whether the ``counter``-th matching event (1-based) fires."""
        if self.at is not None and counter == self.at:
            return True
        return self.every is not None and counter % self.every == 0


def _parse_spec(index: int, raw, value: str) -> FaultSpec:
    def bad(detail: str) -> ConfigurationError:
        return ConfigurationError(
            f"{FAULT_PLAN_ENV} fault #{index + 1} {detail}, got {value!r}")

    if not isinstance(raw, dict):
        raise bad("must be an object")
    kind = raw.get("kind")
    if kind not in KINDS:
        raise bad(f"names unknown kind {kind!r} (expected one of {sorted(KINDS)})")
    point = raw.get("point", KINDS[kind])
    if point not in POINTS:
        raise bad(f"names unknown point {point!r} (expected one of {POINTS})")
    counters = {}
    for field in ("at", "every", "times"):
        entry = raw.get(field)
        if entry is not None and (not isinstance(entry, int) or entry < 1):
            raise bad(f"field {field!r} must be a positive integer")
        counters[field] = entry
    if counters["at"] is None and counters["every"] is None:
        raise bad("needs an 'at' or 'every' trigger")
    seconds = raw.get("seconds", 0.0)
    if not isinstance(seconds, (int, float)) or seconds < 0:
        raise bad("field 'seconds' must be a non-negative number")
    match = raw.get("match")
    if match is not None and not isinstance(match, str):
        raise bad("field 'match' must be a string")
    unknown = set(raw) - {"kind", "point", "at", "every", "times", "seconds", "match"}
    if unknown:
        raise bad(f"has unknown fields {sorted(unknown)}")
    return FaultSpec(kind=kind, point=point, at=counters["at"],
                     every=counters["every"], times=counters["times"],
                     seconds=float(seconds), match=match)


class FaultPlan:
    """An armed fault plan: per-process event counters plus injection.

    Event counters are process-local state; the global ``times`` budget
    of a spec is shared across processes through token files claimed
    with ``O_CREAT | O_EXCL`` in :attr:`state_dir`.
    """

    def __init__(self, specs: List[FaultSpec], state_dir: str) -> None:
        self.specs = specs
        self.state_dir = state_dir
        self._counters: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def _claim(self, index: int) -> bool:
        """Claim one firing of spec ``index`` against its global budget."""
        spec = self.specs[index]
        if spec.times is None:
            return True
        os.makedirs(self.state_dir, exist_ok=True)
        for slot in range(spec.times):
            token = os.path.join(self.state_dir, f"fault{index}-slot{slot}")
            try:
                os.close(os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
            except OSError:
                return False
        return False

    def _inject(self, spec: FaultSpec, key: str, counter: int) -> None:
        metric_count("faults.injected")
        if spec.kind == "kill-worker":
            # Only worker processes die; the driver (tests, CLIs) shrugs
            # the fault off so a suite-wide plan cannot kill the runner.
            if multiprocessing.parent_process() is not None:
                os._exit(1)
            return
        if spec.kind == "delay":
            time.sleep(spec.seconds)
            return
        if spec.kind == "truncate":
            try:
                size = os.path.getsize(key)
                with open(key, "r+b") as handle:
                    handle.truncate(size // 2)
            except OSError:
                pass
            return
        # task-error / store-error: a transient, retryable OSError.
        raise OSError(f"injected {spec.kind} fault "
                      f"(event #{counter} at {spec.point}: {key})")

    def fire(self, point: str, key: str = "") -> None:
        """Count one event at ``point`` and inject whatever falls due."""
        for index, spec in enumerate(self.specs):
            if spec.point != point:
                continue
            if spec.match is not None and spec.match not in key:
                continue
            counter = self._counters.get(index, 0) + 1
            self._counters[index] = counter
            if spec.due(counter) and self._claim(index):
                self._inject(spec, key, counter)


# --------------------------------------------------------------------- #
# Environment-driven activation
# --------------------------------------------------------------------- #
_ACTIVE: Optional[FaultPlan] = None
_ACTIVE_KEY: Optional[str] = None


def parse_fault_plan(value: str) -> Tuple[List[FaultSpec], Optional[str]]:
    """Parse a fault-plan document (JSON text or a path to one).

    Returns ``(specs, state_dir)``; malformed documents raise
    :class:`ConfigurationError` naming ``REPRO_FAULT_PLAN`` and the
    value.
    """
    text = value
    if not value.lstrip().startswith(("{", "[")):
        try:
            with open(value, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ConfigurationError(
                f"{FAULT_PLAN_ENV} names an unreadable plan file "
                f"({error}), got {value!r}") from None
    try:
        document = json.loads(text)
    except ValueError as error:
        raise ConfigurationError(
            f"{FAULT_PLAN_ENV} must be JSON (or a path to a JSON file): "
            f"{error}, got {value!r}") from None
    if isinstance(document, list):
        document = {"faults": document}
    if not isinstance(document, dict) or not isinstance(document.get("faults"), list):
        raise ConfigurationError(
            f"{FAULT_PLAN_ENV} must be an object with a 'faults' list "
            f"(or a bare list), got {value!r}")
    state_dir = document.get("state_dir")
    if state_dir is not None and not isinstance(state_dir, str):
        raise ConfigurationError(
            f"{FAULT_PLAN_ENV} field 'state_dir' must be a path string, "
            f"got {value!r}")
    specs = [_parse_spec(index, raw, value)
             for index, raw in enumerate(document["faults"])]
    return specs, state_dir


def _default_state_dir(value: str) -> str:
    # Derived from the plan text, so every process of one run (workers
    # inherit the same environment value) shares one budget directory.
    digest = hashlib.sha256(value.encode("utf-8")).hexdigest()[:12]
    return os.path.join(tempfile.gettempdir(), f"repro-faults-{digest}")


def active_fault_plan() -> Optional[FaultPlan]:
    """The process-wide plan named by ``REPRO_FAULT_PLAN``, or ``None``.

    Rebuilt whenever the environment value changes (fresh per-process
    event counters), so tests monkeypatching the variable and worker
    processes inheriting it both see the right plan.
    """
    global _ACTIVE, _ACTIVE_KEY
    value = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not value:
        _ACTIVE, _ACTIVE_KEY = None, None
        return None
    if _ACTIVE is None or _ACTIVE_KEY != value:
        specs, state_dir = parse_fault_plan(value)
        _ACTIVE = FaultPlan(specs, state_dir or _default_state_dir(value))
        _ACTIVE_KEY = value
    return _ACTIVE


def reset_fault_plan() -> None:
    """Drop the process-wide plan instance (tests; the env decides the next)."""
    global _ACTIVE, _ACTIVE_KEY
    _ACTIVE, _ACTIVE_KEY = None, None


def fault_point(point: str, key: str = "") -> None:
    """Fire the active plan at an instrumented point (no-op without one)."""
    plan = active_fault_plan()
    if plan is not None:
        plan.fire(point, key)
