"""Run manifests: one JSONL record per run, appended to a telemetry dir.

A :class:`telemetry_run` session activates a
:class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry` for the duration of a run
(a CLI invocation, a ``run_jobs`` batch, a ``run_sweep``) and, on exit,
snapshots everything into one *run manifest* — schema version, run id,
command, caller-supplied config, host facts, ``repro.__version__``,
elapsed wall seconds, per-phase totals (driver *and* merged worker
time), the hierarchical span aggregates, per-worker utilisation and the
metric snapshot — appended as a single JSON line to
``<telemetry_dir>/manifests.jsonl``.

Sessions *suppress nesting*: ``run_sweep`` delegates to ``run_jobs``,
and a CLI wraps both — only the outermost session writes a manifest
(inner calls see the ambient session and become pass-throughs), so one
run is one record no matter how many layers it crossed.

Activation is driven by an explicit directory argument or the
``REPRO_TELEMETRY_DIR`` environment variable
(:func:`resolve_telemetry_dir`), mirroring the synthesis cache's
env-activation pattern.  ``inline=True`` builds the manifest without a
directory (``repro-explore --json`` embeds it in its payload).

Manifests are additive observation only: they never influence job
digests, cache keys or results — the regression tests pin that enabling
telemetry changes zero result bytes.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Iterator, List, Optional

from repro._version import __version__
from repro.obs.metrics import MetricsRegistry, metrics_run
from repro.obs.trace import Tracer, trace_run

#: Environment variable naming the telemetry directory; unset or empty
#: means no manifests are written.
TELEMETRY_ENV = "REPRO_TELEMETRY_DIR"

#: File every run manifest is appended to inside the telemetry dir.
MANIFEST_FILE = "manifests.jsonl"

#: Bumped whenever the manifest record layout changes incompatibly.
MANIFEST_SCHEMA = 1

#: Whether a telemetry session is already active in this context (inner
#: sessions become pass-throughs so one run writes one manifest).
_SESSION_ACTIVE: ContextVar[bool] = ContextVar("repro_obs_session",
                                               default=False)

#: Process-wide run-id sequence (uniquifies manifests within a second).
_RUN_SEQUENCE = 0


def resolve_telemetry_dir(value=None) -> Optional[str]:
    """The telemetry directory: explicit ``value``, else the environment."""
    if value:
        return str(value)
    env = os.environ.get(TELEMETRY_ENV, "").strip()
    return env or None


def host_facts() -> dict:
    """Where a run happened: platform, python, cpu count."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "hostname": platform.node(),
    }


def append_manifest(directory, manifest: dict) -> Path:
    """Append one manifest as a JSON line (single ``O_APPEND`` write)."""
    root = Path(directory).expanduser()
    root.mkdir(parents=True, exist_ok=True)
    path = root / MANIFEST_FILE
    line = json.dumps(manifest, sort_keys=True, separators=(",", ":")) + "\n"
    descriptor = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(descriptor, line.encode("utf-8"))
    finally:
        os.close(descriptor)
    return path


def load_manifests(directory) -> List[dict]:
    """Every parseable manifest of a telemetry directory, in append order."""
    path = Path(directory).expanduser() / MANIFEST_FILE
    manifests: List[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    manifests.append(json.loads(line))
                except ValueError:
                    continue
    except OSError:
        return []
    return manifests


class TelemetryHandle:
    """What a :func:`telemetry_run` block exposes to its body.

    ``enabled`` is False for pass-through sessions (no directory and not
    inline, or an outer session already active); the tracer/registry are
    then ``None`` and :meth:`annotate` is a no-op.  After the block
    exits, ``manifest`` holds the built record (or ``None``).
    """

    def __init__(self, directory: Optional[str], command: str,
                 config: Optional[dict], enabled: bool) -> None:
        self.directory = directory
        self.command = command
        self.config = dict(config) if config else {}
        self.enabled = enabled
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.manifest: Optional[dict] = None
        self.manifest_path: Optional[Path] = None
        self.extra: dict = {}

    def annotate(self, **fields) -> None:
        """Attach extra top-level fields to the manifest (e.g. results)."""
        if self.enabled:
            self.extra.update(fields)

    # ------------------------------------------------------------------ #
    def build_manifest(self, elapsed_s: float, started_at: float) -> dict:
        global _RUN_SEQUENCE
        _RUN_SEQUENCE += 1
        assert self.tracer is not None and self.metrics is not None
        snapshot = self.tracer.snapshot()
        attributed = self.tracer.attributed_wall_s()
        # Attribution counts real compute (top-level phases, driver and
        # merged workers); "accounted" adds the driver's blocked-on-
        # workers time back, so it approaches the elapsed wall whenever
        # the instrumentation has no blind spots.
        wait = snapshot["phases"].get("schedule.wait", {}).get("wall_s", 0.0)
        accounted = attributed + wait
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "run_id": f"{int(started_at * 1e6):d}-{os.getpid()}-{_RUN_SEQUENCE}",
            "command": self.command,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z",
                                       time.localtime(started_at)),
            "library_version": __version__,
            "host": host_facts(),
            "config": self.config,
            "elapsed_s": elapsed_s,
            "phases": snapshot["phases"],
            "spans": snapshot["spans"],
            "workers": snapshot["workers"],
            "metrics": self.metrics.snapshot(),
            "attributed_s": attributed,
            "attributed_fraction": (attributed / elapsed_s
                                    if elapsed_s > 0 else 0.0),
            "accounted_s": accounted,
            "accounted_fraction": (accounted / elapsed_s
                                   if elapsed_s > 0 else 0.0),
        }
        manifest.update(self.extra)
        return manifest


@contextmanager
def telemetry_run(directory=None, command: str = "run",
                  config: Optional[dict] = None,
                  inline: bool = False) -> Iterator[TelemetryHandle]:
    """One observed run: ambient tracer + metrics, manifest on exit.

    ``directory`` (or, if falsy, ``$REPRO_TELEMETRY_DIR``) receives the
    manifest; ``inline=True`` builds the manifest even without a
    directory.  When neither applies — or a session is already active
    in this context — the handle is a disabled pass-through and the
    block runs unobserved (beyond any outer session's instruments).
    """
    directory = resolve_telemetry_dir(directory)
    enabled = (directory is not None or inline) and not _SESSION_ACTIVE.get()
    handle = TelemetryHandle(directory, command, config, enabled)
    if not handle.enabled:
        yield handle
        return
    session_token = _SESSION_ACTIVE.set(True)
    started_at = time.time()
    started = time.perf_counter()
    try:
        with trace_run() as tracer, metrics_run() as registry:
            handle.tracer = tracer
            handle.metrics = registry
            yield handle
    finally:
        elapsed = time.perf_counter() - started
        _SESSION_ACTIVE.reset(session_token)
        try:
            handle.manifest = handle.build_manifest(elapsed, started_at)
            if handle.directory is not None:
                handle.manifest_path = append_manifest(handle.directory,
                                                       handle.manifest)
        except OSError:
            # Telemetry is advisory: an unwritable directory must never
            # fail the run it observes.
            handle.manifest_path = None
