"""``repro-stats``: summarise telemetry directories and cache inventories.

Reads the run manifests a telemetry directory accumulated
(``manifests.jsonl``, one JSON line per observed run — see
:mod:`repro.obs.manifest`) and renders the questions an operator
actually asks: where does the time go (slowest phases across runs), is
the result cache earning its keep (hit-rate trend run over run), and
are the multiprocess workers busy or starved (per-worker utilisation)?

``--cache-dir`` additionally inspects a result/synthesis cache
directory through :meth:`repro.runtime.store.ResultStore.entry_inventory`
— entry count, total bytes, age span and the largest entries — without
loading a single payload.

Examples::

    repro-stats .telemetry
    repro-stats .telemetry --top 5 --json
    repro-stats --cache-dir ~/.cache/repro-explore
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.analysis.report import format_table
from repro.obs.manifest import MANIFEST_FILE, load_manifests


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro-stats`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Summarise repro telemetry directories (run manifests) "
                    "and inspect cache-directory inventories")
    parser.add_argument("telemetry_dir", nargs="?", default=None,
                        help=f"telemetry directory holding {MANIFEST_FILE} "
                             "(as written by --telemetry-dir / "
                             "$REPRO_TELEMETRY_DIR)")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="inspect a result/synthesis cache directory: "
                             "entries, bytes, age and the largest entries")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows per table (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of tables")
    return parser


# --------------------------------------------------------------------- #
# Telemetry-directory summaries
# --------------------------------------------------------------------- #
def phase_summary(manifests: List[dict]) -> List[dict]:
    """Per-phase totals across runs, slowest first."""
    totals: dict = {}
    for manifest in manifests:
        for name, record in manifest.get("phases", {}).items():
            entry = totals.setdefault(
                name, {"phase": name, "wall_s": 0.0, "cpu_s": 0.0,
                       "calls": 0, "runs": 0})
            entry["wall_s"] += record.get("wall_s", 0.0)
            entry["cpu_s"] += record.get("cpu_s", 0.0)
            entry["calls"] += record.get("calls", 0)
            entry["runs"] += 1
    return sorted(totals.values(), key=lambda entry: -entry["wall_s"])


def cache_trend(manifests: List[dict]) -> List[dict]:
    """Per-run result-cache hits/misses and hit rate, in append order."""
    rows: List[dict] = []
    for manifest in manifests:
        counters = manifest.get("metrics", {}).get("counters", {})
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        if not hits and not misses:
            continue
        rows.append({
            "run_id": manifest.get("run_id", "?"),
            "timestamp": manifest.get("timestamp", "?"),
            "command": manifest.get("command", "?"),
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        })
    return rows


def worker_summary(manifests: List[dict]) -> List[dict]:
    """Per-run worker utilisation: busy seconds vs. elapsed x workers."""
    rows: List[dict] = []
    for manifest in manifests:
        workers = manifest.get("workers", {})
        if not workers:
            continue
        elapsed = manifest.get("elapsed_s", 0.0)
        busy = sum(worker.get("busy_s", 0.0) for worker in workers.values())
        tasks = sum(worker.get("tasks", 0) for worker in workers.values())
        capacity = elapsed * len(workers)
        rows.append({
            "run_id": manifest.get("run_id", "?"),
            "command": manifest.get("command", "?"),
            "workers": len(workers),
            "tasks": tasks,
            "busy_s": busy,
            "elapsed_s": elapsed,
            "utilisation": busy / capacity if capacity > 0 else 0.0,
        })
    return rows


def summarize_telemetry(directory, top: int = 10) -> dict:
    """The full JSON-ready summary of one telemetry directory."""
    manifests = load_manifests(directory)
    commands: dict = {}
    for manifest in manifests:
        command = manifest.get("command", "?")
        commands[command] = commands.get(command, 0) + 1
    return {
        "telemetry_dir": str(directory),
        "runs": len(manifests),
        "commands": commands,
        "total_elapsed_s": sum(m.get("elapsed_s", 0.0) for m in manifests),
        "phases": phase_summary(manifests)[:top] if top > 0 else phase_summary(manifests),
        "cache_trend": cache_trend(manifests),
        "workers": worker_summary(manifests),
    }


def render_telemetry(summary: dict, top: int) -> str:
    sections: List[str] = []
    commands = ", ".join(f"{name} x{count}"
                         for name, count in sorted(summary["commands"].items()))
    sections.append(
        f"telemetry {summary['telemetry_dir']} — {summary['runs']} run(s)"
        + (f" ({commands})" if commands else "")
        + f", {summary['total_elapsed_s']:.1f} s observed")
    if summary["phases"]:
        rows = [(entry["phase"], f"{entry['wall_s']:.2f}",
                 f"{entry['cpu_s']:.2f}", entry["calls"], entry["runs"])
                for entry in summary["phases"]]
        sections.append(format_table(
            ["phase", "wall (s)", "cpu (s)", "calls", "runs"], rows,
            title="Slowest phases across runs"))
    if summary["cache_trend"]:
        rows = [(entry["timestamp"], entry["command"], entry["hits"],
                 entry["misses"], f"{entry['hit_rate'] * 100:.1f}%")
                for entry in summary["cache_trend"][-top:]]
        sections.append(format_table(
            ["run", "command", "hits", "misses", "hit rate"], rows,
            title="Result-cache hit-rate trend (latest runs)"))
    if summary["workers"]:
        rows = [(entry["command"], entry["workers"], entry["tasks"],
                 f"{entry['busy_s']:.2f}", f"{entry['elapsed_s']:.2f}",
                 f"{entry['utilisation'] * 100:.0f}%")
                for entry in summary["workers"][-top:]]
        sections.append(format_table(
            ["command", "workers", "tasks", "busy (s)", "elapsed (s)",
             "utilisation"], rows,
            title="Worker utilisation (latest multiprocess runs)"))
    if summary["runs"] and not summary["workers"]:
        sections.append("(no multiprocess worker records — every run was serial)")
    return "\n\n".join(sections)


# --------------------------------------------------------------------- #
# Cache-directory inventory
# --------------------------------------------------------------------- #
def summarize_cache(cache_dir, top: int = 10) -> dict:
    """Inventory of one cache directory via the store's existing index."""
    from repro.runtime.store import ResultStore  # deferred: keeps obs leaf-light
    store = ResultStore(cache_dir)
    inventory = store.entry_inventory()
    now = time.time()
    total_bytes = sum(size for _, size, _ in inventory)
    newest = max((mtime for mtime, _, _ in inventory), default=None)
    oldest = min((mtime for mtime, _, _ in inventory), default=None)
    largest = sorted(inventory, key=lambda record: -record[1])
    if top > 0:
        largest = largest[:top]
    return {
        "cache_dir": str(cache_dir),
        "entries": len(inventory),
        "total_bytes": total_bytes,
        "newest_age_s": (now - newest) if newest is not None else None,
        "oldest_age_s": (now - oldest) if oldest is not None else None,
        "largest": [{"entry": path.name, "bytes": size,
                     "age_s": now - mtime}
                    for mtime, size, path in largest],
    }


def render_cache(summary: dict) -> str:
    header = (f"cache {summary['cache_dir']} — {summary['entries']} entries, "
              f"{summary['total_bytes'] / (1024 * 1024):.1f} MiB")
    if summary["newest_age_s"] is not None:
        header += (f", newest {summary['newest_age_s']:.0f} s old, "
                   f"oldest {summary['oldest_age_s']:.0f} s old")
    sections = [header]
    if summary["largest"]:
        rows = [(entry["entry"][:16] + "…", f"{entry['bytes'] / 1024:.1f}",
                 f"{entry['age_s']:.0f}")
                for entry in summary["largest"]]
        sections.append(format_table(
            ["entry (digest)", "KiB", "age (s)"], rows,
            title="Largest cache entries"))
    return "\n\n".join(sections)


# --------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.telemetry_dir is None and arguments.cache_dir is None:
        parser.error("nothing to summarise: pass a telemetry directory "
                     "and/or --cache-dir")
    payload: dict = {}
    sections: List[str] = []
    if arguments.telemetry_dir is not None:
        summary = summarize_telemetry(arguments.telemetry_dir, top=arguments.top)
        payload["telemetry"] = summary
        sections.append(render_telemetry(summary, top=arguments.top))
    if arguments.cache_dir is not None:
        summary = summarize_cache(arguments.cache_dir, top=arguments.top)
        payload["cache"] = summary
        sections.append(render_cache(summary))
    try:
        if arguments.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print("\n\n".join(sections))
    except BrokenPipeError:  # e.g. `repro-stats dir | head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
