"""Hierarchical span tracing with ambient (context-local) activation.

A *span* attributes one timed region — wall seconds plus thread CPU
seconds — to a name, nested under whatever spans are open in the same
context: entering ``span("synthesize")`` inside ``span("plan.group")``
records under the path ``plan.group/synthesize``.  The
:func:`repro.utils.phases.phase` contextmanager is an alias of
:func:`span`, so every phase the pipeline already records becomes a
span for free.

Activation is ambient and context-local: :func:`trace_run` installs a
:class:`Tracer` in a :mod:`contextvars` context variable, and
:func:`span` reads it.  Because the variable is context-local, two
threads (or two nested ``collect_phases`` blocks) can trace
concurrently without interleaving each other's stacks — the property
the future characterization service needs.  More than one tracer may be
active at once (they stack); every open tracer observes every span, so
a CLI-level telemetry session and an inner ``--timings`` collector each
see the full picture.

When no tracer is active, :func:`span` costs one context-variable read
and yields immediately — instrumented hot paths pay nothing by default.

Tracers *aggregate* rather than retain: spans are folded into per-path
``(wall, cpu, calls, attrs)`` records as they close, so a sweep
emitting hundreds of thousands of spans holds memory proportional to
the number of distinct paths, not the number of spans.  Numeric span
attributes are summed across calls (e.g. ``transitions``), everything
else keeps its last value.
"""

from __future__ import annotations

import numbers
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional, Tuple

#: Every tracer currently observing spans in this context (innermost last).
_TRACERS: ContextVar[Tuple["Tracer", ...]] = ContextVar("repro_obs_tracers",
                                                        default=())

#: Names of the spans currently open in this context (outermost first).
_STACK: ContextVar[Tuple[str, ...]] = ContextVar("repro_obs_stack", default=())


def active_tracers() -> Tuple["Tracer", ...]:
    """The tracers observing spans in the current context (may be empty)."""
    return _TRACERS.get()


def _clean_attr(value):
    """JSON-safe form of one span attribute (numpy scalars included)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    return str(value)


class SpanStats:
    """Aggregated observations of one span path."""

    __slots__ = ("name", "wall_s", "cpu_s", "calls", "attrs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.calls = 0
        self.attrs: Dict[str, object] = {}

    def fold(self, wall_s: float, cpu_s: float, calls: int, attrs) -> None:
        """Accumulate one observation (or a pre-aggregated batch of them)."""
        self.wall_s += wall_s
        self.cpu_s += cpu_s
        self.calls += calls
        for key, value in attrs.items():
            value = _clean_attr(value)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                previous = self.attrs.get(key, 0)
                if isinstance(previous, (int, float)) and not isinstance(previous, bool):
                    self.attrs[key] = previous + value
                    continue
            self.attrs[key] = value

    def as_dict(self) -> dict:
        record = {"name": self.name, "wall_s": self.wall_s,
                  "cpu_s": self.cpu_s, "calls": self.calls}
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class Tracer:
    """Collects spans into per-path aggregates (plus per-worker stats).

    ``sink`` is an optional object with ``add(name, seconds)`` and
    ``merge(name, seconds, calls)`` methods — in practice a
    :class:`repro.utils.phases.PhaseTimes` — that receives every span by
    *leaf name*, which is how the legacy ``--timings`` breakdown keeps
    working on top of the tracer.

    ``workers`` accumulates the spill records of multiprocess workers
    (see :mod:`repro.obs.spill`): per worker pid, the busy seconds, task
    count and span aggregates recorded inside that worker.
    """

    def __init__(self, sink=None) -> None:
        self.sink = sink
        self.spans: Dict[str, SpanStats] = {}
        self.workers: Dict[str, dict] = {}

    # ------------------------------------------------------------------ #
    def record(self, name: str, path: str, wall_s: float, cpu_s: float,
               attrs) -> None:
        """Fold one finished span into the aggregates (and the sink)."""
        stats = self.spans.get(path)
        if stats is None:
            stats = self.spans[path] = SpanStats(name)
        stats.fold(wall_s, cpu_s, 1, attrs)
        if self.sink is not None:
            self.sink.add(name, wall_s)

    def merge_span(self, path: str, name: str, wall_s: float, cpu_s: float,
                   calls: int, attrs) -> None:
        """Fold a pre-aggregated span record (spill merge path)."""
        stats = self.spans.get(path)
        if stats is None:
            stats = self.spans[path] = SpanStats(name)
        stats.fold(wall_s, cpu_s, calls, attrs)
        if self.sink is not None:
            self.sink.merge(name, wall_s, calls)

    def merge_spill(self, record: dict) -> None:
        """Fold one worker spill record: global aggregates + per-worker stats."""
        pid = str(record.get("pid", "?"))
        worker = self.workers.get(pid)
        if worker is None:
            worker = self.workers[pid] = {"busy_s": 0.0, "tasks": 0, "spans": {}}
        worker["busy_s"] += float(record.get("busy_s", 0.0))
        worker["tasks"] += int(record.get("tasks", 1))
        for path, span in record.get("spans", {}).items():
            name = span.get("name", path.rsplit("/", 1)[-1])
            wall = float(span.get("wall_s", 0.0))
            cpu = float(span.get("cpu_s", 0.0))
            calls = int(span.get("calls", 1))
            attrs = span.get("attrs", {})
            self.merge_span(path, name, wall, cpu, calls, attrs)
            mine = worker["spans"].get(path)
            if mine is None:
                mine = worker["spans"][path] = SpanStats(name)
            mine.fold(wall, cpu, calls, attrs)

    # ------------------------------------------------------------------ #
    def phase_totals(self) -> Dict[str, dict]:
        """Per-leaf-name totals (the classic phase breakdown), path-merged."""
        totals: Dict[str, dict] = {}
        for stats in self.spans.values():
            record = totals.setdefault(
                stats.name, {"wall_s": 0.0, "cpu_s": 0.0, "calls": 0})
            record["wall_s"] += stats.wall_s
            record["cpu_s"] += stats.cpu_s
            record["calls"] += stats.calls
        return totals

    def attributed_wall_s(self) -> float:
        """Wall seconds attributed to top-level phases, driver + workers.

        Dotted leaf names (``synth.*`` sub-phases, ``schedule.wait``,
        ``plan.group``) are excluded, exactly like
        :meth:`repro.utils.phases.PhaseTimes.total` — their time is
        either nested inside a parent phase or is bookkeeping wait.
        """
        return sum(record["wall_s"] for name, record in
                   self.phase_totals().items() if "." not in name)

    def snapshot(self) -> dict:
        """JSON-ready view: hierarchical spans, leaf totals, worker stats."""
        return {
            "spans": {path: stats.as_dict()
                      for path, stats in sorted(self.spans.items())},
            "phases": self.phase_totals(),
            "workers": {
                pid: {"busy_s": worker["busy_s"], "tasks": worker["tasks"],
                      "spans": {path: stats.as_dict()
                                for path, stats in sorted(worker["spans"].items())}}
                for pid, worker in sorted(self.workers.items())},
        }


@contextmanager
def trace_run(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install ``tracer`` (or a fresh one) for the ``with`` block.

    Tracers *stack*: a tracer installed inside another's block sees the
    same spans the outer one does.  The span stack restarts empty for
    the block, so paths recorded under this tracer are rooted at it.
    """
    tracer = tracer if tracer is not None else Tracer()
    tracers_token = _TRACERS.set(_TRACERS.get() + (tracer,))
    stack_token = _STACK.set(())
    try:
        yield tracer
    finally:
        _STACK.reset(stack_token)
        _TRACERS.reset(tracers_token)


@contextmanager
def span(name: str, **attrs) -> Iterator[None]:
    """Attribute the ``with`` body to span ``name`` under the open stack.

    A no-op (one context-variable read) unless a tracer is active.
    ``attrs`` annotate the span: numeric values are summed across calls
    of the same path, everything else keeps its last value.
    """
    tracers = _TRACERS.get()
    if not tracers:
        yield
        return
    stack = _STACK.get()
    token = _STACK.set(stack + (name,))
    path = "/".join(stack + (name,))
    wall0 = time.perf_counter()
    cpu0 = time.thread_time()
    try:
        yield
    finally:
        wall = time.perf_counter() - wall0
        cpu = time.thread_time() - cpu0
        _STACK.reset(token)
        for tracer in tracers:
            tracer.record(name, path, wall, cpu, attrs)
