"""Cross-process telemetry: per-worker JSONL spill files, driver merge.

Phases recorded inside multiprocess workers used to vanish — the
``--timings`` footer of a ``--backend multiprocess`` run showed only the
driver's scheduling-side wait.  This module closes the gap without any
extra IPC machinery:

* The driver wraps each submitted task in :func:`spilled_call` whenever
  telemetry is active (a tracer or metrics registry is ambient — see
  :func:`telemetry_active`).  The wrapper runs the task under a fresh,
  worker-local :class:`~repro.obs.trace.Tracer` and
  :class:`~repro.obs.metrics.MetricsRegistry` in an *empty*
  :class:`contextvars.Context`, so state inherited across ``fork`` can
  neither leak in nor double-count.
* After the task body returns, the wrapper appends one JSON line —
  worker pid, busy seconds, span aggregates, metric snapshot — to
  ``<spill_dir>/worker-<pid>.jsonl``.  The line is written with a single
  :func:`os.write` on an ``O_APPEND`` descriptor, so concurrent readers
  never observe a torn record.
* At batch end the driver calls :func:`drain_spill_dir`, which parses
  every complete line past the previously consumed byte offset and
  folds it into the ambient tracers/registries
  (:meth:`Tracer.merge_spill` / :meth:`MetricsRegistry.merge_snapshot`).
  Offsets — not deletion — make draining safe to run while later tasks
  are still appending (the planner's interleaved pass-through batch):
  anything unconsumed is picked up by the next drain.

The spill directory is owned by the backend instance (created lazily,
removed on ``close()``), mirroring the planner's trace spill.
"""

from __future__ import annotations

import contextvars
import glob
import json
import os
import time
from typing import Dict

from repro.obs.metrics import MetricsRegistry, active_registries, metrics_run
from repro.obs.trace import Tracer, active_tracers, trace_run

#: Spill file name pattern: one JSONL file per worker process.
SPILL_GLOB = "worker-*.jsonl"


def telemetry_active() -> bool:
    """Whether any tracer or metrics registry is ambient in this context."""
    return bool(active_tracers() or active_registries())


def _spill_record(tracer: Tracer, registry: MetricsRegistry,
                  busy_s: float) -> dict:
    return {
        "pid": os.getpid(),
        "busy_s": busy_s,
        "tasks": 1,
        "spans": {path: stats.as_dict()
                  for path, stats in tracer.spans.items()},
        "metrics": registry.snapshot(),
    }


def _spilled_call_inner(spill_dir: str, function, args):
    tracer = Tracer()
    registry = MetricsRegistry()
    started = time.perf_counter()
    with trace_run(tracer), metrics_run(registry):
        result = function(*args)
    busy = time.perf_counter() - started
    line = json.dumps(_spill_record(tracer, registry, busy),
                      separators=(",", ":")) + "\n"
    path = os.path.join(spill_dir, f"worker-{os.getpid()}.jsonl")
    try:
        descriptor = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            # One write syscall per record: appends of whole lines are
            # never interleaved or observed torn by the draining driver.
            os.write(descriptor, line.encode("utf-8"))
        finally:
            os.close(descriptor)
    except OSError:
        # Telemetry is advisory; a failed spill must never fail the task.
        pass
    return result


def spilled_call(spill_dir: str, function, *args):
    """Run ``function(*args)`` under worker-local telemetry, spill, return.

    Executed in an empty :class:`contextvars.Context` so tracers
    inherited from the driver across ``fork`` do not also record (their
    copies never travel back and would only add overhead).
    """
    return contextvars.Context().run(_spilled_call_inner, spill_dir,
                                     function, args)


def fold_spill_record(record: dict) -> None:
    """Fold one worker record into every ambient tracer and registry."""
    for tracer in active_tracers():
        tracer.merge_spill(record)
    metrics = record.get("metrics")
    if metrics:
        for registry in active_registries():
            registry.merge_snapshot(metrics)


def drain_spill_dir(spill_dir: str, offsets: Dict[str, int]) -> int:
    """Merge every complete, unconsumed spill line; return records folded.

    ``offsets`` maps spill file path to the byte offset already
    consumed; the caller keeps it across drains.  Files are never
    deleted here (workers may still append) — the owning backend
    removes the directory on ``close()``.
    """
    folded = 0
    for path in sorted(glob.glob(os.path.join(spill_dir, SPILL_GLOB))):
        start = offsets.get(path, 0)
        try:
            with open(path, "rb") as handle:
                handle.seek(start)
                data = handle.read()
        except OSError:
            continue
        end = data.rfind(b"\n")
        if end < 0:
            continue
        chunk = data[:end + 1]
        offsets[path] = start + len(chunk)
        for line in chunk.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            fold_spill_record(record)
            folded += 1
    return folded
