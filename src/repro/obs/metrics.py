"""Counters, gauges and histograms with ambient (context-local) activation.

The runtime's layers report *what happened* — jobs simulated, cache
hits and misses, planner groups formed, traces interned, bytes written
— through module-level helpers (:func:`metric_count`,
:func:`metric_gauge`, :func:`metric_observe`) that are no-ops unless a
:class:`MetricsRegistry` is active in the current context
(:func:`metrics_run`).  Registries stack exactly like tracers
(:mod:`repro.obs.trace`): every active registry observes every metric,
so a telemetry session and a test-local registry compose.

Multiprocess workers run their tasks under a registry of their own and
spill its snapshot (:mod:`repro.obs.spill`); the driver merges those
snapshots into its active registries, so cross-process counts land in
the same run manifest as driver-side ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional, Tuple

_REGISTRIES: ContextVar[Tuple["MetricsRegistry", ...]] = ContextVar(
    "repro_obs_registries", default=())


def active_registries() -> Tuple["MetricsRegistry", ...]:
    """The registries observing metrics in the current context (may be empty)."""
    return _REGISTRIES.get()


class HistogramStats:
    """Streaming summary of one histogram: count, sum, min, max."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def fold(self, snapshot: dict) -> None:
        """Merge another histogram's snapshot dict into this one."""
        count = int(snapshot.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(snapshot.get("total", 0.0))
        for bound, pick in (("min", min), ("max", max)):
            value = snapshot.get(bound)
            if value is None:
                continue
            mine = self.minimum if bound == "min" else self.maximum
            merged = float(value) if mine is None else pick(mine, float(value))
            if bound == "min":
                self.minimum = merged
            else:
                self.maximum = merged

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.minimum, "max": self.maximum, "mean": self.mean}


class MetricsRegistry:
    """One run's counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramStats] = {}

    def count(self, name: str, value=1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = HistogramStats()
        histogram.observe(value)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` (spill merge path)."""
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, record in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = HistogramStats()
            histogram.fold(record)

    def snapshot(self) -> dict:
        """JSON-ready view of every metric."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: histogram.as_dict()
                           for name, histogram in sorted(self.histograms.items())},
        }


@contextmanager
def metrics_run(registry: Optional[MetricsRegistry] = None
                ) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (or a fresh one) for the ``with`` block."""
    registry = registry if registry is not None else MetricsRegistry()
    token = _REGISTRIES.set(_REGISTRIES.get() + (registry,))
    try:
        yield registry
    finally:
        _REGISTRIES.reset(token)


def metric_count(name: str, value=1) -> None:
    """Increment counter ``name`` in every active registry (no-op when none)."""
    for registry in _REGISTRIES.get():
        registry.count(name, value)


def metric_gauge(name: str, value) -> None:
    """Set gauge ``name`` in every active registry (no-op when none)."""
    for registry in _REGISTRIES.get():
        registry.gauge(name, value)


def metric_observe(name: str, value) -> None:
    """Add one observation to histogram ``name`` in every active registry."""
    for registry in _REGISTRIES.get():
        registry.observe(name, value)


def record_counter_deltas(prefix: str, deltas: Dict[str, int]) -> None:
    """Count every non-zero delta under ``prefix.<name>`` (cache stats)."""
    if not _REGISTRIES.get():
        return
    for name, value in deltas.items():
        if value:
            metric_count(f"{prefix}.{name}", value)
