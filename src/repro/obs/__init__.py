"""``repro.obs``: zero-dependency runtime observability.

Four pieces, layered bottom-up:

* :mod:`repro.obs.trace` — hierarchical span tracing with ambient
  context-local activation (:func:`span`, :func:`trace_run`,
  :class:`Tracer`).  :func:`repro.utils.phases.phase` is an alias of
  :func:`span`, so the pipeline's existing phase instrumentation feeds
  the tracer directly.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with the same
  ambient activation (:func:`metric_count`, :func:`metrics_run`,
  :class:`MetricsRegistry`).
* :mod:`repro.obs.spill` — cross-process aggregation: multiprocess
  workers spill span/metric records to per-worker JSONL files that the
  driver merges at batch end, so worker compute is attributed instead
  of silently dropped.
* :mod:`repro.obs.manifest` — :func:`telemetry_run` sessions snapshot
  everything into a run-manifest JSONL record appended to
  ``$REPRO_TELEMETRY_DIR`` (or an explicit ``--telemetry-dir``).

The ``repro-stats`` console script (:mod:`repro.obs.stats_cli`)
summarises a telemetry directory and inspects cache inventories.
"""

from repro.obs.manifest import (
    MANIFEST_FILE,
    MANIFEST_SCHEMA,
    TELEMETRY_ENV,
    TelemetryHandle,
    append_manifest,
    load_manifests,
    resolve_telemetry_dir,
    telemetry_run,
)
from repro.obs.metrics import (
    MetricsRegistry,
    active_registries,
    metric_count,
    metric_gauge,
    metric_observe,
    metrics_run,
    record_counter_deltas,
)
from repro.obs.spill import (
    drain_spill_dir,
    fold_spill_record,
    spilled_call,
    telemetry_active,
)
from repro.obs.trace import Tracer, active_tracers, span, trace_run

__all__ = [
    "MANIFEST_FILE",
    "MANIFEST_SCHEMA",
    "TELEMETRY_ENV",
    "MetricsRegistry",
    "TelemetryHandle",
    "Tracer",
    "active_registries",
    "active_tracers",
    "append_manifest",
    "drain_spill_dir",
    "fold_spill_record",
    "load_manifests",
    "metric_count",
    "metric_gauge",
    "metric_observe",
    "metrics_run",
    "record_counter_deltas",
    "resolve_telemetry_dir",
    "span",
    "spilled_call",
    "telemetry_active",
    "telemetry_run",
    "trace_run",
]
