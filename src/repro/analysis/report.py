"""Plain-text tabulation helpers used by experiments, examples and benches."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.exceptions import AnalysisError
from repro.ml.metrics import LOG_FLOOR


def format_log_value(value: float, floor: float = LOG_FLOOR) -> str:
    """Format a metric the way the paper's log-scale figures display it.

    Values below the floor (including exact zeros) are shown as the floor,
    matching the paper's convention of plotting 1e-6 for error-free cases.
    """
    return f"{max(float(value), floor):.2e}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width text table (no external dependencies)."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(header) for header in headers]
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row {row!r} has {len(row)} cells but there are {len(headers)} headers")
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
