"""Bit-position error distributions (the analysis behind Fig. 10).

Two series are combined:

* the **structural** distribution comes from the behavioural ISA model,
  which attributes every uncompensated speculation fault to the
  bit-position equivalent of its residual arithmetic error;
* the **timing** distribution is the per-bit error rate extracted from
  the over-clocked timing simulation (latched bit differs from settled
  bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.isa import StructuralFaultStats
from repro.exceptions import AnalysisError
from repro.timing.errors import TimingErrorTrace


@dataclass(frozen=True)
class BitErrorDistribution:
    """Per-bit-position internal error rates of one overclocked design."""

    design: str
    clock_period: Optional[float]
    width: int
    structural: np.ndarray
    timing: np.ndarray

    def __post_init__(self) -> None:
        if self.structural.shape != self.timing.shape:
            raise AnalysisError("structural and timing series must have the same length")

    @property
    def positions(self) -> np.ndarray:
        """Bit-position axis (0 = LSB)."""
        return np.arange(self.structural.shape[0])

    def dominant_source(self) -> str:
        """Which error source dominates overall ("structural", "timing" or "balanced")."""
        structural_mass = float(self.structural.sum())
        timing_mass = float(self.timing.sum())
        if structural_mass == 0 and timing_mass == 0:
            return "none"
        larger, smaller = max(structural_mass, timing_mass), min(structural_mass, timing_mass)
        if smaller > 0 and larger / smaller < 3.0:
            return "balanced"
        return "structural" if structural_mass >= timing_mass else "timing"

    def rows(self):
        """Iterate (position, structural rate, timing rate) rows for tabulation."""
        for position in self.positions:
            yield int(position), float(self.structural[position]), float(self.timing[position])


def bit_error_distribution(design: str, width: int,
                           structural_stats: StructuralFaultStats,
                           timing_trace: TimingErrorTrace) -> BitErrorDistribution:
    """Build the Fig. 10 distribution from behavioural and timing results."""
    length = width + 1
    structural = np.zeros(length)
    counts = structural_stats.error_rate_by_position
    structural[:min(length, counts.shape[0])] = counts[:length]
    timing = np.zeros(length)
    rates = timing_trace.bit_error_rate()
    timing[:min(length, rates.shape[0])] = rates[:length]
    return BitErrorDistribution(design=design, clock_period=timing_trace.clock_period,
                                width=width, structural=structural, timing=timing)
