"""Error-analysis utilities: metrics, distributions and text reports."""

from repro.analysis.metrics import (
    ErrorStatistics,
    StructuralCost,
    error_rate,
    error_statistics,
    mean_error_distance,
    mean_relative_error_distance,
    normalized_mean_error_distance,
    rms_relative_error,
    structural_cost,
    worst_case_error,
)
from repro.analysis.distribution import BitErrorDistribution, bit_error_distribution
from repro.analysis.report import format_table, format_log_value

__all__ = [
    "ErrorStatistics",
    "StructuralCost",
    "error_statistics",
    "structural_cost",
    "error_rate",
    "mean_error_distance",
    "mean_relative_error_distance",
    "normalized_mean_error_distance",
    "rms_relative_error",
    "worst_case_error",
    "BitErrorDistribution",
    "bit_error_distribution",
    "format_table",
    "format_log_value",
]
