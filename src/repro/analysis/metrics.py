"""Approximate-arithmetic error metrics.

The paper's headline metric is the RMS of the relative error (it is
proportional to the output SNR, the quantity that matters for multimedia
workloads); the other metrics are the standard figures of merit used in
the approximate-computing literature (error rate, mean/normalised error
distance, worst case) and are reported by the examples and the
design-space-exploration benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.exceptions import AnalysisError

ArrayLike = Union[np.ndarray, list, tuple]


def _validate(exact: np.ndarray, approximate: np.ndarray) -> None:
    if exact.shape != approximate.shape:
        raise AnalysisError(f"shape mismatch: exact {exact.shape} vs approximate {approximate.shape}")
    if exact.size == 0:
        raise AnalysisError("error metrics need at least one sample")


def _signed(values: ArrayLike) -> np.ndarray:
    return np.asarray(values).astype(np.int64)


def _relative(exact: np.ndarray, approximate: np.ndarray) -> np.ndarray:
    denominator = np.where(exact == 0, np.int64(1), exact).astype(np.float64)
    return (approximate - exact) / denominator


def error_rate(exact: ArrayLike, approximate: ArrayLike) -> float:
    """Fraction of samples whose approximate value differs from the exact one."""
    exact, approximate = _signed(exact), _signed(approximate)
    _validate(exact, approximate)
    return float(np.mean(exact != approximate))


def mean_error_distance(exact: ArrayLike, approximate: ArrayLike) -> float:
    """Mean absolute arithmetic error (MED)."""
    exact, approximate = _signed(exact), _signed(approximate)
    _validate(exact, approximate)
    return float(np.mean(np.abs(approximate - exact)))


def normalized_mean_error_distance(exact: ArrayLike, approximate: ArrayLike,
                                   width: int) -> float:
    """MED normalised by the maximum representable output (NMED)."""
    if width <= 0:
        raise AnalysisError(f"width must be positive, got {width}")
    return mean_error_distance(exact, approximate) / float(2 ** width)


def mean_relative_error_distance(exact: ArrayLike, approximate: ArrayLike) -> float:
    """Mean absolute relative error (MRED)."""
    exact, approximate = _signed(exact), _signed(approximate)
    _validate(exact, approximate)
    return float(np.mean(np.abs(_relative(exact, approximate))))


def rms_relative_error(exact: ArrayLike, approximate: ArrayLike) -> float:
    """Root-mean-square of the signed relative error — the paper's main metric."""
    exact, approximate = _signed(exact), _signed(approximate)
    _validate(exact, approximate)
    return float(np.sqrt(np.mean(_relative(exact, approximate) ** 2)))


def worst_case_error(exact: ArrayLike, approximate: ArrayLike) -> int:
    """Largest absolute arithmetic error observed."""
    exact, approximate = _signed(exact), _signed(approximate)
    _validate(exact, approximate)
    return int(np.max(np.abs(approximate - exact)))


@dataclass(frozen=True)
class ErrorStatistics:
    """Bundle of all error metrics for one (design, workload) pair."""

    samples: int
    error_rate: float
    mean_error_distance: float
    normalized_mean_error_distance: float
    mean_relative_error_distance: float
    rms_relative_error: float
    worst_case_error: int

    def as_dict(self) -> dict:
        """Plain-dict view (useful for tabulation and JSON export)."""
        return {
            "samples": self.samples,
            "error_rate": self.error_rate,
            "med": self.mean_error_distance,
            "nmed": self.normalized_mean_error_distance,
            "mred": self.mean_relative_error_distance,
            "rms_re": self.rms_relative_error,
            "worst_case": self.worst_case_error,
        }

    def snr_db(self) -> float:
        """Signal-to-noise ratio implied by the RMS relative error, in dB."""
        if self.rms_relative_error == 0:
            return float("inf")
        return float(-20.0 * np.log10(self.rms_relative_error))


@dataclass(frozen=True)
class StructuralCost:
    """Circuit-cost view of one synthesized design (the DSE cost axes).

    ``gates`` counts cell instances; ``area_proxy`` is the sum of all
    annotated instance delays in seconds — the library has no physical
    cell areas, and summed nominal delay tracks transistor count across
    the cell set well enough to rank designs (the same proxy
    :meth:`~repro.circuit.sdf.DelayAnnotation.total_delay` reports).
    """

    gates: int
    area_proxy: float
    critical_path_delay: float

    def as_dict(self) -> dict:
        """Plain-dict view (useful for tabulation and JSON export)."""
        return {
            "gates": self.gates,
            "area_proxy": self.area_proxy,
            "critical_path_ps": self.critical_path_delay * 1e12,
        }


def structural_cost(design) -> StructuralCost:
    """Cost of a :class:`~repro.synth.flow.SynthesizedDesign`.

    Duck-typed (netlist + annotation + critical path) so the analysis
    layer stays import-independent of the synthesis flow.
    """
    return StructuralCost(
        gates=int(design.netlist.num_gates),
        area_proxy=float(design.annotation.total_delay()),
        critical_path_delay=float(design.critical_path_delay),
    )


def error_statistics(exact: ArrayLike, approximate: ArrayLike, width: int = 32) -> ErrorStatistics:
    """Compute every metric at once over a batch of outputs."""
    exact_arr, approx_arr = _signed(exact), _signed(approximate)
    _validate(exact_arr, approx_arr)
    return ErrorStatistics(
        samples=int(exact_arr.shape[0]),
        error_rate=error_rate(exact_arr, approx_arr),
        mean_error_distance=mean_error_distance(exact_arr, approx_arr),
        normalized_mean_error_distance=normalized_mean_error_distance(exact_arr, approx_arr, width),
        mean_relative_error_distance=mean_relative_error_distance(exact_arr, approx_arr),
        rms_relative_error=rms_relative_error(exact_arr, approx_arr),
        worst_case_error=worst_case_error(exact_arr, approx_arr),
    )
