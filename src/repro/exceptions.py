"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library-level failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An adder or experiment configuration is invalid or inconsistent."""


class NetlistError(ReproError):
    """A netlist is structurally invalid (unknown nets, cycles, bad arity)."""


class SynthesisError(ReproError):
    """The synthesis flow could not produce a legal, constraint-meeting netlist."""


class TimingError(ReproError):
    """A timing analysis or timing simulation request is invalid."""


class SimulationError(ReproError):
    """A logic or timing simulation failed (unresolved nets, bad stimulus)."""


class CompilationError(ReproError):
    """A netlist could not be lowered to a compiled bit-packed program."""


class TaskTimeoutError(ReproError):
    """A runtime task exceeded its per-task timeout budget.

    Counted as a *retryable* failure by the resilience layer: tasks are
    deterministic, so a re-run either finishes in time (a transient
    stall) or times out again until the retry budget is exhausted.
    """


class ModelError(ReproError):
    """A machine-learning model is used before fitting or with bad shapes."""


class WorkloadError(ReproError):
    """An input workload/trace request is invalid."""


class AnalysisError(ReproError):
    """An error-analysis computation received inconsistent data."""
