"""The :class:`OperatorFamily` protocol: one operator, every pipeline hook.

The characterization pipeline — synthesis flow, golden references,
timing simulation, result/synthesis caches, sweep scoring, Pareto
ranking, adaptive search and the ML feature extractors — is operator
agnostic *except* for a handful of decisions that depend on what the
circuit computes: how a design entry becomes a synthesizable
specification, what the exact (diamond) and behavioural-golden outputs
are, how wide the result bus is, which configurations are legal, and
how a configuration quadruple maps to surrogate features.

An :class:`OperatorFamily` bundles exactly those decisions.  Consumers
resolve the family of a design entry through the registry in
:mod:`repro.families` (``family_of(entry)``) and dispatch through it
instead of hardcoding the adder; a new operator (MAC, dot-product
datapath, ...) is one new module registering one new family, and the
whole sweep/cache/planner/Pareto/adaptive pipeline works unchanged.

Design entries of every family share a small structural contract: a
frozen dataclass with a ``name`` (the design label of reports and
figures), a ``config`` (``None`` for the family's exact baseline), an
``is_exact`` property, and a ``family`` attribute naming the owning
family id.  The adder's :class:`~repro.experiments.designs.DesignEntry`
predates the registry and keeps its exact dataclass layout (its cache
digests must not move); new families define their own entry dataclass.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.synth.flow import SynthesisOptions

Quadruple = Tuple[int, int, int, int]


class OperatorFamily(abc.ABC):
    """Everything the pipeline needs to know about one operator kind.

    Attributes
    ----------
    family_id:
        Stable registry key (``"adder"``, ``"multiplier"``).  Part of
        the cache-digest identity of every non-adder job, so it must
        never change once a family has shipped.
    max_width:
        Largest operand width whose results fit the vectorised
        ``uint64`` behavioural models.
    default_width:
        Width the family's studies default to when the caller does not
        pick one.
    """

    family_id: str = ""
    max_width: int = 62
    default_width: int = 32

    # ------------------------------------------------------------------ #
    # Design entries
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def exact_entry(self, width: int):
        """The family's exact-baseline design entry (``config is None``)."""

    @abc.abstractmethod
    def design_entry(self, quadruple: Sequence[int], width: int):
        """A design entry from the family's quadruple notation."""

    @abc.abstractmethod
    def quadruple_of(self, entry) -> Optional[Quadruple]:
        """The entry's quadruple, or ``None`` for the exact baseline."""

    @abc.abstractmethod
    def is_provably_exact(self, entry) -> bool:
        """True when the architecture can never err, on any input."""

    # ------------------------------------------------------------------ #
    # Synthesis and golden references
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def design_spec(self, entry, width: int, options: "SynthesisOptions"):
        """What the synthesis flow materialises for this entry.

        Returns whatever :func:`repro.synth.flow.synthesize` accepts — a
        behavioural configuration with a registered generator, or a
        ready :class:`~repro.circuit.netlist.Netlist`.
        """

    @abc.abstractmethod
    def exact_words(self, width: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The exact (diamond) result words of operand arrays ``a``/``b``."""

    @abc.abstractmethod
    def golden_words(self, entry, width: int, a: np.ndarray, b: np.ndarray,
                     collect_stats: bool = False,
                     diamond: Optional[np.ndarray] = None):
        """Behavioural golden words of one entry: ``(gold, stats)``.

        ``stats`` are the family's structural fault statistics when
        ``collect_stats`` is set and the family tracks them, else
        ``None``.  ``diamond`` may carry the precomputed exact words so
        the exact baseline can return a copy without recomputing.
        """

    def result_width(self, width: int) -> int:
        """Output bus width of a ``width``-bit design (default: ``width``)."""
        return width

    def safe_period(self, width: int) -> float:
        """Safe clock period anchoring the family's CPR sweeps, in seconds.

        Must clear the exact baseline's critical path at ``width`` so
        the frontier's zero-CPR anchor is genuinely error-free.  The
        default is the paper's 0.3 ns adder anchor.
        """
        from repro.timing.clocking import PAPER_SAFE_PERIOD
        return PAPER_SAFE_PERIOD

    # ------------------------------------------------------------------ #
    # Design-space enumeration and surrogate features
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def design_space(self, width: int, **constraints):
        """The family's legal quadruple space at one width.

        The returned object duck-types
        :class:`~repro.explore.space.DesignSpace`: ``width``,
        ``family``, ``iter_quadruples()``, ``quadruples()``, ``size``,
        ``select()``, ``entries()`` and ``describe()``.
        """

    #: Column names of :meth:`surrogate_features`; must contain
    #: ``"provably_exact"`` (the adaptive explorer's guarantee axis).
    surrogate_feature_names: Tuple[str, ...] = ()

    @abc.abstractmethod
    def surrogate_features(self, quadruples: np.ndarray, width: int) -> np.ndarray:
        """Surrogate feature matrix of ``(candidates, 4)`` quadruple rows."""

    # ------------------------------------------------------------------ #
    # Reporting and ML hooks
    # ------------------------------------------------------------------ #
    def annotate(self, quadruple: Optional[Quadruple]) -> Optional[Tuple[str, float]]:
        """Optional report annotation: ``(label, distance)`` or ``None``.

        The adder annotates frontier rows with the nearest hand-picked
        paper design; families without a reference set return ``None``
        and the report shows an em dash.
        """
        return None

    def feature_names(self, width: int):
        """Column names of the bit-level timing-error feature matrix."""
        from repro.ml.features import feature_names
        return feature_names(width)

    def feature_matrix(self, trace, gold_words: np.ndarray, bit: int) -> np.ndarray:
        """Timing-error features of one output bit (paper Section III-A)."""
        from repro.ml.features import build_feature_matrix
        return build_feature_matrix(trace, gold_words, bit)

    def describe(self) -> str:
        """One-line summary used by CLI help and reports."""
        return f"{self.family_id} (widths 2..{self.max_width})"
