"""Operator-family registry: pluggable operators for the whole pipeline.

Every design entry carries a ``family`` attribute naming its
:class:`~repro.families.base.OperatorFamily`; consumers resolve it here
(``family_of(entry)``) and dispatch synthesis, golden references,
design-space enumeration and feature extraction through the family
object instead of hardcoding one operator.  Adder entries predate the
registry and omit the attribute, so resolution defaults to ``"adder"``
— their cache digests are unchanged by the refactor.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.exceptions import ConfigurationError
from repro.families.base import OperatorFamily, Quadruple

FAMILIES: Dict[str, OperatorFamily] = {}


def register_family(family: OperatorFamily) -> OperatorFamily:
    """Register one family under its ``family_id`` (last wins)."""
    if not family.family_id:
        raise ConfigurationError(
            f"{type(family).__name__} has no family_id; set the class attribute")
    FAMILIES[family.family_id] = family
    return family


def get_family(family_id: str) -> OperatorFamily:
    """The registered family of one id, or a ConfigurationError."""
    try:
        return FAMILIES[family_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown operator family {family_id!r}; "
            f"registered: {sorted(FAMILIES)}") from None


def family_of(entry) -> OperatorFamily:
    """The family owning one design entry (``"adder"`` when untagged)."""
    return get_family(getattr(entry, "family", "adder"))


def family_ids() -> Tuple[str, ...]:
    """The registered family ids, sorted."""
    return tuple(sorted(FAMILIES))


from repro.families.adder import AdderFamily
from repro.families.multiplier import MultiplierFamily

register_family(AdderFamily())
register_family(MultiplierFamily())

__all__ = [
    "FAMILIES", "OperatorFamily", "Quadruple", "AdderFamily",
    "MultiplierFamily", "register_family", "get_family", "family_of",
    "family_ids",
]
