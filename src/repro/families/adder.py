"""The Inexact Speculative Adder as the first registered operator family.

This module re-homes the pipeline's original operator behind the
:class:`~repro.families.base.OperatorFamily` protocol.  Every method is
a thin delegation to the pre-existing adder machinery —
:class:`~repro.core.exact.ExactAdder`,
:class:`~repro.core.isa.InexactSpeculativeAdder`,
:func:`~repro.synth.flow.exact_adder_netlist`, the entry constructors in
:mod:`repro.experiments.designs`, the quadruple enumeration of
:class:`~repro.explore.space.DesignSpace` and the surrogate features of
:mod:`repro.explore.adaptive` — so the refactored consumers are
bit-identical to the hardcoded paths they replace (pinned by the
regression tests in ``tests/test_families.py``).

The explore-layer imports are deliberately lazy: ``repro.explore``
imports ``repro.runtime`` which resolves families through the registry,
so importing them at module level would cycle.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.exact import ExactAdder
from repro.core.isa import InexactSpeculativeAdder
from repro.experiments.designs import DesignEntry, exact_entry, isa_entry
from repro.families.base import OperatorFamily, Quadruple
from repro.synth.flow import SynthesisOptions, exact_adder_netlist


class AdderFamily(OperatorFamily):
    """The paper's operator: exact adder baseline plus the ISA space."""

    family_id = "adder"
    #: :class:`ExactAdder` caps the operand width at 62 bits so the
    #: ``width + 1``-bit sums stay inside vectorised ``uint64`` words.
    max_width = 62
    default_width = 32

    # ------------------------------------------------------------------ #
    # Design entries
    # ------------------------------------------------------------------ #
    def exact_entry(self, width: int) -> DesignEntry:
        return exact_entry(width)

    def design_entry(self, quadruple: Sequence[int], width: int) -> DesignEntry:
        return isa_entry(quadruple, width=width)

    def quadruple_of(self, entry: DesignEntry) -> Optional[Quadruple]:
        return None if entry.is_exact else entry.config.quadruple

    def is_provably_exact(self, entry: DesignEntry) -> bool:
        return True if entry.is_exact else entry.config.is_provably_exact

    # ------------------------------------------------------------------ #
    # Synthesis and golden references
    # ------------------------------------------------------------------ #
    def design_spec(self, entry: DesignEntry, width: int, options: SynthesisOptions):
        if entry.is_exact:
            return exact_adder_netlist(width, options.adder_architecture)
        return entry.config

    def exact_words(self, width: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ExactAdder(width).add_many(a, b)

    def golden_words(self, entry: DesignEntry, width: int, a: np.ndarray,
                     b: np.ndarray, collect_stats: bool = False,
                     diamond: Optional[np.ndarray] = None):
        if entry.is_exact:
            base = diamond if diamond is not None else self.exact_words(width, a, b)
            # Copy: a characterization must never alias its gold and
            # diamond words to one buffer.
            return base.copy(), None
        model = InexactSpeculativeAdder(entry.config)
        if collect_stats:
            return model.add_many_with_stats(a, b)
        return model.add_many(a, b), None

    def result_width(self, width: int) -> int:
        """The sum keeps the final carry out: ``width + 1`` bits."""
        return width + 1

    # ------------------------------------------------------------------ #
    # Design-space enumeration and surrogate features
    # ------------------------------------------------------------------ #
    def design_space(self, width: int, **constraints):
        from repro.explore.space import DesignSpace
        return DesignSpace(width=width, **constraints)

    @property
    def surrogate_feature_names(self) -> Tuple[str, ...]:
        from repro.explore.adaptive import SURROGATE_FEATURES
        return SURROGATE_FEATURES

    def surrogate_features(self, quadruples: np.ndarray, width: int) -> np.ndarray:
        from repro.explore.adaptive import quadruple_features
        return quadruple_features(quadruples, width)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def annotate(self, quadruple: Optional[Quadruple]) -> Optional[Tuple[str, float]]:
        from repro.explore.pareto import nearest_paper_design
        return nearest_paper_design(quadruple)
