"""Approximate truncated/segmented array multiplier operator family.

The second operator registered with :mod:`repro.families`, exercising
every registry hook the adder uses — behavioural exact/golden models, a
cell-library netlist generator, legal-design enumeration, surrogate
features — through the unchanged sweep/cache/planner/Pareto pipeline.

A design is a quadruple ``(truncation, segment, correction, row_skip)``
applied to a ``width``-bit unsigned array multiplier computing
``S = A * B + cin`` on a ``2 * width``-bit output bus:

* ``truncation`` ``t`` drops every partial-product term ``a_i & b_j``
  of weight below ``2**t`` (``i + j < t``) — the classical truncated
  multiplier, trading the low output bits for area.
* ``segment`` ``s`` cuts the row-accumulation carry chains at every bit
  position divisible by ``s`` (``s`` divides ``2 * width``; ``0`` keeps
  full carry propagation) — the multiplier analogue of the ISA's
  speculative carry segmentation: each row is added segment-wise with
  inter-segment carries dropped, shortening the critical path at the
  cost of rare carry-loss errors.
* ``correction`` adds the constant ``2**(t - 1)`` into the accumulator,
  centring the truncation error around zero (requires ``t >= 2`` so the
  constant does not collide with the carry-in bit).
* ``row_skip`` ``r`` drops the ``r`` least-significant partial-product
  rows entirely (the rows gated by ``a_0 .. a_{r-1}``).

The carry-in operand rides along as a weight-0 addend seeding the
accumulator (the operator is a fused ``a * b + cin``); it is never
truncated, so every netlist input stays in use for every configuration.
The behavioural model and the netlist generator mirror each other row
by row — same row order, same segment boundaries, same correction
constant — so their outputs are bit-identical on every input, which the
pipeline's netlist-vs-golden cross-check (and the equivalence tests)
enforce across the legal space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.builder import NetlistBuilder
from repro.circuit.netlist import Netlist
from repro.exceptions import ConfigurationError
from repro.families.base import OperatorFamily, Quadruple
from repro.synth.flow import SynthesisOptions
from repro.utils.validation import check_non_negative_int, check_positive_int

#: Largest operand width whose ``2 * width``-bit products fit vectorised
#: ``uint64`` arithmetic.
MAX_MULTIPLIER_WIDTH = 31


def legal_segment_sizes(width: int) -> Tuple[int, ...]:
    """Segment sizes legal at one width: 0 plus divisors of ``2 * width``
    in ``[2, width]`` (a 1-bit segment would drop every carry)."""
    check_positive_int("width", width)
    out = 2 * width
    return (0,) + tuple(s for s in range(2, width + 1) if out % s == 0)


@dataclass(frozen=True)
class MultiplierConfig:
    """Static description of one approximate array multiplier.

    Parameters
    ----------
    width:
        Operand width in bits; the product bus is ``2 * width`` bits.
    truncation:
        Partial-product terms of weight below ``2**truncation`` are
        dropped (``0`` keeps every term).
    segment:
        Row-accumulation carry chains are cut at bit positions divisible
        by ``segment`` (``0`` keeps full propagation; otherwise a
        divisor of ``2 * width`` in ``[2, width]``).
    correction:
        ``1`` adds the constant ``2**(truncation - 1)`` into the
        accumulator to centre the truncation error (requires
        ``truncation >= 2``).
    row_skip:
        The ``row_skip`` least-significant partial-product rows are
        dropped entirely.
    """

    width: int = 8
    truncation: int = 0
    segment: int = 0
    correction: int = 0
    row_skip: int = 0

    def __post_init__(self) -> None:
        check_positive_int("width", self.width)
        check_non_negative_int("truncation", self.truncation)
        check_non_negative_int("segment", self.segment)
        check_non_negative_int("row_skip", self.row_skip)
        if self.width > MAX_MULTIPLIER_WIDTH:
            raise ConfigurationError(
                f"multiplier width is limited to {MAX_MULTIPLIER_WIDTH} bits so "
                f"vectorised products fit in uint64, got {self.width}")
        if self.truncation > self.width:
            raise ConfigurationError(
                f"truncation {self.truncation} cannot exceed width {self.width}: "
                "dropping terms above the operand weight leaves no partial products")
        if self.segment and self.segment not in legal_segment_sizes(self.width):
            raise ConfigurationError(
                f"segment {self.segment} is not legal at width {self.width}; "
                f"legal sizes: {list(legal_segment_sizes(self.width))}")
        if self.correction not in (0, 1):
            raise ConfigurationError(
                f"correction must be 0 or 1, got {self.correction}")
        if self.correction and self.truncation < 2:
            raise ConfigurationError(
                "correction requires truncation >= 2: the constant 2**(t-1) "
                "must sit above the carry-in bit")
        if self.row_skip >= self.width:
            raise ConfigurationError(
                f"row_skip {self.row_skip} must leave at least one partial-product "
                f"row at width {self.width}")

    # ------------------------------------------------------------------ #
    @property
    def quadruple(self) -> Quadruple:
        """The ``(truncation, segment, correction, row_skip)`` notation."""
        return (self.truncation, self.segment, self.correction, self.row_skip)

    @property
    def is_provably_exact(self) -> bool:
        """True when the architecture can never err on any input.

        Every dropped partial-product term (truncation or row skip) and
        every cut carry chain has inputs that defeat it; only the full
        untruncated, unsegmented array is exact.
        """
        return (self.truncation == 0 and self.segment == 0
                and self.row_skip == 0)

    @property
    def name(self) -> str:
        """Design label, e.g. ``"mul(4,0,1,0)"``."""
        return "mul({},{},{},{})".format(*self.quadruple)

    @property
    def label(self) -> str:
        """Identifier-safe name, e.g. ``"mul8_4_0_1_0"``."""
        return "mul{}_{}_{}_{}_{}".format(self.width, *self.quadruple)

    @classmethod
    def from_quadruple(cls, quadruple: Sequence[int], width: int = 8) -> "MultiplierConfig":
        """Build a config from the quadruple notation."""
        if len(quadruple) != 4:
            raise ConfigurationError(
                "multiplier quadruple must have 4 entries "
                f"(truncation, segment, correction, row_skip), got {quadruple!r}")
        truncation, segment, correction, row_skip = quadruple
        return cls(width=width, truncation=truncation, segment=segment,
                   correction=correction, row_skip=row_skip)


@dataclass(frozen=True)
class MultiplierEntry:
    """One multiplier design column: a configuration or the exact baseline.

    Mirrors :class:`~repro.experiments.designs.DesignEntry` structurally
    (``name`` / ``config`` / ``is_exact``) but is a distinct dataclass:
    the cache digests canonicalise entries with their dataclass name, so
    multiplier jobs can never collide with adder jobs of the same shape.
    """

    name: str
    config: Optional[MultiplierConfig]

    #: Registry id resolving this entry's :class:`MultiplierFamily`
    #: (a class attribute, not a dataclass field — the digest identity
    #: of the entry is its name, config and dataclass tag).
    family = "multiplier"

    @property
    def is_exact(self) -> bool:
        """True for the exact (full-array) multiplier baseline."""
        return self.config is None


def exact_multiplier_entry(width: int = 8) -> MultiplierEntry:
    """The exact-multiplier baseline column (labelled "exact")."""
    return MultiplierEntry(name="exact", config=None)


def multiplier_entry(quadruple: Sequence[int], width: int = 8) -> MultiplierEntry:
    """A single multiplier column from its quadruple notation."""
    config = MultiplierConfig.from_quadruple(tuple(quadruple), width=width)
    return MultiplierEntry(name=config.name, config=config)


# --------------------------------------------------------------------- #
# Behavioural model
# --------------------------------------------------------------------- #
def _segmented_add(x: np.ndarray, y: np.ndarray, segment: int,
                   result_width: int) -> np.ndarray:
    """Add ``y`` into ``x`` with carry chains cut at segment boundaries.

    ``segment == 0`` is a plain add (the values fit ``uint64`` by the
    width cap, so no explicit modulo is needed); otherwise each
    ``segment``-bit slice is added independently and its carry-out
    dropped — exactly the netlist's per-row ripple with the carry reset
    to constant 0 at every boundary.
    """
    if segment == 0:
        return x + y
    total = np.zeros_like(x)
    seg_mask = np.uint64((1 << segment) - 1)
    for low in range(0, result_width, segment):
        shift = np.uint64(low)
        piece = (((x >> shift) & seg_mask) + ((y >> shift) & seg_mask)) & seg_mask
        total |= piece << shift
    return total


class ApproximateArrayMultiplier:
    """Vectorised behavioural model of one :class:`MultiplierConfig`.

    Accumulates the partial-product rows in row order through
    :func:`_segmented_add`, mirroring the netlist generator gate for
    gate, so the two are bit-identical on every operand vector.
    """

    def __init__(self, config: MultiplierConfig) -> None:
        self.config = config

    @property
    def name(self) -> str:
        """Design label of the modelled configuration."""
        return self.config.name

    def multiply_many(self, a: np.ndarray, b: np.ndarray, cin: int = 0) -> np.ndarray:
        """Products of two equal-length operand arrays (plus the carry-in)."""
        config = self.config
        width = config.width
        a = _checked_operands("a", a, width)
        b = _checked_operands("b", b, width)
        if a.shape != b.shape:
            raise ConfigurationError(
                f"operand arrays must have equal shapes, got {a.shape} and {b.shape}")
        if cin not in (0, 1):
            raise ConfigurationError(f"cin must be 0 or 1, got {cin}")
        result_width = 2 * width
        acc = np.full_like(a, cin)
        if config.correction:
            acc = acc + np.uint64(1 << (config.truncation - 1))
        one = np.uint64(1)
        for row in range(config.row_skip, width):
            keep_from = max(config.truncation - row, 0)
            if keep_from >= width:
                continue
            keep_mask = np.uint64(((1 << width) - 1) & ~((1 << keep_from) - 1))
            row_bit = (a >> np.uint64(row)) & one
            row_word = (row_bit * (b & keep_mask)) << np.uint64(row)
            acc = _segmented_add(acc, row_word, config.segment, result_width)
        return acc


class ExactMultiplier:
    """Vectorised exact reference: ``a * b + cin`` on uint64 words."""

    def __init__(self, width: int) -> None:
        check_positive_int("width", width)
        if width > MAX_MULTIPLIER_WIDTH:
            raise ConfigurationError(
                f"multiplier width is limited to {MAX_MULTIPLIER_WIDTH} bits so "
                f"vectorised products fit in uint64, got {width}")
        self.width = width

    @property
    def name(self) -> str:
        """Design label of the exact baseline."""
        return "exact"

    def multiply_many(self, a: np.ndarray, b: np.ndarray, cin: int = 0) -> np.ndarray:
        """Exact products of two equal-length operand arrays."""
        a = _checked_operands("a", a, self.width)
        b = _checked_operands("b", b, self.width)
        if a.shape != b.shape:
            raise ConfigurationError(
                f"operand arrays must have equal shapes, got {a.shape} and {b.shape}")
        if cin not in (0, 1):
            raise ConfigurationError(f"cin must be 0 or 1, got {cin}")
        return a * b + np.uint64(cin)


def _checked_operands(label: str, values: np.ndarray, width: int) -> np.ndarray:
    values = np.asarray(values, dtype=np.uint64)
    if values.size and int(values.max()) >= (1 << width):
        raise ConfigurationError(
            f"operand {label} exceeds the {width}-bit multiplier range")
    return values


# --------------------------------------------------------------------- #
# Netlist generator
# --------------------------------------------------------------------- #
def multiplier_netlist(config: MultiplierConfig) -> Netlist:
    """Gate-level array multiplier matching the behavioural model exactly.

    One AND gate per kept partial-product term; each row is folded into
    the ``2 * width``-bit accumulator by a ripple of full adders whose
    carry is reset to constant 0 at every segment boundary — the
    structural transcription of :func:`_segmented_add`.  Truncated
    accumulator positions stay constant (or pass the carry-in through),
    which the optimizer and both timing simulators handle natively.
    """
    width = config.width
    result_width = 2 * width
    builder = NetlistBuilder(config.label)
    a = builder.input_bus("A", width)
    b = builder.input_bus("B", width)
    cin = builder.input_bit("cin")

    acc: List[str] = [builder.zero] * result_width
    acc[0] = cin
    if config.correction:
        acc[config.truncation - 1] = builder.one

    for row in range(config.row_skip, width):
        keep_from = max(config.truncation - row, 0)
        if keep_from >= width:
            continue
        carry = builder.zero
        for position in range(row + keep_from, result_width):
            if config.segment and position % config.segment == 0:
                carry = builder.zero
            # A carry out of this position is consumed only when the
            # next position exists and is not past a segment boundary;
            # otherwise build the sum alone so no gate dangles (the
            # dropped carries are provably 0 or deliberately discarded,
            # exactly as in ``_segmented_add``).
            carry_used = position + 1 < result_width and not (
                config.segment and (position + 1) % config.segment == 0)
            column = position - row
            if 0 <= column < width:
                term = builder.and2(a[row], b[column])
                if carry_used:
                    acc[position], carry = builder.full_adder(
                        acc[position], term, carry)
                else:
                    acc[position] = builder.xor2(
                        builder.xor2(acc[position], term), carry)
                    carry = builder.zero
            elif carry != builder.zero:
                if carry_used:
                    acc[position], carry = builder.half_adder(acc[position], carry)
                else:
                    acc[position] = builder.xor2(acc[position], carry)
                    carry = builder.zero
            else:
                break

    builder.output_bus("S", acc)
    return builder.build()


def exact_multiplier_netlist(width: int) -> Netlist:
    """The full (untruncated, unsegmented) array multiplier."""
    config = MultiplierConfig(width=width)
    netlist = multiplier_netlist(config)
    netlist.name = f"mul{width}_exact"
    return netlist


# --------------------------------------------------------------------- #
# Design-space enumeration
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MultiplierSpace:
    """The legal multiplier quadruple space of one width, under constraints.

    Duck-types :class:`~repro.explore.space.DesignSpace` — the explore
    CLI and the adaptive search consume either through the same API.
    The exact configuration ``(0, 0, 0, 0)`` is excluded (it is the
    baseline the sweep layer appends explicitly).
    """

    width: int = 8
    max_truncation: Optional[int] = None
    max_row_skip: Optional[int] = None

    #: Registry id resolving this space's family (class attribute).
    family = "multiplier"

    def __post_init__(self) -> None:
        check_positive_int("width", self.width)
        if self.width > MAX_MULTIPLIER_WIDTH:
            raise ConfigurationError(
                f"multiplier width is limited to {MAX_MULTIPLIER_WIDTH} bits so "
                f"vectorised products fit in uint64, got {self.width}")
        for name in ("max_truncation", "max_row_skip"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")

    # ------------------------------------------------------------------ #
    def _truncation_limit(self) -> int:
        if self.max_truncation is None:
            return self.width
        return min(self.width, self.max_truncation)

    def _row_skip_limit(self) -> int:
        if self.max_row_skip is None:
            return self.width // 2
        return min(self.width - 1, self.max_row_skip)

    def iter_quadruples(self) -> Iterator[Quadruple]:
        """Lazily yield every legal quadruple in sorted order."""
        segments = legal_segment_sizes(self.width)
        for truncation in range(self._truncation_limit() + 1):
            for segment in segments:
                for correction in (0, 1):
                    if correction and truncation < 2:
                        continue
                    for row_skip in range(self._row_skip_limit() + 1):
                        quadruple = (truncation, segment, correction, row_skip)
                        if quadruple == (0, 0, 0, 0):
                            continue
                        yield quadruple

    def quadruples(self) -> List[Quadruple]:
        """Every legal quadruple of the space, sorted ascending."""
        return list(self.iter_quadruples())

    @property
    def size(self) -> int:
        """Number of legal quadruples in the space."""
        return sum(1 for _ in self.iter_quadruples())

    def select(self, max_designs: Optional[int] = None) -> List[Quadruple]:
        """At most ``max_designs`` quadruples, evenly strided over the space.

        The same deterministic stride as
        :meth:`~repro.explore.space.DesignSpace.select`, so cached sweep
        results stay reachable across runs.
        """
        quadruples = self.quadruples()
        if max_designs is None or max_designs >= len(quadruples):
            return quadruples
        check_positive_int("max_designs", max_designs)
        return [quadruples[(index * len(quadruples)) // max_designs]
                for index in range(max_designs)]

    def entries(self, max_designs: Optional[int] = None,
                include_exact: bool = True) -> List[MultiplierEntry]:
        """Design entries of the (subsampled) space, plus the exact baseline."""
        entries = [multiplier_entry(quadruple, width=self.width)
                   for quadruple in self.select(max_designs)]
        if include_exact:
            entries.append(exact_multiplier_entry(self.width))
        return entries

    def describe(self) -> str:
        """One-line human-readable summary of the space."""
        constraints = []
        for name in ("max_truncation", "max_row_skip"):
            value = getattr(self, name)
            if value is not None:
                constraints.append(f"{name}={value}")
        suffix = f" ({', '.join(constraints)})" if constraints else ""
        return (f"{self.size} legal multiplier quadruples at width {self.width}, "
                f"segments {list(legal_segment_sizes(self.width))}{suffix}")


#: Names of the multiplier's surrogate features, in column order.
MULTIPLIER_SURROGATE_FEATURES = (
    "truncation", "segment", "correction", "row_skip", "dropped_terms",
    "segment_count", "provably_exact", "truncation_ratio", "segment_ratio",
    "row_skip_ratio", "correction_weight",
)


def multiplier_surrogate_features(quadruples: np.ndarray, width: int) -> np.ndarray:
    """Surrogate feature matrix of multiplier quadruple rows.

    Vectorised over a ``(candidates, 4)`` array: the raw knobs, the
    analytic count of dropped partial-product terms, the number of carry
    segments, the exactness guarantee and scale-free ratios comparable
    across widths.
    """
    quadruples = np.asarray(quadruples, dtype=np.float64).reshape(-1, 4)
    truncation, segment, correction, row_skip = quadruples.T
    # Terms with i + j < t form a triangle (clipped to the operand
    # width); skipped rows drop `width` terms each, minus the overlap
    # already truncated.
    tri = truncation * (truncation + 1) / 2.0
    skip_terms = row_skip * float(width)
    overlap = np.minimum(row_skip, truncation) * (
        np.minimum(row_skip, truncation) + 1) / 2.0
    dropped = tri + skip_terms - overlap
    out_bits = 2.0 * width
    segment_count = np.where(segment > 0, out_bits / np.maximum(segment, 1.0), 1.0)
    provably_exact = ((truncation == 0) & (segment == 0)
                      & (row_skip == 0)).astype(np.float64)
    correction_weight = np.where(correction > 0, 2.0 ** (truncation - 1), 0.0)
    return np.column_stack([
        truncation, segment, correction, row_skip, dropped,
        segment_count, provably_exact,
        truncation / float(width), segment / out_bits,
        row_skip / float(width), correction_weight,
    ])


# --------------------------------------------------------------------- #
# The family object
# --------------------------------------------------------------------- #
class MultiplierFamily(OperatorFamily):
    """Truncated/segmented array multipliers behind the registry protocol."""

    family_id = "multiplier"
    max_width = MAX_MULTIPLIER_WIDTH
    default_width = 8

    # ------------------------------------------------------------------ #
    def exact_entry(self, width: int) -> MultiplierEntry:
        return exact_multiplier_entry(width)

    def design_entry(self, quadruple: Sequence[int], width: int) -> MultiplierEntry:
        return multiplier_entry(quadruple, width=width)

    def quadruple_of(self, entry: MultiplierEntry) -> Optional[Quadruple]:
        return None if entry.is_exact else entry.config.quadruple

    def is_provably_exact(self, entry: MultiplierEntry) -> bool:
        return True if entry.is_exact else entry.config.is_provably_exact

    # ------------------------------------------------------------------ #
    def design_spec(self, entry: MultiplierEntry, width: int,
                    options: SynthesisOptions) -> Netlist:
        if entry.is_exact:
            return exact_multiplier_netlist(width)
        if entry.config.width != width:
            raise ConfigurationError(
                f"multiplier entry {entry.name} is {entry.config.width}-bit but the "
                f"job is {width}-bit")
        return multiplier_netlist(entry.config)

    def exact_words(self, width: int, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ExactMultiplier(width).multiply_many(a, b)

    def golden_words(self, entry: MultiplierEntry, width: int, a: np.ndarray,
                     b: np.ndarray, collect_stats: bool = False,
                     diamond: Optional[np.ndarray] = None):
        # The multiplier has no structural fault statistics model;
        # ``collect_stats`` requests simply return no stats.
        if entry.is_exact:
            base = diamond if diamond is not None else self.exact_words(width, a, b)
            return base.copy(), None
        return ApproximateArrayMultiplier(entry.config).multiply_many(a, b), None

    def result_width(self, width: int) -> int:
        """The product bus is ``2 * width`` bits."""
        return 2 * width

    def safe_period(self, width: int) -> float:
        """Array-multiplier critical paths grow linearly in the width.

        0.12 ns per operand bit sits just above the exact width-8
        array's measured 0.887 ns critical path, so the zero-CPR anchor
        is error-free while a 15 % reduction already overclocks the
        exact baseline — the regime the study is about.
        """
        return 0.12e-9 * width

    # ------------------------------------------------------------------ #
    def design_space(self, width: int, **constraints) -> MultiplierSpace:
        return MultiplierSpace(width=width, **constraints)

    surrogate_feature_names = MULTIPLIER_SURROGATE_FEATURES

    def surrogate_features(self, quadruples: np.ndarray, width: int) -> np.ndarray:
        return multiplier_surrogate_features(quadruples, width)
