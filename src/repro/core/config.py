"""Configuration of Inexact Speculative Adders.

An ISA is described in the paper by a quadruple of bit-widths
``(block size, SPEC size, correction, reduction)`` applied to a given
adder width.  The paper's designs are all 32-bit adders with uniformly
sized blocks (2x16, 4x8 or 8x4 bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative_int, check_positive_int


@dataclass(frozen=True)
class ISAConfig:
    """Static description of an Inexact Speculative Adder.

    Parameters
    ----------
    width:
        Total adder width in bits (operand width).  The result is
        ``width + 1`` bits wide (the final carry out is kept).
    block_size:
        Width of each speculative segment.  Must divide ``width``.
    spec_size:
        Number of operand bits below each block boundary used by the
        carry speculator.  ``0`` speculates a constant
        ``speculate_on_propagate`` carry.
    correction:
        Number of LSBs of the local sum the compensation block may
        increment/decrement to absorb a wrong speculated carry.
    reduction:
        Number of MSBs of the *preceding* block sum that are saturated
        (error balancing) when correction is impossible.
    speculate_on_propagate:
        Carry value guessed when the speculation window is fully
        propagating (or when ``spec_size`` is 0).  The paper's designs
        guess 0.
    """

    width: int = 32
    block_size: int = 8
    spec_size: int = 0
    correction: int = 0
    reduction: int = 0
    speculate_on_propagate: int = 0

    def __post_init__(self) -> None:
        check_positive_int("width", self.width)
        check_positive_int("block_size", self.block_size)
        check_non_negative_int("spec_size", self.spec_size)
        check_non_negative_int("correction", self.correction)
        check_non_negative_int("reduction", self.reduction)
        if self.width % self.block_size != 0:
            raise ConfigurationError(
                f"block_size {self.block_size} must divide adder width {self.width}")
        if self.block_size > self.width:
            raise ConfigurationError(
                f"block_size {self.block_size} cannot exceed width {self.width}")
        if self.spec_size > self.block_size:
            raise ConfigurationError(
                f"spec_size {self.spec_size} cannot exceed block_size {self.block_size}: "
                "the speculation window reads bits of the preceding block only")
        if self.correction > self.block_size:
            raise ConfigurationError(
                f"correction {self.correction} cannot exceed block_size {self.block_size}")
        if self.reduction > self.block_size:
            raise ConfigurationError(
                f"reduction {self.reduction} cannot exceed block_size {self.block_size}")
        if self.speculate_on_propagate not in (0, 1):
            raise ConfigurationError(
                f"speculate_on_propagate must be 0 or 1, got {self.speculate_on_propagate}")

    # ------------------------------------------------------------------ #
    # Derived properties
    # ------------------------------------------------------------------ #
    @property
    def num_blocks(self) -> int:
        """Number of speculative segments (parallel carry paths)."""
        return self.width // self.block_size

    @property
    def block_offsets(self) -> Tuple[int, ...]:
        """Bit offset of the LSB of each block, LSB block first."""
        return tuple(range(0, self.width, self.block_size))

    @property
    def is_exact(self) -> bool:
        """True when the configuration degenerates into an exact adder.

        A single block covering the whole width has no speculation
        boundary and therefore no structural error source.
        """
        return self.num_blocks == 1

    @property
    def is_provably_exact(self) -> bool:
        """True when the architecture can never produce a structural error.

        The speculation window of block ``k`` reads the ``spec_size``
        operand bits below its boundary, i.e. bits
        ``[k*block_size - spec_size, k*block_size)``; the prediction is
        guaranteed correct for *all* operand values only when every
        window reaches down to the known carry-in at bit 0, which with
        ``spec_size <= block_size`` restricts the guarantee to two-block
        configurations with a full-block window (a carry-select-style
        adder).  Every other multi-block configuration has inputs that
        defeat it — whatever its *measured* error on a finite workload.
        (The guarantee assumes the adder-level carry-in is tied to the
        ``speculate_on_propagate`` constant — the characterization
        pipeline ties it to 0, the paper's guess.)
        """
        return self.is_exact or (self.num_blocks <= 2
                                 and self.spec_size == self.block_size
                                 and self.speculate_on_propagate == 0)

    @property
    def quadruple(self) -> Tuple[int, int, int, int]:
        """The paper's ``(block, spec, correction, reduction)`` notation."""
        return (self.block_size, self.spec_size, self.correction, self.reduction)

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``"(8,0,0,4)"`` as used in the paper's figures."""
        return "({},{},{},{})".format(*self.quadruple)

    @property
    def label(self) -> str:
        """Identifier-safe name, e.g. ``"isa32_8_0_0_4"``."""
        return "isa{}_{}_{}_{}_{}".format(self.width, *self.quadruple)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_quadruple(cls, quadruple: Tuple[int, int, int, int], width: int = 32) -> "ISAConfig":
        """Build a config from the paper's quadruple notation."""
        if len(quadruple) != 4:
            raise ConfigurationError(
                f"quadruple must have 4 entries (block, spec, correction, reduction), got {quadruple!r}")
        block, spec, correction, reduction = quadruple
        return cls(width=width, block_size=block, spec_size=spec,
                   correction=correction, reduction=reduction)

    @classmethod
    def exact(cls, width: int = 32) -> "ISAConfig":
        """A degenerate single-block configuration equivalent to an exact adder."""
        return cls(width=width, block_size=width, spec_size=0, correction=0, reduction=0)

    def with_width(self, width: int) -> "ISAConfig":
        """Return a copy of this configuration scaled to another adder width."""
        return replace(self, width=width)

    def describe(self) -> str:
        """Multi-line human-readable description used by reports and examples."""
        lines = [
            f"ISA configuration {self.name} ({self.width}-bit adder)",
            f"  blocks             : {self.num_blocks} x {self.block_size} bits",
            f"  carry speculation  : {self.spec_size} bits"
            + (" (constant guess)" if self.spec_size == 0 else ""),
            f"  error correction   : {self.correction} LSBs of the local sum",
            f"  error reduction    : {self.reduction} MSBs of the preceding sum",
            f"  propagate guess    : {self.speculate_on_propagate}",
        ]
        return "\n".join(lines)
