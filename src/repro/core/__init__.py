"""Behavioural models of the paper's adders and the error-combination flow.

This package contains the paper's primary contribution at behavioural
level:

* :class:`~repro.core.config.ISAConfig` — the (block size, SPEC size,
  correction, reduction) quadruple describing an Inexact Speculative
  Adder (ISA).
* :class:`~repro.core.isa.InexactSpeculativeAdder` — scalar and
  vectorised behavioural model producing the *golden* output (structural
  errors only).
* :class:`~repro.core.exact.ExactAdder` — the *diamond* reference.
* :mod:`~repro.core.combination` — the diamond/gold/silver error
  combination methodology of Section IV of the paper.
"""

from repro.core.config import ISAConfig
from repro.core.exact import ExactAdder
from repro.core.isa import BlockRecord, InexactSpeculativeAdder, ISAAdditionResult, StructuralFaultStats
from repro.core.combination import CombinedErrors, combine_errors, relative_errors

__all__ = [
    "ISAConfig",
    "ExactAdder",
    "InexactSpeculativeAdder",
    "ISAAdditionResult",
    "BlockRecord",
    "StructuralFaultStats",
    "CombinedErrors",
    "combine_errors",
    "relative_errors",
]
