"""Exact (diamond) adder reference model."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bitops import mask
from repro.utils.validation import check_positive_int

IntOrArray = Union[int, np.ndarray]


class ExactAdder:
    """Bit-exact unsigned adder producing a ``width + 1``-bit result.

    This is the *diamond* reference of the paper's error-combination
    methodology: the value an ideal, error-free adder would output.
    """

    def __init__(self, width: int = 32) -> None:
        self.width = check_positive_int("width", width)
        if width > 62:
            raise ConfigurationError(
                "ExactAdder supports widths up to 62 bits so vectorised sums fit in uint64")

    def add(self, a: int, b: int, cin: int = 0) -> int:
        """Exact sum of two ``width``-bit unsigned operands plus carry in."""
        self._check_operand(a, "a")
        self._check_operand(b, "b")
        if cin not in (0, 1):
            raise ConfigurationError(f"cin must be 0 or 1, got {cin}")
        return int(a) + int(b) + cin

    def add_many(self, a: np.ndarray, b: np.ndarray, cin: int = 0) -> np.ndarray:
        """Vectorised exact sums of ``uint64`` operand arrays."""
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        if a.shape != b.shape:
            raise ConfigurationError(f"operand shapes differ: {a.shape} vs {b.shape}")
        limit = np.uint64(mask(self.width))
        if a.size and (a.max() > limit or b.max() > limit):
            raise ConfigurationError(f"operands exceed {self.width}-bit range")
        if cin not in (0, 1):
            raise ConfigurationError(f"cin must be 0 or 1, got {cin}")
        return a + b + np.uint64(cin)

    @property
    def result_width(self) -> int:
        """Width of the result including the final carry out."""
        return self.width + 1

    @property
    def name(self) -> str:
        """Display name used in reports and figures (mirrors the paper's "exact")."""
        return "exact"

    def _check_operand(self, value: int, label: str) -> None:
        if not 0 <= int(value) <= mask(self.width):
            raise ConfigurationError(
                f"operand {label}={value!r} outside the unsigned {self.width}-bit range")
