"""Behavioural model of the Inexact Speculative Adder (ISA).

Two implementations of the same architecture live here:

* a **scalar reference model** (:meth:`InexactSpeculativeAdder.add` /
  :meth:`add_detailed`) that mirrors the block diagram of Fig. 1 of the
  paper block by block and exposes per-block diagnostics (speculated
  carry, fault, correction/reduction applied, residual error), and
* a **vectorised model** (:meth:`add_many`) operating on ``uint64`` NumPy
  arrays, used to characterise structural errors over millions of random
  vectors as in the paper's evaluation.

The scalar and vectorised paths are checked against each other by the
test suite (including property-based tests), and the gate-level netlist
produced by :mod:`repro.synth.isa_synth` is checked against this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.compensation import compensate
from repro.core.config import ISAConfig
from repro.core.speculation import speculate_carry
from repro.exceptions import ConfigurationError
from repro.utils.bitops import bit_field, mask


@dataclass(frozen=True)
class BlockRecord:
    """Diagnostics for one speculative segment of one addition."""

    index: int
    offset: int
    speculated_carry: int
    hardware_carry_in: int
    fault: bool
    direction: int
    corrected: bool
    reduced: bool
    local_sum: int
    carry_out: int
    residual_error: int

    @property
    def error_bit_position(self) -> Optional[int]:
        """Bit-position equivalent of the residual error (Fig. 10), or None."""
        if self.residual_error == 0:
            return None
        return abs(self.residual_error).bit_length() - 1


@dataclass(frozen=True)
class ISAAdditionResult:
    """Full result of a single detailed ISA addition."""

    value: int
    exact: int
    blocks: Tuple[BlockRecord, ...]

    @property
    def structural_error(self) -> int:
        """Signed structural error ``ygold - ydiamond``."""
        return self.value - self.exact

    @property
    def fault_count(self) -> int:
        """Number of blocks whose speculated carry was wrong."""
        return sum(1 for blk in self.blocks if blk.fault)

    @property
    def error_positions(self) -> Tuple[int, ...]:
        """Bit-position equivalents of all non-zero per-block residual errors."""
        return tuple(blk.error_bit_position for blk in self.blocks
                     if blk.error_bit_position is not None)


@dataclass
class StructuralFaultStats:
    """Aggregated structural-fault statistics over a batch of additions.

    ``position_counts[p]`` counts, over the whole batch, the additions in
    which at least one block left a residual error whose bit-position
    equivalent is ``p``.  Dividing by ``cycles`` gives the *internal error
    rate* plotted in Fig. 10 of the paper.
    """

    width: int
    cycles: int
    fault_counts: np.ndarray
    corrected_counts: np.ndarray
    reduced_counts: np.ndarray
    position_counts: np.ndarray = field(default=None)

    @property
    def error_rate_by_position(self) -> np.ndarray:
        """Internal structural error rate per bit-position equivalent."""
        if self.cycles == 0:
            return np.zeros(self.width + 1)
        return self.position_counts / float(self.cycles)

    @property
    def total_fault_rate(self) -> float:
        """Mean number of speculation faults per addition."""
        if self.cycles == 0:
            return 0.0
        return float(self.fault_counts.sum()) / self.cycles


class InexactSpeculativeAdder:
    """Behavioural Inexact Speculative Adder (golden model).

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.ISAConfig` describing block size,
        speculation window, correction and reduction widths.
    """

    def __init__(self, config: ISAConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # Scalar reference model
    # ------------------------------------------------------------------ #
    def add(self, a: int, b: int, cin: int = 0) -> int:
        """Golden (structurally erroneous) sum of two unsigned operands."""
        return self.add_detailed(a, b, cin).value

    def add_detailed(self, a: int, b: int, cin: int = 0) -> ISAAdditionResult:
        """Golden sum plus per-block diagnostics for one addition."""
        cfg = self.config
        self._check_operand(a, "a")
        self._check_operand(b, "b")
        if cin not in (0, 1):
            raise ConfigurationError(f"cin must be 0 or 1, got {cin}")

        block_mask = mask(cfg.block_size)
        sums: List[int] = []
        records: List[BlockRecord] = []
        previous_cout = cin

        for index, offset in enumerate(cfg.block_offsets):
            a_blk = bit_field(a, offset, cfg.block_size)
            b_blk = bit_field(b, offset, cfg.block_size)
            if index == 0:
                spec = cin
            else:
                spec = int(speculate_carry(a, b, offset, cfg.spec_size,
                                           guess=cfg.speculate_on_propagate))
            raw = a_blk + b_blk + spec
            local_sum = raw & block_mask
            carry_out = raw >> cfg.block_size

            fault = index > 0 and spec != previous_cout
            direction = 0
            corrected = False
            reduced = False
            residual = 0
            if fault:
                direction = +1 if previous_cout > spec else -1
                outcome = compensate(
                    local_sum=local_sum,
                    previous_sum=sums[index - 1],
                    block_size=cfg.block_size,
                    correction=cfg.correction,
                    reduction=cfg.reduction,
                    direction=direction,
                    block_offset=offset,
                )
                corrected = outcome.corrected
                reduced = outcome.reduced
                local_sum = outcome.local_sum
                sums[index - 1] = outcome.previous_sum
                residual = outcome.residual_error

            sums.append(local_sum)
            records.append(BlockRecord(
                index=index, offset=offset, speculated_carry=spec,
                hardware_carry_in=previous_cout if index > 0 else cin,
                fault=fault, direction=direction, corrected=corrected,
                reduced=reduced, local_sum=local_sum, carry_out=carry_out,
                residual_error=residual))
            previous_cout = carry_out

        value = 0
        for offset, local_sum in zip(cfg.block_offsets, sums):
            value |= local_sum << offset
        value |= previous_cout << cfg.width

        return ISAAdditionResult(value=value, exact=int(a) + int(b) + cin,
                                 blocks=tuple(records))

    # ------------------------------------------------------------------ #
    # Vectorised model
    # ------------------------------------------------------------------ #
    def add_many(self, a: np.ndarray, b: np.ndarray, cin: int = 0) -> np.ndarray:
        """Golden sums for ``uint64`` operand arrays (vectorised)."""
        result, _ = self._add_many_impl(a, b, cin, collect_stats=False)
        return result

    def add_many_with_stats(self, a: np.ndarray, b: np.ndarray,
                            cin: int = 0) -> Tuple[np.ndarray, StructuralFaultStats]:
        """Vectorised golden sums plus aggregated structural-fault statistics."""
        result, stats = self._add_many_impl(a, b, cin, collect_stats=True)
        return result, stats

    def _add_many_impl(self, a: np.ndarray, b: np.ndarray, cin: int,
                       collect_stats: bool) -> Tuple[np.ndarray, Optional[StructuralFaultStats]]:
        cfg = self.config
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        if a.shape != b.shape:
            raise ConfigurationError(f"operand shapes differ: {a.shape} vs {b.shape}")
        if a.size and (int(a.max()) > mask(cfg.width) or int(b.max()) > mask(cfg.width)):
            raise ConfigurationError(f"operands exceed the unsigned {cfg.width}-bit range")
        if cin not in (0, 1):
            raise ConfigurationError(f"cin must be 0 or 1, got {cin}")

        n = a.shape[0] if a.ndim else 1
        block_mask = np.uint64(mask(cfg.block_size))
        corr_mask = np.uint64(mask(cfg.correction)) if cfg.correction else None
        one = np.uint64(1)

        sums = np.zeros((cfg.num_blocks,) + a.shape, dtype=np.uint64)
        previous_cout = np.full(a.shape, np.uint64(cin), dtype=np.uint64)

        num_positions = cfg.width + 1
        position_counts = np.zeros(num_positions, dtype=np.int64)
        fault_counts = np.zeros(cfg.num_blocks, dtype=np.int64)
        corrected_counts = np.zeros(cfg.num_blocks, dtype=np.int64)
        reduced_counts = np.zeros(cfg.num_blocks, dtype=np.int64)

        for index, offset in enumerate(cfg.block_offsets):
            a_blk = (a >> np.uint64(offset)) & block_mask
            b_blk = (b >> np.uint64(offset)) & block_mask
            if index == 0:
                spec = np.full(a.shape, np.uint64(cin), dtype=np.uint64)
            else:
                spec = speculate_carry(a, b, offset, cfg.spec_size,
                                       guess=cfg.speculate_on_propagate).astype(np.uint64)
            raw = a_blk + b_blk + spec
            local_sum = raw & block_mask
            carry_out = raw >> np.uint64(cfg.block_size)

            if index > 0:
                fault = spec != previous_cout
                # direction: +1 when the hardware carry is 1 but 0 was speculated
                positive = fault & (previous_cout > spec)
                negative = fault & (previous_cout < spec)

                corrected = np.zeros(a.shape, dtype=bool)
                if cfg.correction > 0:
                    lsb_field = local_sum & corr_mask
                    can_inc = positive & (lsb_field != corr_mask)
                    can_dec = negative & (lsb_field != np.uint64(0))
                    local_sum = np.where(can_inc, local_sum + one, local_sum)
                    local_sum = np.where(can_dec, local_sum - one, local_sum)
                    corrected = can_inc | can_dec

                need_balance = fault & ~corrected
                residual = np.zeros(a.shape, dtype=np.int64)
                if cfg.reduction > 0:
                    red_offset = cfg.block_size - cfg.reduction
                    red_mask = np.uint64(mask(cfg.reduction))
                    prev = sums[index - 1]
                    old_field = (prev >> np.uint64(red_offset)) & red_mask
                    new_field = np.where(positive, red_mask, np.uint64(0))
                    new_prev = (prev & ~(red_mask << np.uint64(red_offset))) | \
                        (new_field << np.uint64(red_offset))
                    sums[index - 1] = np.where(need_balance, new_prev, prev)
                    if collect_stats:
                        delta = (new_field.astype(np.int64) - old_field.astype(np.int64))
                        delta <<= (offset - cfg.block_size + red_offset)
                        residual = np.where(need_balance, delta, 0)
                if collect_stats:
                    base = np.zeros(a.shape, dtype=np.int64)
                    base = np.where(need_balance & positive, -(1 << offset), base)
                    base = np.where(need_balance & negative, (1 << offset), base)
                    residual = residual + base
                    nonzero = residual != 0
                    if np.any(nonzero):
                        positions = np.floor(
                            np.log2(np.abs(residual[nonzero]).astype(np.float64))).astype(np.int64)
                        position_counts += np.bincount(positions, minlength=num_positions)[:num_positions]
                    fault_counts[index] += int(np.count_nonzero(fault))
                    corrected_counts[index] += int(np.count_nonzero(corrected))
                    reduced_counts[index] += int(np.count_nonzero(need_balance))

            sums[index] = local_sum
            previous_cout = carry_out

        result = np.zeros(a.shape, dtype=np.uint64)
        for index, offset in enumerate(cfg.block_offsets):
            result |= sums[index] << np.uint64(offset)
        result |= previous_cout << np.uint64(cfg.width)

        stats = None
        if collect_stats:
            stats = StructuralFaultStats(
                width=cfg.width, cycles=int(n),
                fault_counts=fault_counts,
                corrected_counts=corrected_counts,
                reduced_counts=reduced_counts,
                position_counts=position_counts)
        return result, stats

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Display name matching the paper's figures, e.g. ``"(8,0,0,4)"``."""
        return self.config.name

    @property
    def result_width(self) -> int:
        """Width of the result including the final carry out."""
        return self.config.width + 1

    def worst_case_error_bound(self) -> int:
        """Conservative upper bound on the structural error of one addition.

        Each of the ``num_blocks - 1`` speculation boundaries can at worst
        drop (or, with a propagate guess of 1, inject) a full carry at its
        offset, i.e. ``2**offset``.  Error reduction lowers the *typical*
        residual (and the relative error) but cannot help when the
        preceding sum's MSBs are already saturated, so the bound does not
        depend on the compensation parameters.
        """
        cfg = self.config
        bound = 0
        for offset in cfg.block_offsets[1:]:
            bound += 1 << offset
        return bound

    def _check_operand(self, value: int, label: str) -> None:
        if not 0 <= int(value) <= mask(self.config.width):
            raise ConfigurationError(
                f"operand {label}={value!r} outside the unsigned {self.config.width}-bit range")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InexactSpeculativeAdder({self.config.name}, width={self.config.width})"
