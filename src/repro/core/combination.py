"""Error-combination methodology (Section IV of the paper).

Three output values are distinguished for every input vector:

* ``ydiamond`` — ideal output of an exact addition,
* ``ygold`` — expected output of the implemented (inexact) circuit, i.e.
  containing the *structural* errors only,
* ``ysilver`` — output of the over-clocked circuit, containing both
  structural and *timing* errors.

Signed arithmetic and relative errors are derived from these values, and
the joint error is their sum; errors in the same direction add up while
errors in opposite directions compensate (Figs. 4 and 5 of the paper).
The :func:`combination_flow` helper mirrors the pseudo-code of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import AnalysisError

ArrayLike = Union[Sequence[int], np.ndarray]


def _as_signed(values: ArrayLike) -> np.ndarray:
    """Convert unsigned outputs to signed 64-bit integers for error arithmetic."""
    arr = np.asarray(values)
    if arr.dtype == np.uint64:
        if arr.size and int(arr.max()) > np.iinfo(np.int64).max:
            raise AnalysisError("output values exceed the signed 64-bit range")
        return arr.astype(np.int64)
    return arr.astype(np.int64)


def _safe_denominator(ydiamond: np.ndarray) -> np.ndarray:
    """Denominator for relative errors; zero exact results are replaced by one.

    With 32-bit unsigned random operands the exact result is zero only for
    the all-zero input, so the substitution has no statistical effect; it
    simply keeps the relative error finite.
    """
    return np.where(ydiamond == 0, np.int64(1), ydiamond).astype(np.float64)


@dataclass(frozen=True)
class CombinedErrors:
    """Signed error decomposition of a batch of additions.

    All arrays have one entry per input vector.  Relative errors are both
    normalised by the exact (diamond) result, as required for the two
    contributions to be additive.
    """

    ydiamond: np.ndarray
    ygold: np.ndarray
    ysilver: np.ndarray
    e_struct: np.ndarray
    e_timing: np.ndarray
    e_joint: np.ndarray
    re_struct: np.ndarray
    re_timing: np.ndarray
    re_joint: np.ndarray

    @property
    def cycles(self) -> int:
        """Number of input vectors in the batch."""
        return int(self.ydiamond.shape[0])

    def mean_absolute_joint_error(self) -> float:
        """Mean of ``|Ejoint|`` over the batch (output of the Fig. 6 flow)."""
        return float(np.mean(np.abs(self.e_joint)))

    def rms_relative_errors(self) -> Dict[str, float]:
        """RMS of the structural, timing and joint relative errors (fractions)."""
        return {
            "structural": float(np.sqrt(np.mean(self.re_struct ** 2))),
            "timing": float(np.sqrt(np.mean(self.re_timing ** 2))),
            "joint": float(np.sqrt(np.mean(self.re_joint ** 2))),
        }

    def compensation_rate(self) -> float:
        """Fraction of cycles where structural and timing errors have opposite signs.

        Quantifies how often the two contributions partially cancel
        (Fig. 5 of the paper) among cycles where both are non-zero.
        """
        both = (self.e_struct != 0) & (self.e_timing != 0)
        if not np.any(both):
            return 0.0
        opposite = both & (np.sign(self.e_struct) != np.sign(self.e_timing))
        return float(np.count_nonzero(opposite)) / float(np.count_nonzero(both))


def combine_errors(ydiamond: ArrayLike, ygold: ArrayLike, ysilver: ArrayLike) -> CombinedErrors:
    """Compute structural, timing and joint errors from the three output sets."""
    ydiamond = _as_signed(ydiamond)
    ygold = _as_signed(ygold)
    ysilver = _as_signed(ysilver)
    if not (ydiamond.shape == ygold.shape == ysilver.shape):
        raise AnalysisError(
            f"output shapes differ: diamond {ydiamond.shape}, gold {ygold.shape}, "
            f"silver {ysilver.shape}")
    e_struct = ygold - ydiamond
    e_timing = ysilver - ygold
    e_joint = ysilver - ydiamond
    denom = _safe_denominator(ydiamond)
    re_struct = e_struct / denom
    re_timing = e_timing / denom
    re_joint = e_joint / denom
    return CombinedErrors(
        ydiamond=ydiamond, ygold=ygold, ysilver=ysilver,
        e_struct=e_struct, e_timing=e_timing, e_joint=e_joint,
        re_struct=re_struct, re_timing=re_timing, re_joint=re_joint)


def relative_errors(ydiamond: ArrayLike, y: ArrayLike) -> np.ndarray:
    """Signed relative error of ``y`` with respect to the exact result."""
    ydiamond = _as_signed(ydiamond)
    y = _as_signed(y)
    if ydiamond.shape != y.shape:
        raise AnalysisError(f"output shapes differ: {ydiamond.shape} vs {y.shape}")
    return (y - ydiamond) / _safe_denominator(ydiamond)


SilverProvider = Callable[[object, float, np.ndarray, np.ndarray], np.ndarray]
GoldProvider = Callable[[object, np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CombinationFlowResult:
    """Output of the Fig. 6 combination flow for one (design, clock) pair."""

    design: object
    clock_period: float
    errors: CombinedErrors

    @property
    def mean_absolute_joint_error(self) -> float:
        """Mean of ``|Ejoint|`` over the input set."""
        return self.errors.mean_absolute_joint_error()


def combination_flow(designs: Iterable[object],
                     a: np.ndarray,
                     b: np.ndarray,
                     clock_periods: Sequence[float],
                     gold_provider: GoldProvider,
                     silver_provider: SilverProvider,
                     exact_provider: Callable[[np.ndarray, np.ndarray], np.ndarray],
                     ) -> List[CombinationFlowResult]:
    """Run the error-combination flow of Fig. 6 of the paper.

    For every design and clock period, the flow computes the diamond, gold
    and silver outputs for the whole input set, derives structural, timing
    and joint errors, and returns one :class:`CombinationFlowResult` per
    (design, clock) pair, in iteration order.

    Parameters
    ----------
    designs:
        Opaque design handles, passed through to the providers.
    a, b:
        Operand arrays (one addition per entry).
    clock_periods:
        Over-clocked periods to evaluate (seconds or any consistent unit).
    gold_provider:
        ``gold_provider(design, a, b)`` returning the golden outputs.
    silver_provider:
        ``silver_provider(design, clk, a, b)`` returning the over-clocked
        outputs.
    exact_provider:
        ``exact_provider(a, b)`` returning the exact outputs.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    ydiamond = exact_provider(a, b)
    results: List[CombinationFlowResult] = []
    for design in designs:
        ygold = gold_provider(design, a, b)
        for clk in clock_periods:
            ysilver = silver_provider(design, clk, a, b)
            errors = combine_errors(ydiamond, ygold, ysilver)
            results.append(CombinationFlowResult(design=design, clock_period=clk, errors=errors))
    return results
