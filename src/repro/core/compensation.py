"""Error-compensation primitives of the ISA COMP block.

Two mechanisms are modelled, exactly as described in Section II-B of the
paper:

* **Correction** — when the speculated carry entering a block turns out
  to be wrong, the COMP increments (missing carry) or decrements (extra
  carry) a field of ``correction`` LSBs of that block's local sum.  The
  correction is only possible when the field does not overflow/underflow,
  i.e. when the field is not fully propagating; in that case the
  correction restores the exact local sum.
* **Reduction (balancing)** — when correction is impossible, the
  ``reduction`` MSBs of the *preceding* block sum are saturated towards
  the direction of the carry error, which bounds the residual arithmetic
  error by ``2**(boundary - reduction)`` instead of ``2**boundary``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ConfigurationError
from repro.utils.bitops import bit_field, mask, set_bit_field


@dataclass(frozen=True)
class CompensationOutcome:
    """Result of compensating a single speculation fault.

    Attributes
    ----------
    corrected:
        True when the LSB correction absorbed the fault exactly.
    reduced:
        True when error reduction (balancing) was applied instead.
    local_sum:
        The (possibly corrected) local sum of the faulty block.
    previous_sum:
        The (possibly balanced) sum of the preceding block.
    residual_error:
        Signed arithmetic error contributed by this fault after
        compensation, expressed at absolute bit positions (i.e. already
        scaled by the block offset).  Zero when fully corrected.
    """

    corrected: bool
    reduced: bool
    local_sum: int
    previous_sum: int
    residual_error: int


def can_correct(local_sum: int, correction: int, direction: int) -> bool:
    """Whether a ``direction`` (+1/-1) carry error can be absorbed by the LSB field."""
    if correction <= 0:
        return False
    field = bit_field(local_sum, 0, correction)
    if direction > 0:
        return field != mask(correction)
    if direction < 0:
        return field != 0
    raise ConfigurationError("direction must be +1 or -1 for a speculation fault")


def apply_correction(local_sum: int, correction: int, direction: int) -> int:
    """Increment/decrement the ``correction``-bit LSB field of ``local_sum``.

    The caller must have checked :func:`can_correct`; because the field is
    not saturated, adding ``direction`` to the whole local sum is
    equivalent to adding it to the field only.
    """
    if not can_correct(local_sum, correction, direction):
        raise ConfigurationError("correction applied to a saturated LSB field")
    return local_sum + direction


def apply_reduction(previous_sum: int, block_size: int, reduction: int, direction: int) -> int:
    """Saturate the ``reduction`` MSBs of the preceding block sum.

    A missing carry (``direction`` +1) forces the field to all ones, an
    extra carry (−1) forces it to all zeros, pulling the overall result
    towards the exact value.
    """
    if reduction <= 0:
        return previous_sum
    if reduction > block_size:
        raise ConfigurationError(
            f"reduction {reduction} cannot exceed block_size {block_size}")
    offset = block_size - reduction
    field = mask(reduction) if direction > 0 else 0
    return set_bit_field(previous_sum, offset, reduction, field)


def compensate(local_sum: int, previous_sum: int, block_size: int, correction: int,
               reduction: int, direction: int, block_offset: int) -> CompensationOutcome:
    """Apply the full COMP policy to one speculation fault.

    Parameters
    ----------
    local_sum:
        Local sum of the faulty block (computed with the wrong carry).
    previous_sum:
        Sum of the preceding block (candidate for balancing).
    block_size, correction, reduction:
        The ISA configuration parameters.
    direction:
        +1 when the true carry is 1 but 0 was speculated, −1 for the
        opposite fault.
    block_offset:
        Absolute bit offset of the faulty block (used to express the
        residual error at its true weight).
    """
    if direction not in (+1, -1):
        raise ConfigurationError(f"direction must be +1 or -1, got {direction}")
    base_error = -direction * (1 << block_offset)
    if can_correct(local_sum, correction, direction):
        return CompensationOutcome(
            corrected=True, reduced=False,
            local_sum=apply_correction(local_sum, correction, direction),
            previous_sum=previous_sum, residual_error=0)
    if reduction > 0:
        new_previous = apply_reduction(previous_sum, block_size, reduction, direction)
        delta = (new_previous - previous_sum) << (block_offset - block_size)
        return CompensationOutcome(
            corrected=False, reduced=True, local_sum=local_sum,
            previous_sum=new_previous, residual_error=base_error + delta)
    return CompensationOutcome(
        corrected=False, reduced=False, local_sum=local_sum,
        previous_sum=previous_sum, residual_error=base_error)


def worst_case_residual(block_size: int, correction: int, reduction: int,
                        block_offset: int) -> Tuple[int, int]:
    """Bounds (min, max) of the residual error one fault can leave behind.

    Useful for property-based tests: with reduction ``r`` the residual of
    a missing carry lies in ``(-2**(offset - r + block?)...``.  Concretely
    a +1 fault leaves a residual in ``[-2**(offset - r_eff), 0]`` where
    ``r_eff`` is ``reduction`` when balancing applies and 0 otherwise.
    """
    if correction >= block_size:
        # A full-width correction field can only fail when the whole block
        # saturates, in which case balancing (if any) still applies.
        pass
    effective = reduction if reduction > 0 else 0
    magnitude = 1 << (block_offset - effective) if effective > 0 else 1 << block_offset
    return (-magnitude, magnitude)
