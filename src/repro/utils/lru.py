"""A small bounded least-recently-used mapping.

The runtime keeps several identity- or digest-keyed memo caches (interned
traces, expanded stimulus, clock-specialised simulators); they all want
the same policy — bounded size, reads refresh recency, oldest entry
evicted first.  This helper centralises that policy so capacity and
eviction live in one place.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class LRUDict(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry.

    Both :meth:`get` hits and :meth:`put` refresh an entry's recency.
    Not thread-safe, like every other in-process cache of the library.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._entries.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> V:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()


class IdentityMemo(Generic[V]):
    """Bounded memo keyed by the *identity* of one or more anchor objects.

    Entries are keyed by ``id()`` of the anchors (plus an optional
    hashable ``extra``) and hold strong references to them: a hit is
    only returned when every held anchor ``is`` the given one, so a
    recycled ``id`` can never alias a dead object's entry.  The strong
    references are also why callers should keep capacities small — an
    entry pins its anchors until evicted.
    """

    def __init__(self, capacity: int) -> None:
        self._entries: "LRUDict[tuple, Tuple[tuple, V]]" = LRUDict(capacity)

    @staticmethod
    def _key(anchors: tuple, extra) -> tuple:
        return (tuple(id(anchor) for anchor in anchors), extra)

    def get(self, anchors: tuple, extra=None) -> Optional[V]:
        hit = self._entries.get(self._key(anchors, extra))
        if hit is not None and len(hit[0]) == len(anchors) and all(
                held is given for held, given in zip(hit[0], anchors)):
            return hit[1]
        return None

    def put(self, anchors: tuple, value: V, extra=None) -> V:
        self._entries.put(self._key(anchors, extra), (tuple(anchors), value))
        return value
