"""Random-number-generator plumbing.

Every stochastic component of the library (workload generators, bootstrap
sampling in the random forest, process-variation jitter in the cell
library) accepts either a seed or a :class:`numpy.random.Generator`.  The
helpers here normalise those inputs so results are reproducible end to
end from a single integer seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` creates an unseeded generator, an integer seeds a fresh
    generator, and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used when a component (e.g. the random forest) needs one stream per
    sub-component so that changing the number of sub-components does not
    perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: SeedLike, salt: int) -> Optional[int]:
    """Derive a deterministic integer seed from ``seed`` and a salt.

    Returns ``None`` when ``seed`` is ``None`` so unseeded behaviour stays
    unseeded.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    return (int(seed) * 0x9E3779B97F4A7C15 + salt) % (2**63 - 1)
