"""Small argument-validation helpers shared by public constructors."""

from __future__ import annotations

from typing import Union

from repro.exceptions import ConfigurationError

Number = Union[int, float]


def check_positive_int(name: str, value: int) -> int:
    """Validate that ``value`` is a strictly positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(name: str, value: int) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(name: str, value: Number) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as a float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(name: str, value: Number, low: Number, high: Number) -> Number:
    """Validate that ``low <= value <= high`` and return ``value``."""
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must lie in [{low}, {high}], got {value}")
    return value
