"""Shared low-level utilities: bit manipulation, RNG handling, validation."""

from repro.utils.bitops import (
    bit_field,
    bit_length_of,
    bits_to_int,
    extract_bit,
    extract_bits_matrix,
    int_to_bits,
    mask,
    saturate_field,
    set_bit_field,
    signed_magnitude_position,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)

__all__ = [
    "bit_field",
    "bit_length_of",
    "bits_to_int",
    "extract_bit",
    "extract_bits_matrix",
    "int_to_bits",
    "mask",
    "saturate_field",
    "set_bit_field",
    "signed_magnitude_position",
    "ensure_rng",
    "spawn_rngs",
    "check_in_range",
    "check_non_negative_int",
    "check_positive_int",
    "check_probability",
]
