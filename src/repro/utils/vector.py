"""Process-wide toggle between the vectorized and reference synthesis kernels.

The synthesis flow has two implementations of its hot inner loops — the
levelised NumPy array kernels (STA, sizing, optimize) and the original
per-gate reference code they are bit-identical to.  The vectorized path
is the default; the reference path stays selectable for equivalence
testing, benchmarking and debugging:

* per call: every kernel entry point takes ``vector: Optional[bool]``
  (``None`` defers to the process default);
* per process: the ``REPRO_SYNTH_VECTOR`` environment variable
  (``0``/``false``/``off``/``no`` selects the reference path), read once
  on first use like the other runtime knobs;
* per block: :func:`vector_override` forces one path for a ``with``
  region (used by the equivalence tests and the benchmark).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment knob selecting the kernel implementation.
VECTOR_ENV = "REPRO_SYNTH_VECTOR"

#: Values of :data:`VECTOR_ENV` that select the reference path.
_FALSEY = ("0", "false", "off", "no")

#: Resolved process default; ``None`` until the env var is first read.
_DEFAULT: Optional[bool] = None

#: Active override installed by :func:`vector_override` (wins over both
#: the env default and, deliberately, over explicit ``vector=`` call
#: arguments *resolved inside* the block — the override is what makes a
#: whole flow run comparable end to end).
_OVERRIDE: Optional[bool] = None


def use_vector(override: Optional[bool] = None) -> bool:
    """Resolve whether the vectorized kernels should run.

    Precedence: an active :func:`vector_override` block, then the
    explicit per-call ``override``, then the ``REPRO_SYNTH_VECTOR``
    process default (on unless set to a falsey value).
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    if override is not None:
        return override
    global _DEFAULT
    if _DEFAULT is None:
        raw = os.environ.get(VECTOR_ENV, "").strip().lower()
        _DEFAULT = raw not in _FALSEY if raw else True
    return _DEFAULT


@contextmanager
def vector_override(value: bool) -> Iterator[None]:
    """Force one kernel path for the duration of the ``with`` block."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = bool(value)
    try:
        yield
    finally:
        _OVERRIDE = previous


def reset_vector_default() -> None:
    """Forget the cached env default (test hook; re-read on next use)."""
    global _DEFAULT
    _DEFAULT = None
