"""Lightweight phase timing for the characterization pipeline.

The execution runtime attributes its wall time to a handful of coarse
phases — ``synthesize`` (netlist generation and the synthesis flow),
``lower`` (compiling netlists and timing programs), ``pack`` (expanding
and bit-packing operand traces), ``simulate`` (golden references and
timing simulation) and ``score`` (turning characterizations into figure
or sweep metrics).  The ``--timings`` flag of ``repro-experiments`` and
``repro-explore`` prints the breakdown, so a performance investigation
can name the hot phase without a profiler.

Dotted names are *sub-phases*: ``synth.optimize``, ``synth.sizing`` and
``synth.sta`` break the synthesis flow down into its passes.  They are
reported alongside the top-level phases but excluded from
:meth:`PhaseTimes.total` — their time already lives inside their parent
phase, and counting it twice would overstate the attributed total.

Timing is opt-in and close to free when off: :func:`phase` reads one
module global and yields immediately unless a collector installed by
:func:`collect_phases` is active.  Phases are recorded in the process
that executes them — under the multiprocess backend the worker-side
phases stay in the workers, so a driving process reports its own
(scheduling-side) share only.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence

#: Canonical report order of the pipeline phases (dotted names are
#: sub-phases nested inside the phase before them).
PHASES = ("synthesize", "synth.optimize", "synth.sizing", "synth.sta",
          "lower", "pack", "simulate", "score")

_ACTIVE: Optional["PhaseTimes"] = None


class PhaseTimes:
    """Accumulated wall seconds (and call counts) per pipeline phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, name: str, elapsed: float) -> None:
        """Record one timed region of phase ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def total(self) -> float:
        """Sum of every attributed top-level phase.

        Dotted sub-phases (``synth.*``) are excluded — their time is
        already inside their parent phase.
        """
        return sum(elapsed for name, elapsed in self.seconds.items()
                   if "." not in name)

    def describe(self, order: Sequence[str] = PHASES) -> str:
        """Footer-ready one-line breakdown, canonical phases first."""
        names = [name for name in order if name in self.seconds]
        names += [name for name in sorted(self.seconds) if name not in order]
        if not names:
            return "no phases recorded"
        parts = [f"{name} {self.seconds[name]:.2f} s" for name in names]
        return " / ".join(parts) + f" (attributed {self.total():.2f} s)"


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Attribute the duration of the ``with`` body to phase ``name``.

    A no-op (one global read) unless a :func:`collect_phases` collector
    is active, so instrumented hot paths pay nothing by default.
    """
    collector = _ACTIVE
    if collector is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        collector.add(name, time.perf_counter() - started)


@contextmanager
def collect_phases() -> Iterator[PhaseTimes]:
    """Install a collector for the duration of the ``with`` block.

    Collectors nest by shadowing: the innermost active block receives
    the phases recorded while it is installed.
    """
    global _ACTIVE
    previous = _ACTIVE
    collector = PhaseTimes()
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = previous
