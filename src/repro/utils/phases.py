"""Lightweight phase timing for the characterization pipeline.

The execution runtime attributes its wall time to a handful of coarse
phases — ``synthesize`` (netlist generation and the synthesis flow),
``lower`` (compiling netlists and timing programs), ``pack`` (expanding
and bit-packing operand traces), ``simulate`` (golden references and
timing simulation) and ``score`` (turning characterizations into figure
or sweep metrics).  The ``--timings`` flag of ``repro-experiments`` and
``repro-explore`` prints the breakdown, so a performance investigation
can name the hot phase without a profiler.

Dotted names are *sub-phases*: ``synth.optimize``, ``synth.sizing`` and
``synth.sta`` break the synthesis flow down into its passes, and
``schedule.wait`` is the driver-side time spent blocked on worker
futures.  They are reported alongside the top-level phases but excluded
from :meth:`PhaseTimes.total` — sub-phase time already lives inside a
parent phase, and scheduling wait overlaps the worker compute the
merged phases attribute, so counting either would overstate the total.

Phase timing is a thin compatibility layer over the span tracer of
:mod:`repro.obs.trace`: :func:`phase` *is* :func:`repro.obs.trace.span`
(so phases nest into span paths and feed any ambient tracer), and
:func:`collect_phases` installs a tracer whose sink is the yielded
:class:`PhaseTimes`.  Activation is context-local (:mod:`contextvars`),
so concurrent collectors — separate threads, or nested blocks — are
thread-safe and re-entrant: a collector only ever observes spans of its
own context, and nested collectors *stack* (an inner block's phases are
also observed by outer collectors and tracers).

Under the multiprocess backend, worker-side phases are spilled per
worker and merged back at batch end (:mod:`repro.obs.spill`), so the
``--timings`` breakdown attributes worker compute — not just the
driver's ``schedule.wait`` — whenever a collector or tracer is active.

Timing stays opt-in and close to free when off: :func:`phase` reads one
context variable and yields immediately unless a collector (or tracer)
is active.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Sequence

from repro.obs.trace import Tracer, span, trace_run

#: Canonical report order of the pipeline phases (dotted names are
#: sub-phases nested inside the phase before them; ``schedule.wait`` is
#: the driver's blocked-on-workers time, overlapping merged worker
#: phases rather than nesting in one).
PHASES = ("synthesize", "synth.optimize", "synth.sizing", "synth.sta",
          "lower", "pack", "simulate", "score", "schedule.wait")


class PhaseTimes:
    """Accumulated wall seconds (and call counts) per pipeline phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, name: str, elapsed: float) -> None:
        """Record one timed region of phase ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def merge(self, name: str, elapsed: float, calls: int) -> None:
        """Fold a pre-aggregated batch of regions (worker spill merge)."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + calls

    def total(self) -> float:
        """Sum of every attributed top-level phase.

        Dotted sub-phases (``synth.*``, ``schedule.wait``) are excluded
        — their time is already inside a parent phase, or overlaps the
        worker compute merged into the top-level phases.
        """
        return sum(elapsed for name, elapsed in self.seconds.items()
                   if "." not in name)

    def describe(self, order: Sequence[str] = PHASES) -> str:
        """Footer-ready one-line breakdown, canonical phases first."""
        names = [name for name in order if name in self.seconds]
        names += [name for name in sorted(self.seconds) if name not in order]
        if not names:
            return "no phases recorded"
        parts = [f"{name} {self.seconds[name]:.2f} s" for name in names]
        return " / ".join(parts) + f" (attributed {self.total():.2f} s)"


#: Alias: a phase is a span.  ``phase(name, **attrs)`` attributes the
#: ``with`` body to ``name`` in every active collector and tracer; a
#: no-op (one context-variable read) when none is active.
phase = span


@contextmanager
def collect_phases() -> Iterator[PhaseTimes]:
    """Install a phase collector for the duration of the ``with`` block.

    Context-local and re-entrant: concurrent collectors in other
    threads or contexts never interleave, and nested collectors stack —
    the innermost block's phases are also observed by outer collectors.
    The underlying tracer is exposed as ``phases.tracer`` (span paths,
    CPU time, merged worker stats).
    """
    collector = PhaseTimes()
    with trace_run(Tracer(sink=collector)) as tracer:
        collector.tracer = tracer
        yield collector
