"""Bit-manipulation helpers used throughout the library.

The behavioural adder models work on plain Python integers (exact,
arbitrary precision) and on NumPy ``uint64`` arrays (vectorised
characterisation over millions of vectors).  The helpers in this module
provide the small set of bit-field operations both paths need, with a
consistent LSB-first bit-numbering convention: bit ``0`` is the least
significant bit.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError

IntOrArray = Union[int, np.ndarray]


def mask(width: int) -> int:
    """Return an integer with the ``width`` least-significant bits set.

    ``mask(0)`` is ``0`` and negative widths are rejected.
    """
    if width < 0:
        raise ConfigurationError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_field(value: IntOrArray, offset: int, width: int) -> IntOrArray:
    """Extract ``width`` bits starting at bit ``offset`` (LSB-first).

    Works on Python integers and on NumPy integer arrays alike.
    """
    if offset < 0:
        raise ConfigurationError(f"bit offset must be non-negative, got {offset}")
    field_mask = mask(width)
    if isinstance(value, np.ndarray):
        return (value >> np.uint64(offset)) & np.uint64(field_mask)
    return (int(value) >> offset) & field_mask


def set_bit_field(value: IntOrArray, offset: int, width: int, field: IntOrArray) -> IntOrArray:
    """Return ``value`` with bits ``[offset, offset + width)`` replaced by ``field``."""
    if offset < 0:
        raise ConfigurationError(f"bit offset must be non-negative, got {offset}")
    field_mask = mask(width)
    if isinstance(value, np.ndarray):
        cleared = value & ~np.uint64(field_mask << offset)
        field_arr = (np.asarray(field).astype(np.uint64) & np.uint64(field_mask)) << np.uint64(offset)
        return cleared | field_arr
    return (int(value) & ~(field_mask << offset)) | ((int(field) & field_mask) << offset)


def extract_bit(value: IntOrArray, position: int) -> IntOrArray:
    """Return bit ``position`` of ``value`` as 0/1."""
    return bit_field(value, position, 1)


def saturate_field(value: IntOrArray, offset: int, width: int, direction: int) -> IntOrArray:
    """Saturate a bit field to all ones (``direction > 0``) or all zeros (``direction < 0``).

    This is the primitive used by the ISA error-reduction (balancing)
    mechanism: the ``width`` MSBs of the preceding block sum are forced
    towards the direction of the missing/extra carry to reduce the
    relative error of the result.
    """
    if direction == 0:
        return value
    field = mask(width) if direction > 0 else 0
    return set_bit_field(value, offset, width, field)


def int_to_bits(value: int, width: int) -> List[int]:
    """Return the ``width`` LSB-first bits of ``value`` as a list of 0/1 ints."""
    if width < 0:
        raise ConfigurationError(f"width must be non-negative, got {width}")
    return [(int(value) >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits`: assemble LSB-first bits into an integer."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ConfigurationError(f"bit values must be 0 or 1, got {bit!r} at index {i}")
        value |= bit << i
    return value


def extract_bits_matrix(values: np.ndarray, width: int) -> np.ndarray:
    """Unpack a vector of integers into a ``(len(values), width)`` 0/1 matrix.

    Column ``j`` holds bit ``j`` (LSB-first).  Used to build bit-level
    feature matrices for the timing-error prediction model.
    """
    values = np.asarray(values, dtype=np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    return ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)


def bit_length_of(value: int) -> int:
    """Return the bit length of ``abs(value)`` (0 for value 0)."""
    return int(abs(int(value))).bit_length()


def signed_magnitude_position(error: int) -> int:
    """Map an arithmetic error to its bit-position equivalent.

    Following the paper's Fig. 10, an arithmetic error ``e`` is translated
    to the position of its most significant erroneous bit, i.e.
    ``floor(log2(|e|))``.  An error of zero has no position and raises.
    """
    if error == 0:
        raise ConfigurationError("a zero error has no bit-position equivalent")
    return bit_length_of(error) - 1


def popcount(value: IntOrArray) -> IntOrArray:
    """Count set bits of an integer or of every element of a uint64 array."""
    if isinstance(value, np.ndarray):
        v = value.astype(np.uint64)
        count = np.zeros(v.shape, dtype=np.int64)
        while np.any(v):
            count += (v & np.uint64(1)).astype(np.int64)
            v = v >> np.uint64(1)
        return count
    return bin(int(value)).count("1")


def hamming_distance(a: IntOrArray, b: IntOrArray) -> IntOrArray:
    """Number of differing bits between ``a`` and ``b``."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return popcount(np.asarray(a, dtype=np.uint64) ^ np.asarray(b, dtype=np.uint64))
    return popcount(int(a) ^ int(b))


def chunks(sequence: Sequence, size: int) -> Iterable[Sequence]:
    """Yield successive chunks of ``sequence`` of length ``size`` (last may be short)."""
    if size <= 0:
        raise ConfigurationError(f"chunk size must be positive, got {size}")
    for start in range(0, len(sequence), size):
        yield sequence[start:start + size]
