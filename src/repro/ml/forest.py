"""Random-forest classifier built on the from-scratch decision tree.

Mirrors the paper's choice of Random Forest Classification (RFC): an
ensemble of decision trees fitted on bootstrap resamples with per-split
feature subsampling, predicting by averaging the trees' probabilities.
The paper motivates RFC as a balance between the expressiveness of
decision trees and their tendency to overfit; the ablation benchmark
compares forest sizes against a single tree.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import SeedLike, spawn_rngs


class RandomForestClassifier:
    """Bagged ensemble of :class:`~repro.ml.tree.DecisionTreeClassifier`.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split:
        Passed to every tree.
    max_features:
        Per-split feature subsampling (default ``"sqrt"`` as is standard
        for classification forests).
    class_weight:
        ``None`` or ``"balanced"``; balanced mode resamples the minority
        class so rare timing errors are not drowned out.
    seed:
        Master seed; each tree receives an independent derived stream.
    """

    def __init__(self, n_estimators: int = 10, max_depth: int = 8,
                 min_samples_split: int = 8, max_features: object = "sqrt",
                 class_weight: Optional[str] = None, seed: SeedLike = None) -> None:
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be at least 1, got {n_estimators}")
        if class_weight not in (None, "balanced"):
            raise ModelError(f"class_weight must be None or 'balanced', got {class_weight!r}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.class_weight = class_weight
        self.seed = seed
        self.trees_: List[DecisionTreeClassifier] = []
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit the ensemble on a 0/1 feature matrix and 0/1 labels."""
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.uint8)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ModelError(f"inconsistent shapes X{X.shape} y{y.shape}")
        if X.shape[0] == 0:
            raise ModelError("cannot fit a forest on an empty dataset")
        self.n_features_ = X.shape[1]
        self.trees_ = []
        streams = spawn_rngs(self.seed, self.n_estimators * 2)
        samples = X.shape[0]
        for index in range(self.n_estimators):
            sample_rng = streams[2 * index]
            tree_rng = streams[2 * index + 1]
            chosen = self._bootstrap_indices(y, samples, sample_rng)
            tree = DecisionTreeClassifier(max_depth=self.max_depth,
                                          min_samples_split=self.min_samples_split,
                                          max_features=self.max_features,
                                          seed=tree_rng)
            tree.fit(X[chosen], y[chosen])
            self.trees_.append(tree)
        return self

    def _bootstrap_indices(self, y: np.ndarray, samples: int,
                           rng: np.random.Generator) -> np.ndarray:
        if self.class_weight != "balanced":
            return rng.integers(0, samples, size=samples)
        positives = np.flatnonzero(y == 1)
        negatives = np.flatnonzero(y == 0)
        if positives.size == 0 or negatives.size == 0:
            return rng.integers(0, samples, size=samples)
        half = samples // 2
        return np.concatenate([
            rng.choice(positives, size=half, replace=True),
            rng.choice(negatives, size=samples - half, replace=True),
        ])

    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean positive-class probability over the ensemble."""
        if not self.trees_:
            raise ModelError("this forest has not been fitted")
        X = np.asarray(X, dtype=np.uint8)
        accumulator = np.zeros(X.shape[0], dtype=np.float64)
        for tree in self.trees_:
            accumulator += tree.predict_proba(X)
        return accumulator / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote class (0/1) for every row of ``X``."""
        return (self.predict_proba(X) >= 0.5).astype(np.uint8)

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return bool(self.trees_)

    def describe(self) -> str:
        """Short human-readable summary of the fitted ensemble."""
        if not self.trees_:
            return "RandomForestClassifier (not fitted)"
        depths = [tree.depth() for tree in self.trees_]
        nodes = [tree.node_count() for tree in self.trees_]
        return (f"RandomForestClassifier: {len(self.trees_)} trees, "
                f"depth {min(depths)}-{max(depths)}, "
                f"{int(np.mean(nodes))} nodes on average")
