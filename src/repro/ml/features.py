"""Feature construction for the bit-level timing-error model.

Following Section III-A of the paper, the feature vector for output bit
``n`` at cycle ``t`` is::

    { x[t], x[t-1], yRTL_n[t-1], yRTL_n[t] }

where ``x`` is the full input vector (both operands, bit-expanded) and
``yRTL_n`` is bit ``n`` of the properly clocked (golden) output.  The two
output-bit features encode the insight that a latched timing error is
only observable when the previous and current golden values differ.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import ModelError
from repro.utils.bitops import extract_bits_matrix
from repro.workloads.traces import OperandTrace

FEATURE_DOC = "{A[t], B[t], A[t-1], B[t-1], yRTL_n[t-1], yRTL_n[t]} bit-expanded"


def gold_words_from_netlist(netlist, trace: OperandTrace, output_bus: str = "S",
                            cin: int = 0) -> np.ndarray:
    """Golden (properly clocked) outputs straight from the gate level.

    ``yRTL`` in the paper is the output of the implemented adder sampled
    at a safe clock — i.e. the settled gate-level value.  This helper
    produces it with :meth:`Netlist.compute_words`, which runs on the
    compiled bit-packed engine (64 cycles per word), so dataset
    generation can use the synthesized netlist itself as the golden
    reference instead of a separate behavioural model.
    """
    return netlist.compute_words(trace.as_operands(cin=cin), output_bus=output_bus)


def feature_names(width: int) -> List[str]:
    """Column names of the feature matrix for a ``width``-bit adder."""
    names: List[str] = []
    names += [f"A[t][{i}]" for i in range(width)]
    names += [f"B[t][{i}]" for i in range(width)]
    names += [f"A[t-1][{i}]" for i in range(width)]
    names += [f"B[t-1][{i}]" for i in range(width)]
    names += ["yRTL_n[t-1]", "yRTL_n[t]"]
    return names


def build_feature_matrix(trace: OperandTrace, gold_words: np.ndarray, bit: int) -> np.ndarray:
    """Feature matrix for one output bit over all transitions of a trace.

    Parameters
    ----------
    trace:
        The operand trace (length ``T``); transitions are ``T - 1``.
    gold_words:
        Golden (properly clocked) output of the adder for every vector of
        the trace (length ``T``).
    bit:
        Output bit position the classifier is trained for.
    """
    gold_words = np.asarray(gold_words, dtype=np.uint64)
    if gold_words.shape[0] != trace.length:
        raise ModelError(
            f"gold output length {gold_words.shape[0]} does not match trace length {trace.length}")
    if trace.length < 2:
        raise ModelError("feature extraction needs at least two input vectors")
    width = trace.width

    a_bits = extract_bits_matrix(trace.a, width)
    b_bits = extract_bits_matrix(trace.b, width)
    gold_bit = ((gold_words >> np.uint64(bit)) & np.uint64(1)).astype(np.uint8)

    current = slice(1, None)
    previous = slice(None, -1)
    return np.hstack([
        a_bits[current], b_bits[current],
        a_bits[previous], b_bits[previous],
        gold_bit[previous][:, None], gold_bit[current][:, None],
    ]).astype(np.uint8)


def feature_count(width: int) -> int:
    """Number of features produced by :func:`build_feature_matrix`."""
    return 4 * width + 2
