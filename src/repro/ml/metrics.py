"""Evaluation metrics of the timing-error prediction model.

Two metrics follow the paper directly:

* **ABPER** (average bit-level prediction error rate, Eq. 1): the mean,
  over bits and cycles, of the disagreement between predicted and real
  timing classes.
* **AVPE** (average value-level predictive error, Eq. 4): the mean, over
  cycles, of the relative deviation between the predicted and real silver
  output values.

Both figures in the paper clamp values below 1e-6 to 1e-6 so they remain
visible on logarithmic axes; :data:`LOG_FLOOR` reproduces that.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.exceptions import AnalysisError

#: Floor applied when reporting metrics on logarithmic axes (paper Section V-B).
LOG_FLOOR = 1e-6


def abper(predicted_classes: np.ndarray, real_classes: np.ndarray) -> float:
    """Average bit-level prediction error rate (Eq. 1 of the paper).

    Both arguments are (cycles, bits) matrices of timing classes; the
    encoding (0/1 for erroneous/correct or the reverse) does not matter as
    long as it is consistent, because only disagreements are counted.
    """
    predicted = np.asarray(predicted_classes)
    real = np.asarray(real_classes)
    if predicted.shape != real.shape:
        raise AnalysisError(f"shape mismatch: predicted {predicted.shape} vs real {real.shape}")
    if predicted.size == 0:
        raise AnalysisError("cannot compute ABPER on an empty prediction")
    return float(np.mean(predicted.astype(np.int8) != real.astype(np.int8)))


def avpe(predicted_silver: np.ndarray, real_silver: np.ndarray) -> float:
    """Average value-level predictive error (Eq. 4 of the paper).

    The denominator is the real silver value of each cycle, as in the
    paper's definition; cycles whose real silver value is zero are
    excluded (they cannot be normalised).
    """
    predicted = np.asarray(predicted_silver, dtype=np.int64)
    real = np.asarray(real_silver, dtype=np.int64)
    if predicted.shape != real.shape:
        raise AnalysisError(f"shape mismatch: predicted {predicted.shape} vs real {real.shape}")
    if predicted.size == 0:
        raise AnalysisError("cannot compute AVPE on an empty prediction")
    nonzero = real != 0
    if not np.any(nonzero):
        raise AnalysisError("all real silver values are zero; AVPE is undefined")
    deviation = np.abs(predicted[nonzero] - real[nonzero]) / np.abs(real[nonzero])
    return float(np.sum(deviation) / predicted.shape[0])


def floored(value: float, floor: float = LOG_FLOOR) -> float:
    """Clamp a metric to the logarithmic-axis floor used by the paper's figures."""
    return max(float(value), floor)


def classification_summary(predicted: np.ndarray, real: np.ndarray) -> Dict[str, float]:
    """Accuracy / precision / recall of error prediction (1 = erroneous).

    Complements ABPER for analysing class imbalance: with rare timing
    errors a predictor can reach excellent ABPER while missing every
    error, which precision/recall expose.
    """
    predicted = np.asarray(predicted).astype(bool).ravel()
    real = np.asarray(real).astype(bool).ravel()
    if predicted.shape != real.shape:
        raise AnalysisError(f"shape mismatch: predicted {predicted.shape} vs real {real.shape}")
    true_positive = float(np.count_nonzero(predicted & real))
    false_positive = float(np.count_nonzero(predicted & ~real))
    false_negative = float(np.count_nonzero(~predicted & real))
    correct = float(np.count_nonzero(predicted == real))
    total = float(predicted.size)
    precision = true_positive / (true_positive + false_positive) if true_positive + false_positive else 0.0
    recall = true_positive / (true_positive + false_negative) if true_positive + false_negative else 0.0
    return {
        "accuracy": correct / total if total else 0.0,
        "precision": precision,
        "recall": recall,
        "error_rate": float(np.mean(real)),
    }
