"""Decision-tree classifier (CART with Gini impurity) on binary features.

This is a from-scratch replacement for the scikit-learn classifier the
paper uses, specialised to the timing-error prediction problem: features
are binary (operand and output bits), labels are binary (timing-correct
vs timing-erroneous).  The implementation is array-based: every node
split evaluates all candidate features at once with vectorised counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class _Node:
    """One tree node: either a leaf (prediction) or an internal split."""

    prediction: float
    feature: int = -1
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _gini_gain(X: np.ndarray, y: np.ndarray, feature_indices: np.ndarray) -> np.ndarray:
    """Gini impurity decrease of splitting on each candidate binary feature."""
    total = y.shape[0]
    positives = float(y.sum())
    parent_gini = 1.0 - (positives / total) ** 2 - ((total - positives) / total) ** 2

    ones_mask = X[:, feature_indices].astype(bool)
    count_right = ones_mask.sum(axis=0).astype(np.float64)
    count_left = total - count_right
    pos_right = (ones_mask & y[:, None].astype(bool)).sum(axis=0).astype(np.float64)
    pos_left = positives - pos_right

    def gini(count: np.ndarray, positive: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            p = np.where(count > 0, positive / np.maximum(count, 1), 0.0)
            return 1.0 - p ** 2 - (1.0 - p) ** 2

    weighted = (count_left * gini(count_left, pos_left) +
                count_right * gini(count_right, pos_right)) / total
    gain = parent_gini - weighted
    # Splits that send every sample to one side provide no information.
    gain[(count_left == 0) | (count_right == 0)] = -np.inf
    return gain


class DecisionTreeClassifier:
    """Binary CART classifier over 0/1 feature matrices.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root has depth 0).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    max_features:
        Number of features examined per split: ``None`` (all), an int, or
        ``"sqrt"``.  Random forests use ``"sqrt"`` to decorrelate trees.
    seed:
        Seed for the feature subsampling.
    """

    def __init__(self, max_depth: int = 8, min_samples_split: int = 8,
                 max_features: Optional[object] = None, seed: SeedLike = None) -> None:
        if max_depth < 1:
            raise ModelError(f"max_depth must be at least 1, got {max_depth}")
        if min_samples_split < 2:
            raise ModelError(f"min_samples_split must be at least 2, got {min_samples_split}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = ensure_rng(seed)
        self._root: Optional[_Node] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit the tree on a 0/1 feature matrix and 0/1 labels."""
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.uint8)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ModelError(f"inconsistent shapes X{X.shape} y{y.shape}")
        if X.shape[0] == 0:
            raise ModelError("cannot fit a tree on an empty dataset")
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _candidate_features(self) -> np.ndarray:
        assert self.n_features_ is not None
        if self.max_features is None:
            return np.arange(self.n_features_)
        if self.max_features == "sqrt":
            count = max(1, int(np.sqrt(self.n_features_)))
        else:
            count = min(int(self.max_features), self.n_features_)
        return self._rng.choice(self.n_features_, size=count, replace=False)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        prediction = float(y.mean())
        if (depth >= self.max_depth or y.shape[0] < self.min_samples_split
                or prediction in (0.0, 1.0)):
            return _Node(prediction=prediction)
        candidates = self._candidate_features()
        gains = _gini_gain(X, y, candidates)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]) or gains[best] <= 1e-12:
            return _Node(prediction=prediction)
        feature = int(candidates[best])
        right_mask = X[:, feature].astype(bool)
        left = self._build(X[~right_mask], y[~right_mask], depth + 1)
        right = self._build(X[right_mask], y[right_mask], depth + 1)
        return _Node(prediction=prediction, feature=feature, left=left, right=right)

    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for every row of ``X``."""
        if self._root is None:
            raise ModelError("this tree has not been fitted")
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ModelError(
                f"expected feature matrix with {self.n_features_} columns, got shape {X.shape}")
        probabilities = np.empty(X.shape[0], dtype=np.float64)
        # Iterative partition-based traversal: route index groups level by level.
        stack: List[tuple] = [(self._root, np.arange(X.shape[0]))]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                probabilities[indices] = node.prediction
                continue
            right_mask = X[indices, node.feature].astype(bool)
            stack.append((node.left, indices[~right_mask]))
            stack.append((node.right, indices[right_mask]))
        return probabilities

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most likely class (0/1) for every row of ``X``."""
        return (self.predict_proba(X) >= 0.5).astype(np.uint8)

    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._root is None:
            raise ModelError("this tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        if self._root is None:
            raise ModelError("this tree has not been fitted")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + walk(node.left) + walk(node.right)

        return walk(self._root)
