"""Regression trees and forests on numeric features.

The classification side of :mod:`repro.ml` mirrors the paper's Random
Forest Classification of bit-level timing errors; this module extends
the same from-scratch machinery to *regression*, the mode the adaptive
design-space explorer (:mod:`repro.explore.adaptive`) uses as a cheap
surrogate for expensive simulation: quadruple-derived features of an
:class:`~repro.core.config.ISAConfig` predict the sweep's scoring axes
(joint RMS relative error, gate count, area proxy) directly, no
synthesis or simulation involved.

Differences from the classifier (:mod:`repro.ml.tree`), both deliberate:

* features are **numeric**, so internal nodes split on a learned
  threshold (``x[feature] > threshold``) instead of a binary value;
* the split criterion is **variance reduction** (sum-of-squared-error
  decrease), evaluated for every candidate threshold of every candidate
  feature at once with prefix sums over the sorted column.

Seeding follows the classifier exactly: a master seed spawns one
independent stream per tree for bootstrap resampling and per-split
feature subsampling (:func:`repro.utils.rng.spawn_rngs`), so the same
seed reproduces the same ensemble bit-for-bit in any process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs


@dataclass
class _RegressionNode:
    """One tree node: a leaf (mean prediction) or a threshold split."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_RegressionNode"] = None
    right: Optional["_RegressionNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _best_threshold(column: np.ndarray, y: np.ndarray) -> tuple:
    """Best split of one numeric column by variance reduction.

    Returns ``(sse, threshold)`` — the summed squared error of the two
    children and the midpoint threshold achieving it — or ``(inf, 0.0)``
    when the column is constant (no split possible).  All candidate
    thresholds (boundaries between distinct consecutive sorted values)
    are evaluated at once with prefix sums.
    """
    order = np.argsort(column, kind="stable")
    sorted_x = column[order]
    sorted_y = y[order]
    boundaries = np.flatnonzero(sorted_x[1:] != sorted_x[:-1])
    if boundaries.size == 0:
        return np.inf, 0.0
    prefix_sum = np.cumsum(sorted_y)
    prefix_sq = np.cumsum(sorted_y * sorted_y)
    total_sum = prefix_sum[-1]
    total_sq = prefix_sq[-1]
    count = y.shape[0]
    left_count = (boundaries + 1).astype(np.float64)
    right_count = count - left_count
    left_sum = prefix_sum[boundaries]
    left_sq = prefix_sq[boundaries]
    sse = ((left_sq - left_sum * left_sum / left_count)
           + ((total_sq - left_sq)
              - (total_sum - left_sum) * (total_sum - left_sum) / right_count))
    best = int(np.argmin(sse))
    split = boundaries[best]
    threshold = 0.5 * (sorted_x[split] + sorted_x[split + 1])
    return float(sse[best]), float(threshold)


class DecisionTreeRegressor:
    """CART regression tree over numeric feature matrices.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root has depth 0).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    max_features:
        Features examined per split: ``None`` (all), an int, or
        ``"sqrt"``.  The surrogate's feature count is small, so the
        default keeps every split exact; forests may subsample to
        decorrelate trees.
    seed:
        Seed for the feature subsampling (matches the classifier).
    """

    def __init__(self, max_depth: int = 12, min_samples_split: int = 4,
                 max_features: Optional[object] = None, seed: SeedLike = None) -> None:
        if max_depth < 1:
            raise ModelError(f"max_depth must be at least 1, got {max_depth}")
        if min_samples_split < 2:
            raise ModelError(f"min_samples_split must be at least 2, got {min_samples_split}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = ensure_rng(seed)
        self._root: Optional[_RegressionNode] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Fit the tree on a numeric feature matrix and float targets."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ModelError(f"inconsistent shapes X{X.shape} y{y.shape}")
        if X.shape[0] == 0:
            raise ModelError("cannot fit a tree on an empty dataset")
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _candidate_features(self) -> np.ndarray:
        assert self.n_features_ is not None
        if self.max_features is None:
            return np.arange(self.n_features_)
        if self.max_features == "sqrt":
            count = max(1, int(np.sqrt(self.n_features_)))
        else:
            count = min(int(self.max_features), self.n_features_)
        return self._rng.choice(self.n_features_, size=count, replace=False)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _RegressionNode:
        prediction = float(y.mean())
        if depth >= self.max_depth or y.shape[0] < self.min_samples_split:
            return _RegressionNode(prediction=prediction)
        parent_sse = float(np.sum((y - prediction) ** 2))
        if parent_sse <= 1e-12:
            return _RegressionNode(prediction=prediction)
        candidates = self._candidate_features()
        best_feature = -1
        best_sse = np.inf
        best_threshold = 0.0
        for feature in candidates:
            sse, threshold = _best_threshold(X[:, feature], y)
            if sse < best_sse:
                best_feature = int(feature)
                best_sse = sse
                best_threshold = threshold
        if best_feature < 0 or parent_sse - best_sse <= 1e-12:
            return _RegressionNode(prediction=prediction)
        right_mask = X[:, best_feature] > best_threshold
        left = self._build(X[~right_mask], y[~right_mask], depth + 1)
        right = self._build(X[right_mask], y[right_mask], depth + 1)
        return _RegressionNode(prediction=prediction, feature=best_feature,
                               threshold=best_threshold, left=left, right=right)

    # ------------------------------------------------------------------ #
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted target for every row of ``X``."""
        if self._root is None:
            raise ModelError("this tree has not been fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ModelError(
                f"expected feature matrix with {self.n_features_} columns, got shape {X.shape}")
        predictions = np.empty(X.shape[0], dtype=np.float64)
        # Iterative partition-based traversal: route index groups level by level.
        stack: List[tuple] = [(self._root, np.arange(X.shape[0]))]
        while stack:
            node, indices = stack.pop()
            if indices.size == 0:
                continue
            if node.is_leaf:
                predictions[indices] = node.prediction
                continue
            right_mask = X[indices, node.feature] > node.threshold
            stack.append((node.left, indices[~right_mask]))
            stack.append((node.right, indices[right_mask]))
        return predictions

    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self._root is None:
            raise ModelError("this tree has not been fitted")

        def walk(node: _RegressionNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        if self._root is None:
            raise ModelError("this tree has not been fitted")

        def walk(node: _RegressionNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + walk(node.left) + walk(node.right)

        return walk(self._root)


class RandomForestRegressor:
    """Bagged ensemble of :class:`DecisionTreeRegressor`.

    Predicts by averaging the trees; :meth:`predict_std` exposes the
    tree-ensemble spread the adaptive explorer uses as its uncertainty
    signal (candidates the trees disagree on are worth simulating).

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, max_features:
        Passed to every tree (``max_features=None`` keeps every split
        exact — with the surrogate's handful of features, bootstrap
        resampling alone provides the decorrelation).
    seed:
        Master seed; each tree receives an independent derived stream,
        exactly like :class:`~repro.ml.forest.RandomForestClassifier`.
    """

    def __init__(self, n_estimators: int = 24, max_depth: int = 12,
                 min_samples_split: int = 4, max_features: Optional[object] = None,
                 seed: SeedLike = None) -> None:
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be at least 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees_: List[DecisionTreeRegressor] = []
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit the ensemble on a numeric feature matrix and float targets."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ModelError(f"inconsistent shapes X{X.shape} y{y.shape}")
        if X.shape[0] == 0:
            raise ModelError("cannot fit a forest on an empty dataset")
        self.n_features_ = X.shape[1]
        self.trees_ = []
        streams = spawn_rngs(self.seed, self.n_estimators * 2)
        samples = X.shape[0]
        for index in range(self.n_estimators):
            sample_rng = streams[2 * index]
            tree_rng = streams[2 * index + 1]
            chosen = sample_rng.integers(0, samples, size=samples)
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         min_samples_split=self.min_samples_split,
                                         max_features=self.max_features,
                                         seed=tree_rng)
            tree.fit(X[chosen], y[chosen])
            self.trees_.append(tree)
        return self

    # ------------------------------------------------------------------ #
    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_estimators, rows)``."""
        if not self.trees_:
            raise ModelError("this forest has not been fitted")
        X = np.asarray(X, dtype=np.float64)
        return np.stack([tree.predict(X) for tree in self.trees_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over the ensemble."""
        return self.predict_all(X).mean(axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Tree-ensemble spread (standard deviation) per row.

        The exploration signal of the adaptive search: rows where the
        bootstrap-decorrelated trees disagree are rows the training set
        constrains poorly.
        """
        return self.predict_all(X).std(axis=0)

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return bool(self.trees_)

    def describe(self) -> str:
        """Short human-readable summary of the fitted ensemble."""
        if not self.trees_:
            return "RandomForestRegressor (not fitted)"
        depths = [tree.depth() for tree in self.trees_]
        nodes = [tree.node_count() for tree in self.trees_]
        return (f"RandomForestRegressor: {len(self.trees_)} trees, "
                f"depth {min(depths)}-{max(depths)}, "
                f"{int(np.mean(nodes))} nodes on average")
