"""Per-bit timing-error prediction model (the paper's Fig. 3 flow).

:class:`BitLevelTimingModel` trains one random-forest binary classifier
per output bit of an adder, at one overclocked period, from a training
trace whose timing behaviour has been measured by gate-level simulation.
At prediction time it emits per-bit timing classes and deduces the
predicted silver (over-clocked) output word by flipping the golden bits
it believes are timing-erroneous — exactly how the paper converts
timing-class vectors into arithmetic values for the AVPE metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.ml.dataset import BitDataset, build_bit_datasets
from repro.ml.features import build_feature_matrix
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import abper, avpe
from repro.timing.errors import TimingErrorTrace
from repro.utils.rng import derive_seed
from repro.workloads.traces import OperandTrace


@dataclass(frozen=True)
class TimingModelOptions:
    """Hyper-parameters of the per-bit random forests."""

    n_estimators: int = 8
    max_depth: int = 8
    min_samples_split: int = 8
    max_features: object = "sqrt"
    class_weight: Optional[str] = None
    seed: Optional[int] = 2017

    def make_classifier(self, bit: int) -> RandomForestClassifier:
        """Instantiate the classifier for one output bit."""
        return RandomForestClassifier(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            max_features=self.max_features,
            class_weight=self.class_weight,
            seed=derive_seed(self.seed, bit),
        )


@dataclass
class BitLevelTimingModel:
    """One trained classifier per output bit for a (design, clock) pair."""

    design: str
    clock_period: float
    output_width: int
    options: TimingModelOptions = field(default_factory=TimingModelOptions)

    def __post_init__(self) -> None:
        self._classifiers: Dict[int, RandomForestClassifier] = {}
        self._constant_bits: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(self, trace: OperandTrace, gold_words: np.ndarray,
            timing_trace: TimingErrorTrace) -> "BitLevelTimingModel":
        """Train every per-bit classifier from a measured training trace."""
        if timing_trace.output_width != self.output_width:
            raise ModelError(
                f"timing trace has {timing_trace.output_width} output bits, "
                f"model expects {self.output_width}")
        datasets = build_bit_datasets(trace, gold_words, timing_trace)
        self._classifiers.clear()
        self._constant_bits.clear()
        for dataset in datasets:
            self._fit_bit(dataset)
        return self

    def _fit_bit(self, dataset: BitDataset) -> None:
        labels = dataset.labels
        unique = np.unique(labels)
        if unique.size == 1:
            # A bit that is always correct (or, pathologically, always wrong)
            # in training needs no classifier; remember the constant class.
            self._constant_bits[dataset.bit] = int(unique[0])
            return
        classifier = self.options.make_classifier(dataset.bit)
        classifier.fit(dataset.features, labels)
        self._classifiers[dataset.bit] = classifier

    @property
    def is_fitted(self) -> bool:
        """True once the model has been trained."""
        return bool(self._classifiers) or bool(self._constant_bits)

    @property
    def trained_bits(self) -> List[int]:
        """Bits for which a real classifier (not a constant) was trained."""
        return sorted(self._classifiers)

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict_error_matrix(self, trace: OperandTrace, gold_words: np.ndarray) -> np.ndarray:
        """Predicted timing-error flags, shape (transitions, output_width)."""
        if not self.is_fitted:
            raise ModelError("the model must be fitted before predicting")
        predictions = np.zeros((trace.transitions, self.output_width), dtype=np.uint8)
        for bit in range(self.output_width):
            if bit in self._classifiers:
                features = build_feature_matrix(trace, gold_words, bit)
                predictions[:, bit] = self._classifiers[bit].predict(features)
            else:
                predictions[:, bit] = self._constant_bits.get(bit, 0)
        return predictions

    def predict_timing_classes(self, trace: OperandTrace, gold_words: np.ndarray) -> np.ndarray:
        """Predicted timing classes (1 = timing-correct) as used by ABPER."""
        return (1 - self.predict_error_matrix(trace, gold_words)).astype(np.uint8)

    def predict_silver(self, trace: OperandTrace, gold_words: np.ndarray) -> np.ndarray:
        """Predicted over-clocked output words.

        A predicted timing error on bit ``n`` flips the golden bit, but
        only when the golden bit actually toggles between consecutive
        cycles — a latched stale value can only differ from the golden
        value in that case (the same observation the feature set encodes).
        """
        gold_words = np.asarray(gold_words, dtype=np.uint64)
        errors = self.predict_error_matrix(trace, gold_words)
        current = gold_words[1:]
        previous = gold_words[:-1]
        silver = current.copy()
        for bit in range(self.output_width):
            weight = np.uint64(1 << bit)
            toggled = ((current ^ previous) >> np.uint64(bit)) & np.uint64(1)
            flip = (errors[:, bit].astype(np.uint64) & toggled).astype(bool)
            silver = np.where(flip, silver ^ weight, silver)
        return silver

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, trace: OperandTrace, gold_words: np.ndarray,
                 timing_trace: TimingErrorTrace) -> Dict[str, float]:
        """ABPER and AVPE of the model on an evaluation trace."""
        predicted_classes = self.predict_timing_classes(trace, gold_words)
        real_classes = timing_trace.timing_classes()
        predicted_silver = self.predict_silver(trace, gold_words)
        real_silver = timing_trace.sampled_words
        return {
            "abper": abper(predicted_classes, real_classes),
            "avpe": avpe(predicted_silver, real_silver),
        }

    def describe(self) -> str:
        """Human-readable summary of the trained model."""
        constant = len(self._constant_bits)
        trained = len(self._classifiers)
        return (f"BitLevelTimingModel[{self.design} @ {self.clock_period * 1e12:.0f} ps]: "
                f"{trained} trained bits, {constant} constant bits")
