"""Supervised-learning substrate for bit-level timing-error prediction.

The paper trains one binary classifier per output bit (a scikit-learn
random forest) on features derived from consecutive input vectors and the
RTL outputs, to predict whether that bit is timing-erroneous at a given
overclocked period.  Because this reproduction is fully self-contained,
the decision-tree and random-forest learners are implemented from scratch
on NumPy in :mod:`repro.ml.tree` and :mod:`repro.ml.forest`; the
feature construction, the per-bit model and the ABPER/AVPE evaluation
metrics mirror Sections III and IV-B of the paper.

:mod:`repro.ml.regress` extends the same machinery to regression
(variance-reduction threshold splits on numeric features, identical
seeding discipline): the surrogate mode the adaptive design-space
explorer uses to predict sweep scores straight from quadruple features.
"""

from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.regress import DecisionTreeRegressor, RandomForestRegressor
from repro.ml.features import FEATURE_DOC, build_feature_matrix, feature_names
from repro.ml.dataset import BitDataset, build_bit_datasets, collect_bit_datasets
from repro.ml.model import BitLevelTimingModel, TimingModelOptions
from repro.ml.metrics import abper, avpe, classification_summary

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "FEATURE_DOC",
    "build_feature_matrix",
    "feature_names",
    "BitDataset",
    "build_bit_datasets",
    "collect_bit_datasets",
    "BitLevelTimingModel",
    "TimingModelOptions",
    "abper",
    "avpe",
    "classification_summary",
]
