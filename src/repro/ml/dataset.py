"""Dataset assembly for the per-bit timing-error classifiers.

This module corresponds to the "Data Collection" half of Fig. 3 of the
paper: pair the operand trace (stimulus) with the golden outputs (RTL
reference) and the delay-annotated gate-level simulation outcome (timing
classes at an unsafe clock period), and turn them into one labelled
dataset per output bit.

Collection at scale goes through the execution runtime:
:func:`collect_bit_datasets` submits a batch of characterization jobs to
a backend (serial or multiprocess) and assembles the labelled datasets
from the returned golden words and timing traces, so dataset generation
for many designs parallelises exactly like the figure drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime -> ml)
    from repro.runtime import CharacterizationJob

from repro.exceptions import ModelError
from repro.ml.features import build_feature_matrix
from repro.timing.errors import TimingErrorTrace
from repro.workloads.traces import OperandTrace


@dataclass(frozen=True)
class BitDataset:
    """Labelled training data for one output-bit classifier.

    ``labels`` follow the paper's convention: 1 = timing-erroneous,
    0 = timing-correct (the classifier learns to flag errors).
    """

    bit: int
    features: np.ndarray
    labels: np.ndarray

    @property
    def samples(self) -> int:
        """Number of labelled transitions."""
        return int(self.features.shape[0])

    @property
    def error_rate(self) -> float:
        """Fraction of transitions where this bit was timing-erroneous."""
        if self.samples == 0:
            return 0.0
        return float(self.labels.mean())


def build_bit_datasets(trace: OperandTrace, gold_words: np.ndarray,
                       timing_trace: TimingErrorTrace,
                       family=None) -> List[BitDataset]:
    """One :class:`BitDataset` per output bit of the characterized design.

    Parameters
    ----------
    trace:
        The stimulus applied to the circuit (length ``T``).
    gold_words:
        Golden outputs of the implemented design for every vector
        (length ``T``).
    timing_trace:
        Result of simulating the ``T - 1`` transitions at the unsafe
        clock period under study.
    family:
        The design's :class:`~repro.families.base.OperatorFamily`,
        whose :meth:`~repro.families.base.OperatorFamily.feature_matrix`
        extracts the per-bit features (default: the paper's
        :func:`~repro.ml.features.build_feature_matrix`, which every
        shipped family currently delegates to).
    """
    gold_words = np.asarray(gold_words, dtype=np.uint64)
    if timing_trace.cycles != trace.transitions:
        raise ModelError(
            f"timing trace has {timing_trace.cycles} transitions but the stimulus "
            f"has {trace.transitions}")
    featurize = build_feature_matrix if family is None else family.feature_matrix
    error_bits = timing_trace.error_bits()
    datasets: List[BitDataset] = []
    for bit in range(timing_trace.output_width):
        features = featurize(trace, gold_words, bit)
        labels = error_bits[:, bit].astype(np.uint8)
        datasets.append(BitDataset(bit=bit, features=features, labels=labels))
    return datasets


def dataset_summary(datasets: List[BitDataset]) -> Dict[int, float]:
    """Per-bit timing-error rates of a dataset collection (diagnostic helper)."""
    return {dataset.bit: dataset.error_rate for dataset in datasets}


def collect_bit_datasets(jobs: Sequence["CharacterizationJob"], backend="serial",
                         workers: Optional[int] = None,
                         cache_dir: Optional[str] = None,
                         plan: bool = True
                         ) -> List[Dict[float, List[BitDataset]]]:
    """Characterise a batch of jobs and assemble their per-bit datasets.

    Each job is executed on the requested runtime backend; for every
    clock period of the job the characterisation's golden words and
    timing trace become one :class:`BitDataset` list.  The result is one
    ``{clock_period: [BitDataset, ...]}`` dict per job, in submission
    order — ready for :meth:`BitLevelTimingModel.fit` at any CPR level.
    ``cache_dir`` fronts the backend with the persistent result cache,
    so re-collecting the same jobs skips simulation entirely; ``plan``
    (default on) batches jobs sharing a design and clock plan through
    the execution planner — dataset collection for one design over many
    traces is a single stacked simulation.
    """
    from repro.families import family_of  # deferred: keeps repro.ml importable standalone
    from repro.runtime import run_jobs

    results = run_jobs(jobs, backend=backend, workers=workers, cache_dir=cache_dir,
                       plan=plan)
    collected: List[Dict[float, List[BitDataset]]] = []
    for job, characterization in zip(jobs, results):
        family = family_of(job.entry)
        collected.append({
            clock: build_bit_datasets(job.trace, characterization.gold_words, timing,
                                      family=family)
            for clock, timing in characterization.timing_traces.items()
        })
    return collected
