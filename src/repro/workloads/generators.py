"""Workload generators producing :class:`~repro.workloads.traces.OperandTrace`.

``uniform_workload`` reproduces the paper's characterisation input (IID
uniform unsigned operands).  The other generators model the input classes
the paper's introduction motivates (sensor streams, multimedia data):
temporally correlated values, Gaussian-distributed magnitudes, sparse
activity and deterministic ramps.  They are used by the examples and by
the workload-sensitivity extension benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import WorkloadError
from repro.utils.bitops import mask
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability
from repro.workloads.traces import OperandTrace


@dataclass(frozen=True)
class WorkloadSpec:
    """Named recipe for generating an operand trace (used by experiment configs)."""

    kind: str
    length: int
    width: int = 32
    seed: Optional[int] = None
    parameters: tuple = ()

    def generate(self) -> OperandTrace:
        """Materialise the trace described by this spec."""
        if self.kind not in GENERATORS:
            raise WorkloadError(f"unknown workload kind {self.kind!r}; known: {sorted(GENERATORS)}")
        return GENERATORS[self.kind](self.length, width=self.width, seed=self.seed,
                                     **dict(self.parameters))


def _empty_guard(length: int) -> int:
    return check_positive_int("length", length)


def uniform_workload(length: int, width: int = 32, seed: SeedLike = None) -> OperandTrace:
    """IID uniform unsigned operands — the paper's characterisation workload."""
    _empty_guard(length)
    rng = ensure_rng(seed)
    limit = mask(width) + 1
    a = rng.integers(0, limit, size=length, dtype=np.uint64)
    b = rng.integers(0, limit, size=length, dtype=np.uint64)
    return OperandTrace(a, b, width, name=f"uniform{width}x{length}")


def correlated_workload(length: int, width: int = 32, seed: SeedLike = None,
                        correlation: float = 0.95) -> OperandTrace:
    """Temporally correlated operands (first-order low-pass of a random walk).

    Models slowly varying sensor values: consecutive vectors differ in a
    limited number of low-order bits, which reduces switching activity and
    therefore timing-error exposure — the effect the workload-sensitivity
    benchmark quantifies.
    """
    _empty_guard(length)
    check_probability("correlation", correlation)
    rng = ensure_rng(seed)
    limit = float(mask(width))
    scale = limit * (1.0 - correlation) / 2.0

    def walk() -> np.ndarray:
        values = np.empty(length, dtype=np.float64)
        values[0] = rng.uniform(0, limit)
        steps = rng.normal(0.0, scale, size=length)
        for index in range(1, length):
            proposal = correlation * values[index - 1] + (1 - correlation) * limit / 2 + steps[index]
            values[index] = min(max(proposal, 0.0), limit)
        return values.astype(np.uint64)

    return OperandTrace(walk(), walk(), width, name=f"correlated{width}x{length}")


def gaussian_workload(length: int, width: int = 32, seed: SeedLike = None,
                      mean_fraction: float = 0.5, std_fraction: float = 0.15) -> OperandTrace:
    """Gaussian-distributed magnitudes (clipped), typical of filtered signals."""
    _empty_guard(length)
    rng = ensure_rng(seed)
    limit = float(mask(width))
    mean = limit * mean_fraction
    std = limit * std_fraction

    def draw() -> np.ndarray:
        values = rng.normal(mean, std, size=length)
        return np.clip(values, 0.0, limit).astype(np.uint64)

    return OperandTrace(draw(), draw(), width, name=f"gaussian{width}x{length}")


def sparse_workload(length: int, width: int = 32, seed: SeedLike = None,
                    density: float = 0.2) -> OperandTrace:
    """Operands with mostly-zero high-order bits (sparse sensor activity)."""
    _empty_guard(length)
    check_probability("density", density)
    rng = ensure_rng(seed)
    limit = mask(width) + 1

    def draw() -> np.ndarray:
        values = rng.integers(0, limit, size=length, dtype=np.uint64)
        active = rng.random(size=length) < density
        small = rng.integers(0, mask(max(width // 4, 1)) + 1, size=length, dtype=np.uint64)
        return np.where(active, values, small)

    return OperandTrace(draw(), draw(), width, name=f"sparse{width}x{length}")


def ramp_workload(length: int, width: int = 32, seed: SeedLike = None,
                  step: int = 1) -> OperandTrace:
    """Deterministic ramps — handy for debugging and directed tests."""
    _empty_guard(length)
    check_positive_int("step", step)
    limit = mask(width) + 1
    indices = np.arange(length, dtype=np.uint64)
    a = (indices * np.uint64(step)) % np.uint64(limit)
    b = (indices * np.uint64(step) * np.uint64(3) + np.uint64(12345)) % np.uint64(limit)
    return OperandTrace(a, b, width, name=f"ramp{width}x{length}")


#: Registry of workload generators by kind — the single source of truth
#: behind :meth:`WorkloadSpec.generate` and the ``repro-explore``
#: ``--workloads`` choices.
GENERATORS: Dict[str, Callable[..., OperandTrace]] = {
    "uniform": uniform_workload,
    "correlated": correlated_workload,
    "gaussian": gaussian_workload,
    "sparse": sparse_workload,
    "ramp": ramp_workload,
}
