"""Operand-trace container shared by behavioural and gate-level flows."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import WorkloadError
from repro.utils.bitops import mask

#: Trailing slice suffix of a derived trace name (``base[start:stop]``,
#: with either bound possibly omitted as in ``base[:100]`` / ``base[50:]``).
_SLICE_SUFFIX = re.compile(r"^(?P<base>.*)\[(?P<start>\d*):(?P<stop>\d*)\]$")


@dataclass(frozen=True)
class OperandTrace:
    """A sequence of operand pairs applied cycle by cycle to an adder.

    The trace is the unit of work everywhere in the library: the
    behavioural models consume ``a``/``b`` directly, the timing simulators
    consume the dict produced by :meth:`as_operands` (adding the carry-in
    net), and the ML feature extraction uses consecutive pairs of vectors.
    """

    a: np.ndarray
    b: np.ndarray
    width: int
    name: str = "trace"

    def __post_init__(self) -> None:
        a = np.asarray(self.a, dtype=np.uint64)
        b = np.asarray(self.b, dtype=np.uint64)
        if a.shape != b.shape or a.ndim != 1:
            raise WorkloadError("operand arrays must be one-dimensional and equally long")
        limit = mask(self.width)
        if a.size and (int(a.max()) > limit or int(b.max()) > limit):
            raise WorkloadError(f"operands exceed the unsigned {self.width}-bit range")
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    @property
    def length(self) -> int:
        """Number of input vectors."""
        return int(self.a.shape[0])

    @property
    def transitions(self) -> int:
        """Number of input transitions the timing simulators will exercise."""
        return max(self.length - 1, 0)

    def as_operands(self, cin: int = 0) -> Dict[str, np.ndarray]:
        """Dict understood by the timing simulators (buses ``A``/``B`` plus ``cin``)."""
        return {
            "A": self.a,
            "B": self.b,
            "cin": np.full(self.length, cin, dtype=np.uint64),
        }

    def slice(self, start: int, stop: int) -> "OperandTrace":
        """Sub-trace of vectors ``[start, stop)``.

        This is the chunking primitive of the execution runtime: a chunk
        of transitions ``[s, e)`` is simulated from the vector slice
        ``[s, e + 1)`` (one vector of overlap with the preceding chunk).

        Slicing a slice composes the offsets, so the name always shows
        positions in the *original* trace: ``trace[64:128]`` sliced at
        ``[0, 32)`` is named ``trace[64:96]``, not ``trace[64:128][0:32]``.
        """
        if not 0 <= start < stop <= self.length:
            raise WorkloadError(
                f"invalid trace slice [{start}, {stop}) of a {self.length}-vector trace")
        base, offset = self.name, 0
        match = _SLICE_SUFFIX.match(self.name)
        if match:
            base = match.group("base")
            offset = int(match.group("start") or 0)
        return OperandTrace(a=self.a[start:stop], b=self.b[start:stop], width=self.width,
                            name=f"{base}[{offset + start}:{offset + stop}]")

    def split(self, fraction: float) -> Tuple["OperandTrace", "OperandTrace"]:
        """Split into a leading and trailing trace (e.g. training vs evaluation)."""
        if not 0.0 < fraction < 1.0:
            raise WorkloadError(f"split fraction must lie in (0, 1), got {fraction}")
        cut = int(round(self.length * fraction))
        if cut < 2 or self.length - cut < 2:
            raise WorkloadError("split would leave a trace with fewer than two vectors")
        first = OperandTrace(self.a[:cut], self.b[:cut], self.width, f"{self.name}[:{cut}]")
        second = OperandTrace(self.a[cut:], self.b[cut:], self.width, f"{self.name}[{cut}:]")
        return first, second

    def take(self, count: int) -> "OperandTrace":
        """First ``count`` vectors of the trace."""
        if count > self.length:
            raise WorkloadError(f"cannot take {count} vectors from a trace of {self.length}")
        return OperandTrace(self.a[:count], self.b[:count], self.width, f"{self.name}[:{count}]")

    def __len__(self) -> int:
        return self.length
