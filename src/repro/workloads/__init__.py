"""Input workload generation for adder characterisation.

The paper characterises its adders with ten million uniformly random
unsigned inputs.  This package provides that workload plus several
correlated/structured workloads used by the examples and extension
experiments (multimedia-style streams, sparse sensor data, ramps).
"""

from repro.workloads.generators import (
    WorkloadSpec,
    correlated_workload,
    gaussian_workload,
    ramp_workload,
    sparse_workload,
    uniform_workload,
)
from repro.workloads.traces import OperandTrace

__all__ = [
    "WorkloadSpec",
    "OperandTrace",
    "uniform_workload",
    "correlated_workload",
    "gaussian_workload",
    "sparse_workload",
    "ramp_workload",
]
