"""Functional models of the standard-cell set.

Each :class:`Cell` has a name, an input arity and a vectorised evaluation
function working on NumPy ``uint8`` arrays of 0/1 values (plain Python
ints also work because NumPy broadcasting handles scalars).  The cell set
is intentionally small — the adder generators in :mod:`repro.synth` only
need basic gates — but large enough to express carry-look-ahead,
parallel-prefix and compensation logic compactly.

Every cell additionally carries a *packed* kernel operating on ``uint64``
words whose 64 bits are 64 independent simulation cycles.  The packed
kernels are what the compiled engine in :mod:`repro.circuit.compiled`
executes: one NumPy bitwise operation evaluates a gate for 64 cycles at
once.  Packed kernels express inversion as bitwise NOT (``~``) instead of
``1 - x`` so every bit lane stays independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.exceptions import NetlistError

BitArray = np.ndarray
EvalFn = Callable[..., BitArray]


def _u8(value) -> np.ndarray:
    return np.asarray(value, dtype=np.uint8)


def _inv(a):
    return _u8(1) - _u8(a)


def _buf(a):
    return _u8(a)


def _and2(a, b):
    return _u8(a) & _u8(b)


def _or2(a, b):
    return _u8(a) | _u8(b)


def _nand2(a, b):
    return _inv(_and2(a, b))


def _nor2(a, b):
    return _inv(_or2(a, b))


def _xor2(a, b):
    return _u8(a) ^ _u8(b)


def _xnor2(a, b):
    return _inv(_xor2(a, b))


def _and3(a, b, c):
    return _u8(a) & _u8(b) & _u8(c)


def _or3(a, b, c):
    return _u8(a) | _u8(b) | _u8(c)


def _mux2(d0, d1, sel):
    sel = _u8(sel)
    return (_u8(d0) & (_u8(1) - sel)) | (_u8(d1) & sel)


def _maj3(a, b, c):
    a, b, c = _u8(a), _u8(b), _u8(c)
    return (a & b) | (a & c) | (b & c)


def _aoi21(a, b, c):
    """Inverted (a AND b) OR c — a common compact carry cell."""
    return _inv((_u8(a) & _u8(b)) | _u8(c))


def _oai21(a, b, c):
    """Inverted (a OR b) AND c."""
    return _inv((_u8(a) | _u8(b)) & _u8(c))


# --------------------------------------------------------------------- #
# Packed (64-cycles-per-word) kernels.  Operands are uint64 arrays whose
# bits are independent cycles, so inversion must be bitwise NOT.
# --------------------------------------------------------------------- #
def _p_inv(a):
    return ~a


def _p_buf(a):
    return a.copy()


def _p_and2(a, b):
    return a & b


def _p_or2(a, b):
    return a | b


def _p_nand2(a, b):
    return ~(a & b)


def _p_nor2(a, b):
    return ~(a | b)


def _p_xor2(a, b):
    return a ^ b


def _p_xnor2(a, b):
    return ~(a ^ b)


def _p_and3(a, b, c):
    return a & b & c


def _p_or3(a, b, c):
    return a | b | c


def _p_mux2(d0, d1, sel):
    return (d0 & ~sel) | (d1 & sel)


def _p_maj3(a, b, c):
    return (a & b) | (a & c) | (b & c)


def _p_aoi21(a, b, c):
    return ~((a & b) | c)


def _p_oai21(a, b, c):
    return ~((a | b) & c)


@dataclass(frozen=True)
class Cell:
    """A standard cell: name, port names and boolean function.

    ``packed_function`` is the bit-parallel kernel used by the compiled
    engine; cells without one fall back to the per-cycle ``uint8`` path.
    """

    name: str
    inputs: Sequence[str]
    function: EvalFn
    description: str = ""
    packed_function: Optional[EvalFn] = None

    @property
    def arity(self) -> int:
        """Number of input pins."""
        return len(self.inputs)

    def evaluate(self, *operands) -> BitArray:
        """Evaluate the cell on 0/1 scalars or arrays."""
        if len(operands) != self.arity:
            raise NetlistError(
                f"cell {self.name} expects {self.arity} inputs, got {len(operands)}")
        return self.function(*operands)


CELLS: Dict[str, Cell] = {
    "INV": Cell("INV", ("a",), _inv, "inverter", _p_inv),
    "BUF": Cell("BUF", ("a",), _buf, "buffer", _p_buf),
    "AND2": Cell("AND2", ("a", "b"), _and2, "2-input AND", _p_and2),
    "OR2": Cell("OR2", ("a", "b"), _or2, "2-input OR", _p_or2),
    "NAND2": Cell("NAND2", ("a", "b"), _nand2, "2-input NAND", _p_nand2),
    "NOR2": Cell("NOR2", ("a", "b"), _nor2, "2-input NOR", _p_nor2),
    "XOR2": Cell("XOR2", ("a", "b"), _xor2, "2-input XOR", _p_xor2),
    "XNOR2": Cell("XNOR2", ("a", "b"), _xnor2, "2-input XNOR", _p_xnor2),
    "AND3": Cell("AND3", ("a", "b", "c"), _and3, "3-input AND", _p_and3),
    "OR3": Cell("OR3", ("a", "b", "c"), _or3, "3-input OR", _p_or3),
    "MUX2": Cell("MUX2", ("d0", "d1", "sel"), _mux2, "2:1 multiplexer", _p_mux2),
    "MAJ3": Cell("MAJ3", ("a", "b", "c"), _maj3, "3-input majority (carry cell)", _p_maj3),
    "AOI21": Cell("AOI21", ("a", "b", "c"), _aoi21, "AND-OR-invert 2-1", _p_aoi21),
    "OAI21": Cell("OAI21", ("a", "b", "c"), _oai21, "OR-AND-invert 2-1", _p_oai21),
}


def cell(name: str) -> Cell:
    """Look up a cell by name, raising :class:`NetlistError` for unknown cells."""
    try:
        return CELLS[name]
    except KeyError:
        raise NetlistError(f"unknown cell type {name!r}; known cells: {sorted(CELLS)}") from None
