"""Functional models of the standard-cell set.

Each :class:`Cell` has a name, an input arity and a vectorised evaluation
function working on NumPy ``uint8`` arrays of 0/1 values (plain Python
ints also work because NumPy broadcasting handles scalars).  The cell set
is intentionally small — the adder generators in :mod:`repro.synth` only
need basic gates — but large enough to express carry-look-ahead,
parallel-prefix and compensation logic compactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.exceptions import NetlistError

BitArray = np.ndarray
EvalFn = Callable[..., BitArray]


def _u8(value) -> np.ndarray:
    return np.asarray(value, dtype=np.uint8)


def _inv(a):
    return _u8(1) - _u8(a)


def _buf(a):
    return _u8(a)


def _and2(a, b):
    return _u8(a) & _u8(b)


def _or2(a, b):
    return _u8(a) | _u8(b)


def _nand2(a, b):
    return _inv(_and2(a, b))


def _nor2(a, b):
    return _inv(_or2(a, b))


def _xor2(a, b):
    return _u8(a) ^ _u8(b)


def _xnor2(a, b):
    return _inv(_xor2(a, b))


def _and3(a, b, c):
    return _u8(a) & _u8(b) & _u8(c)


def _or3(a, b, c):
    return _u8(a) | _u8(b) | _u8(c)


def _mux2(d0, d1, sel):
    sel = _u8(sel)
    return (_u8(d0) & (_u8(1) - sel)) | (_u8(d1) & sel)


def _maj3(a, b, c):
    a, b, c = _u8(a), _u8(b), _u8(c)
    return (a & b) | (a & c) | (b & c)


def _aoi21(a, b, c):
    """Inverted (a AND b) OR c — a common compact carry cell."""
    return _inv((_u8(a) & _u8(b)) | _u8(c))


def _oai21(a, b, c):
    """Inverted (a OR b) AND c."""
    return _inv((_u8(a) | _u8(b)) & _u8(c))


@dataclass(frozen=True)
class Cell:
    """A standard cell: name, port names and boolean function."""

    name: str
    inputs: Sequence[str]
    function: EvalFn
    description: str = ""

    @property
    def arity(self) -> int:
        """Number of input pins."""
        return len(self.inputs)

    def evaluate(self, *operands) -> BitArray:
        """Evaluate the cell on 0/1 scalars or arrays."""
        if len(operands) != self.arity:
            raise NetlistError(
                f"cell {self.name} expects {self.arity} inputs, got {len(operands)}")
        return self.function(*operands)


CELLS: Dict[str, Cell] = {
    "INV": Cell("INV", ("a",), _inv, "inverter"),
    "BUF": Cell("BUF", ("a",), _buf, "buffer"),
    "AND2": Cell("AND2", ("a", "b"), _and2, "2-input AND"),
    "OR2": Cell("OR2", ("a", "b"), _or2, "2-input OR"),
    "NAND2": Cell("NAND2", ("a", "b"), _nand2, "2-input NAND"),
    "NOR2": Cell("NOR2", ("a", "b"), _nor2, "2-input NOR"),
    "XOR2": Cell("XOR2", ("a", "b"), _xor2, "2-input XOR"),
    "XNOR2": Cell("XNOR2", ("a", "b"), _xnor2, "2-input XNOR"),
    "AND3": Cell("AND3", ("a", "b", "c"), _and3, "3-input AND"),
    "OR3": Cell("OR3", ("a", "b", "c"), _or3, "3-input OR"),
    "MUX2": Cell("MUX2", ("d0", "d1", "sel"), _mux2, "2:1 multiplexer"),
    "MAJ3": Cell("MAJ3", ("a", "b", "c"), _maj3, "3-input majority (carry cell)"),
    "AOI21": Cell("AOI21", ("a", "b", "c"), _aoi21, "AND-OR-invert 2-1"),
    "OAI21": Cell("OAI21", ("a", "b", "c"), _oai21, "OR-AND-invert 2-1"),
}


def cell(name: str) -> Cell:
    """Look up a cell by name, raising :class:`NetlistError` for unknown cells."""
    try:
        return CELLS[name]
    except KeyError:
        raise NetlistError(f"unknown cell type {name!r}; known cells: {sorted(CELLS)}") from None
