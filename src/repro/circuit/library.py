"""Technology library: nominal cell delays and legal sizing ranges.

The paper synthesizes its adders in an industrial 65 nm library.  We
replace that with a synthetic library whose *relative* delays are typical
of static CMOS standard cells and whose absolute scale is calibrated so a
32-bit exact carry-look-ahead adder has a critical path close to the
paper's 0.3 ns constraint.  Only relative delays and the ratio between
the clock period and the critical path matter for the paper's
conclusions.

The library also bounds how much the sizing step (:mod:`repro.synth.sizing`)
may slow down (down-size for power) or speed up (up-size) each instance,
which is what produces the realistic "slack wall" of near-critical paths
in synthesized circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Mapping, Optional

from repro.circuit.cells import CELLS
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, ensure_rng

PICOSECONDS = 1e-12

#: Relative delays (arbitrary units) of the cell set, typical of static CMOS.
_RELATIVE_DELAYS: Mapping[str, float] = {
    "INV": 8.0,
    "BUF": 10.0,
    "NAND2": 10.0,
    "NOR2": 11.0,
    "AND2": 13.0,
    "OR2": 13.0,
    "AND3": 16.0,
    "OR3": 16.0,
    "XOR2": 19.0,
    "XNOR2": 19.0,
    "MUX2": 17.0,
    "MAJ3": 19.0,
    "AOI21": 12.0,
    "OAI21": 12.0,
}

#: Calibration factor mapping the relative delays to picoseconds.  It is
#: chosen so that the 32-bit exact Kogge-Stone adder lands slightly above
#: the paper's 0.3 ns constraint before up-sizing (an exact 32-bit adder
#: at 3.3 GHz is marginal in worst-corner 65 nm — which is precisely the
#: paper's motivation for speculative adders), while the ISA designs fit
#: the constraint.  See DESIGN.md, "Clock calibration".
DEFAULT_CALIBRATION = 1.96

#: Nominal delays in picoseconds for the default 65 nm-like library.
DEFAULT_DELAYS_PS: Mapping[str, float] = {
    cell_name: delay * DEFAULT_CALIBRATION for cell_name, delay in _RELATIVE_DELAYS.items()
}


@dataclass(frozen=True)
class CellTiming:
    """Timing view of one cell: nominal delay and legal sizing factors."""

    nominal_delay: float
    min_scale: float = 0.88
    max_scale: float = 1.85

    def __post_init__(self) -> None:
        if self.nominal_delay <= 0:
            raise ConfigurationError(f"nominal_delay must be positive, got {self.nominal_delay}")
        if not 0 < self.min_scale <= 1.0:
            raise ConfigurationError(f"min_scale must lie in (0, 1], got {self.min_scale}")
        if self.max_scale < 1.0:
            raise ConfigurationError(f"max_scale must be >= 1, got {self.max_scale}")

    @property
    def min_delay(self) -> float:
        """Fastest legal delay (maximum up-sizing)."""
        return self.nominal_delay * self.min_scale

    @property
    def max_delay(self) -> float:
        """Slowest legal delay (maximum down-sizing for power recovery)."""
        return self.nominal_delay * self.max_scale


class TechnologyLibrary:
    """A collection of :class:`CellTiming` entries keyed by cell name."""

    def __init__(self, delays_ps: Optional[Mapping[str, float]] = None,
                 min_scale: float = 0.88, max_scale: float = 1.85,
                 name: str = "synthetic65") -> None:
        delays_ps = dict(DEFAULT_DELAYS_PS if delays_ps is None else delays_ps)
        unknown = set(delays_ps) - set(CELLS)
        if unknown:
            raise ConfigurationError(f"library defines delays for unknown cells: {sorted(unknown)}")
        missing = set(CELLS) - set(delays_ps)
        if missing:
            raise ConfigurationError(f"library is missing delays for cells: {sorted(missing)}")
        self.name = name
        self._timing: Dict[str, CellTiming] = {
            cell_name: CellTiming(nominal_delay=delay * PICOSECONDS,
                                  min_scale=min_scale, max_scale=max_scale)
            for cell_name, delay in delays_ps.items()
        }

    # ------------------------------------------------------------------ #
    def _value_key(self) -> tuple:
        return (self.name, tuple(sorted(self._timing.items())))

    def __eq__(self, other: object) -> bool:
        """Libraries compare by content (name and per-cell timing).

        Value semantics matter for caching: the runtime's worker caches
        key on :class:`~repro.synth.flow.SynthesisOptions`, and every
        pickled task delivers a fresh library object — identity equality
        would defeat the cache for any custom library.
        """
        if not isinstance(other, TechnologyLibrary):
            return NotImplemented
        return self._value_key() == other._value_key()

    def __hash__(self) -> int:
        return hash(self._value_key())

    # ------------------------------------------------------------------ #
    def timing(self, cell_name: str) -> CellTiming:
        """Timing view of one cell."""
        try:
            return self._timing[cell_name]
        except KeyError:
            raise ConfigurationError(f"library {self.name!r} has no cell {cell_name!r}") from None

    def delay(self, cell_name: str) -> float:
        """Nominal delay (seconds) of one cell."""
        return self.timing(cell_name).nominal_delay

    def cell_names(self) -> Iterable[str]:
        """Names of all cells in the library."""
        return self._timing.keys()

    # ------------------------------------------------------------------ #
    def scaled(self, factor: float, name: Optional[str] = None) -> "TechnologyLibrary":
        """Return a copy of the library with every delay multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        library = TechnologyLibrary.__new__(TechnologyLibrary)
        library.name = name or f"{self.name}_x{factor:g}"
        library._timing = {
            cell_name: replace(timing, nominal_delay=timing.nominal_delay * factor)
            for cell_name, timing in self._timing.items()
        }
        return library

    def with_variation(self, sigma: float, seed: SeedLike = None,
                       name: Optional[str] = None) -> "TechnologyLibrary":
        """Return a copy with log-normal process variation applied per cell type.

        ``sigma`` is the relative standard deviation of the delay (e.g.
        0.05 for 5 %).  Per-instance variation is applied separately by
        the synthesis flow; this models a global process corner.
        """
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        rng = ensure_rng(seed)
        library = TechnologyLibrary.__new__(TechnologyLibrary)
        library.name = name or f"{self.name}_var{sigma:g}"
        library._timing = {
            cell_name: replace(timing,
                               nominal_delay=timing.nominal_delay * float(rng.lognormal(0.0, sigma)))
            for cell_name, timing in self._timing.items()
        }
        return library

    def __contains__(self, cell_name: str) -> bool:
        return cell_name in self._timing

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TechnologyLibrary({self.name!r}, {len(self._timing)} cells)"


def default_library() -> TechnologyLibrary:
    """The default 65 nm-like library used across experiments."""
    return TechnologyLibrary()
