"""Netlist graph and zero-delay logic evaluation.

A :class:`Netlist` is a flat gate-level description: named nets, primary
inputs/outputs, and :class:`Gate` instances referencing cells from
:mod:`repro.circuit.cells`.  Nets are identified by strings; the special
nets :data:`CONST0` and :data:`CONST1` are always available and carry
constant values.

Buses (e.g. the 32 bits of operand ``A``) are registered by the adder
generators so that encoding integer operands into per-net values and
decoding output words back into integers is uniform across the library.

Evaluation comes in two tiers.  The *reference* tier walks the gates in
topological order with per-gate ``uint8`` NumPy calls (exact, works on
any stimulus shape).  The *compiled* tier lowers the netlist once into a
bit-packed :class:`~repro.circuit.compiled.CompiledProgram` (64 cycles
per ``uint64`` word) and is used transparently by :meth:`Netlist.evaluate`
and :meth:`Netlist.compute_words` whenever the stimulus is a batch of
1-D cycle arrays; both tiers are bit-exact against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuit.cells import CELLS, Cell, cell
from repro.exceptions import CompilationError, NetlistError, SimulationError
from repro.utils.bitops import mask

#: Name of the always-zero net.
CONST0 = "const0"
#: Name of the always-one net.
CONST1 = "const1"

BitValues = Union[int, np.ndarray]


@dataclass(frozen=True)
class Gate:
    """One cell instance: a named gate driving exactly one net."""

    name: str
    cell: str
    inputs: Tuple[str, ...]
    output: str

    @property
    def cell_def(self) -> Cell:
        """The functional cell definition backing this instance."""
        return cell(self.cell)


class Netlist:
    """A combinational gate-level netlist.

    Only combinational logic is modelled: the adders under study are
    combinational blocks between input and output registers, and the
    two-vector timing simulation in :mod:`repro.timing` models the
    registers implicitly.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: List[Gate] = []
        self.buses: Dict[str, List[str]] = {}
        self._drivers: Dict[str, Gate] = {}
        self._gate_names: Dict[str, Gate] = {}
        self._nets: Dict[str, None] = {CONST0: None, CONST1: None}
        self._order_cache: Optional[List[Gate]] = None
        self._eval_plan: Optional[List[Tuple[Callable, Tuple[str, ...], str]]] = None
        self._compiled_cache = None  # CompiledProgram, or False when uncompilable

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_input(self, net: str) -> str:
        """Declare a primary input net and return its name."""
        if net in self._nets:
            raise NetlistError(f"net {net!r} already exists in netlist {self.name!r}")
        self._nets[net] = None
        self.inputs.append(net)
        self._invalidate_caches()
        return net

    def add_output(self, net: str) -> str:
        """Mark an existing net as a primary output (order of calls is the bit order)."""
        if net not in self._nets:
            raise NetlistError(f"cannot mark unknown net {net!r} as output")
        self.outputs.append(net)
        return net

    def add_gate(self, name: str, cell_name: str, inputs: Sequence[str], output: str) -> Gate:
        """Instantiate a cell driving a new net ``output``."""
        if name in self._gate_names:
            raise NetlistError(f"gate name {name!r} already used")
        cell_def = cell(cell_name)
        if len(inputs) != cell_def.arity:
            raise NetlistError(
                f"gate {name!r}: cell {cell_name} expects {cell_def.arity} inputs, "
                f"got {len(inputs)}")
        for net in inputs:
            if net not in self._nets:
                raise NetlistError(f"gate {name!r} reads undeclared net {net!r}")
        if output in self._nets:
            raise NetlistError(f"gate {name!r} would redefine existing net {output!r}")
        gate = Gate(name=name, cell=cell_name, inputs=tuple(inputs), output=output)
        self._nets[output] = None
        self._drivers[output] = gate
        self._gate_names[name] = gate
        self.gates.append(gate)
        self._invalidate_caches()
        return gate

    def install_gates(self, records: Sequence[Tuple[str, str, Tuple[str, ...], str]]) -> None:
        """Bulk-append pre-validated ``(name, cell, inputs, output)`` gates.

        Trusted fast path for callers that already uphold every invariant
        :meth:`add_gate` checks — unique gate and net names, declared
        inputs, correct arity, topological order.  The indexed optimizer
        guarantees these by construction when materialising its result
        (and the synthesis flow re-verifies with ``check_netlist``).
        """
        nets = self._nets
        drivers = self._drivers
        gate_names = self._gate_names
        append = self.gates.append
        for name, cell_name, inputs, output in records:
            gate = Gate(name=name, cell=cell_name, inputs=inputs, output=output)
            nets[output] = None
            drivers[output] = gate
            gate_names[name] = gate
            append(gate)
        self._invalidate_caches()

    def register_bus(self, name: str, nets: Sequence[str]) -> None:
        """Associate an ordered list of nets (LSB first) with a bus name."""
        for net in nets:
            if net not in self._nets:
                raise NetlistError(f"bus {name!r} references unknown net {net!r}")
        self.buses[name] = list(nets)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def nets(self) -> Iterable[str]:
        """All net names, including constants."""
        return self._nets.keys()

    @property
    def num_gates(self) -> int:
        """Number of cell instances."""
        return len(self.gates)

    def driver_of(self, net: str) -> Optional[Gate]:
        """Gate driving ``net`` or None for inputs/constants."""
        return self._drivers.get(net)

    def gate(self, name: str) -> Gate:
        """Look up a gate instance by name."""
        try:
            return self._gate_names[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r} in netlist {self.name!r}") from None

    def fanout_map(self) -> Dict[str, List[Gate]]:
        """Map from net name to the gates reading it."""
        fanout: Dict[str, List[Gate]] = {net: [] for net in self._nets}
        for gate in self.gates:
            for net in gate.inputs:
                fanout[net].append(gate)
        return fanout

    def cell_histogram(self) -> Dict[str, int]:
        """Number of instances of each cell type."""
        histogram: Dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.cell] = histogram.get(gate.cell, 0) + 1
        return histogram

    def logic_depth(self) -> int:
        """Maximum number of gates on any input-to-output path."""
        depth: Dict[str, int] = {net: 0 for net in self._nets}
        for gate in self.topological_order():
            depth[gate.output] = 1 + max((depth[net] for net in gate.inputs), default=0)
        return max((depth[net] for net in self.outputs), default=0)

    # ------------------------------------------------------------------ #
    # Ordering and evaluation
    # ------------------------------------------------------------------ #
    def _invalidate_caches(self) -> None:
        self._order_cache = None
        self._eval_plan = None
        self._compiled_cache = None

    def evaluation_plan(self) -> List[Tuple[Callable, Tuple[str, ...], str]]:
        """Cached ``(cell function, input nets, output net)`` triples.

        Resolving each gate's cell definition once here keeps the
        reference evaluation loop free of per-call dictionary lookups.
        """
        if self._eval_plan is None:
            self._eval_plan = [(cell(gate.cell).function, gate.inputs, gate.output)
                               for gate in self.topological_order()]
        return self._eval_plan

    def compiled(self):
        """The cached bit-packed program for this netlist, or ``None``.

        Compilation happens at most once per topology; netlists using a
        cell without a packed kernel simply report ``None`` and stay on
        the reference evaluation path.
        """
        if self._compiled_cache is None:
            from repro.circuit.compiled import compile_netlist
            try:
                self._compiled_cache = compile_netlist(self)
            except CompilationError:
                self._compiled_cache = False
        return self._compiled_cache or None

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the derived caches.

        The evaluation plan and the compiled programs hold kernel
        references and large index arrays that are cheaper to rebuild in
        the receiving process (where they are cached again) than to
        serialise — this is what lets the multiprocess runtime backend
        ship netlists to workers.
        """
        state = self.__dict__.copy()
        state["_order_cache"] = None
        state["_eval_plan"] = None
        state["_compiled_cache"] = None
        return state

    def topological_order(self) -> List[Gate]:
        """Gates ordered so every gate appears after its drivers.

        Because :meth:`add_gate` refuses to read undeclared nets, the
        insertion order is already topological; this method validates the
        invariant and caches the result.
        """
        if self._order_cache is not None:
            return self._order_cache
        seen = set(self.inputs) | {CONST0, CONST1}
        for gate in self.gates:
            for net in gate.inputs:
                if net not in seen:
                    raise NetlistError(
                        f"netlist {self.name!r} is not topologically ordered: gate "
                        f"{gate.name!r} reads {net!r} before it is driven")
            seen.add(gate.output)
        self._order_cache = list(self.gates)
        return self._order_cache

    def evaluate(self, input_values: Mapping[str, BitValues],
                 engine: str = "auto") -> Dict[str, np.ndarray]:
        """Zero-delay logic evaluation.

        ``input_values`` maps every primary input net to a 0/1 scalar or
        array; all arrays must share a shape.  Returns the value of every
        net.

        ``engine`` selects the evaluation tier: ``"auto"`` (default) uses
        the compiled bit-packed program whenever the stimulus is a batch
        of equally long 1-D arrays, ``"compiled"`` requires it, and
        ``"reference"`` forces the per-gate ``uint8`` loop.  All tiers
        are bit-exact.
        """
        if engine not in ("auto", "compiled", "reference"):
            raise SimulationError(f"unknown evaluation engine {engine!r}")
        checked: Dict[str, np.ndarray] = {}
        for net in self.inputs:
            if net not in input_values:
                raise SimulationError(f"missing value for primary input {net!r}")
            arr = np.asarray(input_values[net], dtype=np.uint8)
            if arr.size and arr.max() > 1:
                raise SimulationError(f"input {net!r} carries non-binary values")
            checked[net] = arr

        if engine != "reference":
            length = self._packed_length(checked)
            program = self.compiled() if length is not None else None
            if program is not None:
                return program.evaluate(checked, length)
            if engine == "compiled":
                raise SimulationError(
                    f"netlist {self.name!r} cannot use the compiled engine here "
                    "(no packed program, or stimulus is not a 1-D cycle batch)")

        values: Dict[str, np.ndarray] = {
            CONST0: np.asarray(0, dtype=np.uint8),
            CONST1: np.asarray(1, dtype=np.uint8),
        }
        values.update(checked)
        for function, input_nets, output in self.evaluation_plan():
            values[output] = function(*[values[net] for net in input_nets])
        return values

    def _packed_length(self, checked: Mapping[str, np.ndarray]) -> Optional[int]:
        """Trace length when the stimulus fits the packed engine, else None."""
        length: Optional[int] = None
        for arr in checked.values():
            if arr.ndim != 1:
                return None
            if length is None:
                length = int(arr.shape[0])
            elif int(arr.shape[0]) != length:
                return None
        if not length:
            return None
        return length

    def evaluate_outputs(self, input_values: Mapping[str, BitValues]) -> List[np.ndarray]:
        """Zero-delay evaluation returning only the primary outputs, in order.

        Constant or pass-through outputs are broadcast to the shape of the
        primary-input stimulus so callers always receive consistent shapes.
        """
        values = self.evaluate(input_values)
        shape = ()
        for net in self.inputs:
            arr = np.asarray(values[net])
            if arr.ndim > 0:
                shape = arr.shape
                break
        outputs = []
        for net in self.outputs:
            arr = np.asarray(values[net], dtype=np.uint8)
            if arr.shape != shape:
                arr = np.broadcast_to(arr, shape).copy()
            outputs.append(arr)
        return outputs

    # ------------------------------------------------------------------ #
    # Word-level convenience
    # ------------------------------------------------------------------ #
    def encode_bus(self, bus: str, words: np.ndarray) -> Dict[str, np.ndarray]:
        """Expand integer words into per-net values of a registered bus (LSB first)."""
        if bus not in self.buses:
            raise NetlistError(f"netlist {self.name!r} has no bus {bus!r}")
        nets = self.buses[bus]
        words = np.asarray(words, dtype=np.uint64)
        if words.size and int(words.max()) > mask(len(nets)):
            raise SimulationError(f"word value exceeds {len(nets)}-bit bus {bus!r}")
        return {net: ((words >> np.uint64(i)) & np.uint64(1)).astype(np.uint8)
                for i, net in enumerate(nets)}

    def decode_bus(self, bus: str, values: Mapping[str, np.ndarray]) -> np.ndarray:
        """Assemble per-net values of a registered bus back into integer words."""
        if bus not in self.buses:
            raise NetlistError(f"netlist {self.name!r} has no bus {bus!r}")
        nets = self.buses[bus]
        shape = None
        for net in nets:
            arr = np.asarray(values[net])
            if arr.ndim > 0:
                shape = arr.shape
                break
        words = np.zeros(shape if shape is not None else (), dtype=np.uint64)
        for i, net in enumerate(nets):
            bit = np.asarray(values[net], dtype=np.uint64)
            words = words | (bit << np.uint64(i))
        return words

    def compute_words(self, operand_words: Mapping[str, np.ndarray],
                      output_bus: str = "S", engine: str = "auto") -> np.ndarray:
        """Evaluate the netlist on word-level operands and decode an output bus.

        Keys of ``operand_words`` may be registered bus names (values are
        integer words) or individual primary-input nets (values are 0/1).
        On the compiled engine only the requested output bus is unpacked
        from the packed value matrix, which keeps word-level
        characterisation traffic proportional to the bus width rather
        than the netlist size.
        """
        if engine not in ("auto", "compiled", "reference"):
            raise SimulationError(f"unknown evaluation engine {engine!r}")
        if output_bus not in self.buses:
            raise NetlistError(f"netlist {self.name!r} has no bus {output_bus!r}")
        input_values: Dict[str, np.ndarray] = {}
        for name, words in operand_words.items():
            if name in self.buses:
                input_values.update(self.encode_bus(name, words))
            elif name in self.inputs:
                arr = np.asarray(words, dtype=np.uint8)
                if arr.size and arr.max() > 1:
                    raise SimulationError(f"input {name!r} carries non-binary values")
                input_values[name] = arr
            else:
                raise NetlistError(f"unknown operand {name!r}: not a bus or input net")
        missing = [net for net in self.inputs if net not in input_values]
        if missing:
            raise SimulationError(f"operands do not cover primary inputs {missing}")

        if engine != "reference":
            length = self._packed_length(input_values)
            program = self.compiled() if length is not None else None
            if program is not None:
                return program.compute_words(input_values, length, self.buses[output_bus])

        values = self.evaluate(input_values, engine=engine)
        return self.decode_bus(output_bus, values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Netlist({self.name!r}, gates={self.num_gates}, "
                f"inputs={len(self.inputs)}, outputs={len(self.outputs)})")
