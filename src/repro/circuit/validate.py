"""Structural legality checks for netlists.

``check_netlist`` is run by the synthesis flow on every generated design
and by the test suite; it catches the classes of bugs that silently
corrupt downstream timing analysis (floating nets, multiply-driven nets,
dangling logic, non-topological ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.circuit.netlist import CONST0, CONST1, Netlist
from repro.exceptions import NetlistError


@dataclass
class NetlistReport:
    """Outcome of validating a netlist."""

    design: str
    num_gates: int
    num_inputs: int
    num_outputs: int
    logic_depth: int
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no warnings were recorded."""
        return not self.warnings


def check_netlist(netlist: Netlist, allow_unused_inputs: bool = False,
                  strict: bool = True) -> NetlistReport:
    """Validate the structural sanity of ``netlist``.

    Checks performed:

    * every gate input is driven (a primary input, constant, or gate output),
    * no net is driven twice (guaranteed by construction, re-checked here),
    * every primary output exists,
    * the gate list is topologically ordered,
    * no combinational logic is dangling (drives nothing and is not an output),
    * primary inputs are used (warning only, unless ``allow_unused_inputs``).

    With ``strict=True`` (default) warnings other than unused inputs raise
    :class:`~repro.exceptions.NetlistError`.
    """
    warnings: List[str] = []

    driven = set(netlist.inputs) | {CONST0, CONST1}
    drivers_seen = set()
    for gate in netlist.gates:
        if gate.output in drivers_seen:
            raise NetlistError(f"net {gate.output!r} driven by more than one gate")
        drivers_seen.add(gate.output)

    # topological order + driven-ness (raises on violation)
    netlist.topological_order()
    for gate in netlist.gates:
        for net in gate.inputs:
            if net not in driven and netlist.driver_of(net) is None:
                raise NetlistError(f"gate {gate.name!r} reads floating net {net!r}")
        driven.add(gate.output)

    for net in netlist.outputs:
        if net not in driven:
            raise NetlistError(f"primary output {net!r} is not driven")

    # dangling logic
    fanout = netlist.fanout_map()
    output_set = set(netlist.outputs)
    dangling = [gate.name for gate in netlist.gates
                if not fanout[gate.output] and gate.output not in output_set]
    if dangling:
        warnings.append(f"{len(dangling)} gate(s) drive nets that are never used "
                        f"(e.g. {dangling[:3]})")

    unused_inputs = [net for net in netlist.inputs
                     if not fanout[net] and net not in output_set]
    if unused_inputs and not allow_unused_inputs:
        warnings.append(f"{len(unused_inputs)} primary input(s) are never read "
                        f"(e.g. {unused_inputs[:3]})")

    report = NetlistReport(
        design=netlist.name,
        num_gates=netlist.num_gates,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        logic_depth=netlist.logic_depth(),
        warnings=warnings,
    )
    if strict and dangling:
        raise NetlistError(f"netlist {netlist.name!r} has dangling logic: {dangling[:5]}")
    return report
