"""Per-instance delay annotation — the library's stand-in for SDF files.

The paper back-annotates gate-level simulations with an SDF file produced
by synthesis.  Here the synthesis flow (:mod:`repro.synth`) produces a
:class:`DelayAnnotation`: a mapping from gate-instance name to its
absolute delay in seconds, plus the clock constraint it was sized for.
The annotation has a small text serialisation so experiments can cache
synthesized designs on disk.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, TextIO, Union

from repro.circuit.library import TechnologyLibrary
from repro.circuit.netlist import Netlist
from repro.exceptions import NetlistError, TimingError

FORMAT_HEADER = "# repro delay annotation v1"


@dataclass
class DelayAnnotation:
    """Absolute delay of every gate instance of a netlist, in seconds."""

    design: str
    delays: Dict[str, float] = field(default_factory=dict)
    clock_constraint: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def nominal(cls, netlist: Netlist, library: TechnologyLibrary,
                clock_constraint: Optional[float] = None) -> "DelayAnnotation":
        """Annotation using every cell's nominal library delay."""
        delays = {gate.name: library.delay(gate.cell) for gate in netlist.gates}
        return cls(design=netlist.name, delays=delays, clock_constraint=clock_constraint)

    def copy(self) -> "DelayAnnotation":
        """Deep copy of the annotation."""
        return DelayAnnotation(design=self.design, delays=dict(self.delays),
                               clock_constraint=self.clock_constraint)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def delay_of(self, gate_name: str) -> float:
        """Delay of one gate instance."""
        try:
            return self.delays[gate_name]
        except KeyError:
            raise TimingError(f"no delay annotated for gate {gate_name!r}") from None

    def set_delay(self, gate_name: str, delay: float) -> None:
        """Set the delay of one gate instance."""
        if delay < 0:
            raise TimingError(f"delay must be non-negative, got {delay}")
        self.delays[gate_name] = float(delay)

    def total_delay(self) -> float:
        """Sum of all instance delays — a crude area/power proxy used in reports."""
        return float(sum(self.delays.values()))

    def validate_against(self, netlist: Netlist) -> None:
        """Check the annotation covers exactly the gates of ``netlist``."""
        gate_names = {gate.name for gate in netlist.gates}
        annotated = set(self.delays)
        missing = gate_names - annotated
        extra = annotated - gate_names
        if missing:
            raise NetlistError(f"annotation misses delays for gates: {sorted(missing)[:5]} ...")
        if extra:
            raise NetlistError(f"annotation has delays for unknown gates: {sorted(extra)[:5]} ...")

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def dump(self, stream: TextIO) -> None:
        """Write the annotation to a text stream."""
        stream.write(f"{FORMAT_HEADER}\n")
        stream.write(f"design {self.design}\n")
        if self.clock_constraint is not None:
            stream.write(f"clock {self.clock_constraint!r}\n")
        for gate_name in sorted(self.delays):
            stream.write(f"{gate_name} {self.delays[gate_name]!r}\n")

    def dumps(self) -> str:
        """Serialise the annotation to a string."""
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    @classmethod
    def load(cls, stream: Union[TextIO, Iterable[str]]) -> "DelayAnnotation":
        """Read an annotation previously written by :meth:`dump`."""
        lines = iter(stream)
        header = next(lines, "").strip()
        if header != FORMAT_HEADER:
            raise TimingError(f"not a repro delay annotation (header {header!r})")
        design = ""
        clock: Optional[float] = None
        delays: Dict[str, float] = {}
        for raw in lines:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            key, _, value = line.partition(" ")
            if key == "design":
                design = value.strip()
            elif key == "clock":
                clock = float(value)
            else:
                delays[key] = float(value)
        if not design:
            raise TimingError("annotation file does not name its design")
        return cls(design=design, delays=delays, clock_constraint=clock)

    @classmethod
    def loads(cls, text: str) -> "DelayAnnotation":
        """Parse an annotation from a string."""
        return cls.load(io.StringIO(text))

    def __len__(self) -> int:
        return len(self.delays)
