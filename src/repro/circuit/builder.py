"""Convenience wrapper for writing netlist generators.

The adder generators in :mod:`repro.synth` build netlists gate by gate.
:class:`NetlistBuilder` removes the boilerplate of inventing unique net
and gate names and provides small logic idioms (buffered constants,
word-wide buses, half/full adders) so the generators read close to the
block diagrams they implement.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuit.netlist import CONST0, CONST1, Netlist
from repro.exceptions import NetlistError


class NetlistBuilder:
    """Incrementally build a :class:`~repro.circuit.netlist.Netlist`."""

    def __init__(self, name: str) -> None:
        self.netlist = Netlist(name)
        self._counter = 0

    # ------------------------------------------------------------------ #
    # Naming helpers
    # ------------------------------------------------------------------ #
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def input_bus(self, name: str, width: int) -> List[str]:
        """Declare a ``width``-bit primary-input bus (LSB first) and return its nets."""
        nets = [self.netlist.add_input(f"{name}[{i}]") for i in range(width)]
        self.netlist.register_bus(name, nets)
        return nets

    def input_bit(self, name: str) -> str:
        """Declare a single primary-input net."""
        return self.netlist.add_input(name)

    def output_bus(self, name: str, nets: Sequence[str]) -> None:
        """Register ``nets`` (LSB first) as the output bus ``name`` and as primary outputs."""
        for net in nets:
            self.netlist.add_output(net)
        self.netlist.register_bus(name, list(nets))

    def gate(self, cell: str, *inputs: str, name: Optional[str] = None,
             output: Optional[str] = None) -> str:
        """Instantiate a cell and return the name of the net it drives."""
        gate_name = name or self._fresh(f"u_{cell.lower()}")
        output_net = output or self._fresh(f"n_{cell.lower()}")
        self.netlist.add_gate(gate_name, cell, list(inputs), output_net)
        return output_net

    # ------------------------------------------------------------------ #
    # Logic idioms
    # ------------------------------------------------------------------ #
    @property
    def zero(self) -> str:
        """The constant-0 net."""
        return CONST0

    @property
    def one(self) -> str:
        """The constant-1 net."""
        return CONST1

    def const(self, value: int) -> str:
        """Constant net for a 0/1 value."""
        if value not in (0, 1):
            raise NetlistError(f"constant must be 0 or 1, got {value}")
        return CONST1 if value else CONST0

    def inv(self, a: str) -> str:
        """Inverter."""
        return self.gate("INV", a)

    def and2(self, a: str, b: str) -> str:
        """2-input AND."""
        return self.gate("AND2", a, b)

    def or2(self, a: str, b: str) -> str:
        """2-input OR."""
        return self.gate("OR2", a, b)

    def xor2(self, a: str, b: str) -> str:
        """2-input XOR."""
        return self.gate("XOR2", a, b)

    def mux2(self, d0: str, d1: str, sel: str) -> str:
        """2:1 multiplexer (``sel`` = 1 selects ``d1``)."""
        return self.gate("MUX2", d0, d1, sel)

    def and_tree(self, nets: Sequence[str]) -> str:
        """Balanced AND of an arbitrary number of nets."""
        return self._tree("AND2", "AND3", nets, identity=self.one)

    def or_tree(self, nets: Sequence[str]) -> str:
        """Balanced OR of an arbitrary number of nets."""
        return self._tree("OR2", "OR3", nets, identity=self.zero)

    def _tree(self, cell2: str, cell3: str, nets: Sequence[str], identity: str) -> str:
        nets = list(nets)
        if not nets:
            return identity
        while len(nets) > 1:
            next_level: List[str] = []
            index = 0
            while index < len(nets):
                remaining = len(nets) - index
                if remaining == 3:
                    next_level.append(self.gate(cell3, nets[index], nets[index + 1], nets[index + 2]))
                    index += 3
                elif remaining >= 2:
                    next_level.append(self.gate(cell2, nets[index], nets[index + 1]))
                    index += 2
                else:
                    next_level.append(nets[index])
                    index += 1
            nets = next_level
        return nets[0]

    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        """Half adder returning ``(sum, carry)`` nets."""
        return self.xor2(a, b), self.and2(a, b)

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """Full adder returning ``(sum, carry)`` nets (majority-gate carry)."""
        partial = self.xor2(a, b)
        total = self.xor2(partial, cin)
        carry = self.gate("MAJ3", a, b, cin)
        return total, carry

    def incrementer(self, bits: Sequence[str], enable: str) -> List[str]:
        """Conditionally add 1 to a small bit field (ripple of half adders).

        Used by the ISA correction logic: when ``enable`` is 1, the
        returned field equals ``bits + 1`` truncated to the field width;
        otherwise it equals ``bits``.
        """
        carry = enable
        result: List[str] = []
        for index, bit in enumerate(bits):
            result.append(self.xor2(bit, carry))
            if index < len(bits) - 1:
                carry = self.and2(bit, carry)
        return result

    def decrementer(self, bits: Sequence[str], enable: str) -> List[str]:
        """Conditionally subtract 1 from a small bit field (borrow ripple)."""
        borrow = enable
        result: List[str] = []
        for index, bit in enumerate(bits):
            result.append(self.xor2(bit, borrow))
            if index < len(bits) - 1:
                borrow = self.and2(self.inv(bit), borrow)
        return result

    def build(self) -> Netlist:
        """Finalize and return the netlist."""
        return self.netlist
