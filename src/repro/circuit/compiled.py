"""Compiled bit-packed netlist programs: 64 simulation cycles per word.

This module lowers a :class:`~repro.circuit.netlist.Netlist` into a
structure-of-arrays *program* that NumPy can execute without touching the
Python object graph on the hot path:

* nets become dense integer IDs into a value matrix,
* gates become per-(level, cell) batches of operand/result index arrays,
* trace bits are packed 64 cycles per ``uint64`` word, so one bitwise
  NumPy operation evaluates a gate batch for 64 transitions at once.

Two programs are provided:

:class:`CompiledProgram`
    Zero-delay logic evaluation.  Bit-exact with the reference per-gate
    ``uint8`` loop in :meth:`Netlist.evaluate`; used transparently by
    :meth:`Netlist.evaluate` / :meth:`Netlist.compute_words` for 1-D
    stimulus arrays.

:class:`PackedTimingProgram`
    The timing half of the compiled engine.  Per-gate transport delays
    from a :class:`~repro.circuit.sdf.DelayAnnotation` give every net a
    *finite* set of possible final-transition arrival times (path sums of
    delays).  For each net ``n`` and each possible arrival value ``v``
    the program materialises a packed mask ``M[n, v] = (arrival(n) >= v)``
    and propagates it levelwise with pure bitwise OR/AND operations::

        arrival(n) >= v  <=>  changed(n) and
                              OR_i ( arrival(in_i) >= lift_i(v) )

    where ``lift_i(v)`` is the smallest value ``w`` in the arrival set of
    input ``i`` with ``w + delay(n) >= v``.  Because every threshold is a
    float64 sum built with the *same additions* the dense float simulator
    performs, the masks are bit-exact with the reference arrival-time
    propagation — there is no quantisation.  The number of packed
    operations is proportional to the number of (net, value) thresholds
    and *independent of the trace length per word*, which is what buys
    the order-of-magnitude speedup over the dense float path.

    When per-instance delay variation makes the arrival sets explode
    (every path a distinct float sum), compilation aborts with
    :class:`~repro.exceptions.CompilationError` and callers fall back to
    the dense reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.cells import cell
from repro.exceptions import CompilationError, SimulationError

#: Number of trace cycles packed into one engine word.
WORD_BITS = 64

#: Net name of the always-zero / always-one constants (mirrors netlist.py;
#: imported lazily there to avoid a circular import).
_CONST0 = "const0"
_CONST1 = "const1"


def packed_word_count(length: int) -> int:
    """Number of ``uint64`` words needed to hold ``length`` cycles."""
    return (int(length) + WORD_BITS - 1) // WORD_BITS


def transition_chunks(transitions: int, chunk_transitions: int) -> List[Tuple[int, int]]:
    """Word-aligned ``[start, stop)`` spans covering ``transitions`` cycles.

    ``chunk_transitions`` is rounded up to a multiple of :data:`WORD_BITS`
    so every chunk starts on a packed word boundary and fills whole words
    except possibly the last (ragged) one.  Because the timing simulators
    are transition-local, simulating the spans independently — each span
    reads input vectors ``[start, stop]`` — and concatenating the results
    in span order is bit-identical to one full-trace run.  This is the
    chunk-level unit of work shared by the packed engine's internal
    chunking and the runtime's multiprocess backend.
    """
    transitions = int(transitions)
    if transitions < 1:
        raise SimulationError(f"need at least one transition, got {transitions}")
    if chunk_transitions < 1:
        raise SimulationError(
            f"chunk size must be at least one transition, got {chunk_transitions}")
    aligned = -(-int(chunk_transitions) // WORD_BITS) * WORD_BITS
    return [(start, min(start + aligned, transitions))
            for start in range(0, transitions, aligned)]


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack 0/1 values along the last axis, 64 cycles per ``uint64`` word.

    Bit ``i`` of word ``j`` (LSB first) holds cycle ``64 * j + i``.  The
    tail of the last word is zero-padded.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    length = bits.shape[-1]
    words = packed_word_count(length)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1)
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bits(words: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: expand words back into 0/1 ``uint8`` cycles."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return np.unpackbits(words.view(np.uint8), axis=-1, count=int(length),
                         bitorder="little")


def rows_to_words(rows: np.ndarray, length: int) -> np.ndarray:
    """Assemble packed per-bit rows (LSB first) into ``uint64`` words.

    ``rows`` is a ``(bits, words)`` packed matrix; the result is a
    ``(length,)`` array whose bit ``k`` comes from ``rows[k]``.
    """
    bits = unpack_bits(rows, length)
    words = np.zeros(length, dtype=np.uint64)
    for position in range(rows.shape[0]):
        words |= bits[position].astype(np.uint64) << np.uint64(position)
    return words


def pack_word_bits(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Pack bit ``positions[k]`` of integer ``values`` into packed rows.

    Returns a ``(len(positions), W)`` matrix — the packed per-net stimulus
    of a bus carrying ``values`` — without materialising per-cycle
    ``uint8`` arrays for more than one bit at a time.
    """
    values = np.asarray(values, dtype=np.uint64)
    rows = np.empty((len(positions), packed_word_count(values.shape[0])), dtype=np.uint64)
    for k, position in enumerate(positions):
        rows[k] = pack_bits(((values >> np.uint64(position)) & np.uint64(1)).astype(np.uint8))
    return rows


@dataclass(frozen=True)
class _EvalBatch:
    """All gates of one (level, cell) group: one kernel call per batch."""

    kernel: object
    out_ids: np.ndarray
    operand_ids: Tuple[np.ndarray, ...]


class CompiledProgram:
    """A netlist lowered to integer net IDs and levelised gate batches.

    The program is immutable and safe to cache per netlist; it holds no
    simulation state.  All evaluation methods allocate a fresh value
    matrix of shape ``(num_nets, words)``.
    """

    def __init__(self, netlist) -> None:
        self.netlist = netlist
        order = netlist.topological_order()

        net_id: Dict[str, int] = {_CONST0: 0, _CONST1: 1}
        for net in netlist.inputs:
            net_id[net] = len(net_id)
        for gate in order:
            net_id[gate.output] = len(net_id)
        self.net_id = net_id
        self.num_nets = len(net_id)
        self.input_ids = np.array([net_id[net] for net in netlist.inputs], dtype=np.int64)

        # Levelise: level 0 = inputs/constants, gates at 1 + max(input levels).
        level: Dict[int, int] = {i: 0 for i in range(2 + len(netlist.inputs))}
        self.gate_level: Dict[str, int] = {}
        grouped: Dict[Tuple[int, str], List] = {}
        for gate in order:
            gate_level = 1 + max(level[net_id[net]] for net in gate.inputs)
            level[net_id[gate.output]] = gate_level
            self.gate_level[gate.output] = gate_level
            grouped.setdefault((gate_level, gate.cell), []).append(gate)
        self.num_levels = max(level.values(), default=0)

        self.batches: List[_EvalBatch] = []
        for (gate_level, cell_name) in sorted(grouped):
            gates = grouped[(gate_level, cell_name)]
            cell_def = cell(cell_name)
            if cell_def.packed_function is None:
                raise CompilationError(
                    f"cell {cell_name!r} has no packed kernel; cannot compile "
                    f"netlist {netlist.name!r}")
            out_ids = np.array([net_id[g.output] for g in gates], dtype=np.int64)
            operand_ids = tuple(
                np.array([net_id[g.inputs[pin]] for g in gates], dtype=np.int64)
                for pin in range(cell_def.arity))
            self.batches.append(_EvalBatch(cell_def.packed_function, out_ids, operand_ids))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_packed(self, packed_inputs: Mapping[str, np.ndarray], words: int) -> np.ndarray:
        """Execute the program on packed stimulus rows.

        ``packed_inputs`` maps every primary input net to a ``(words,)``
        ``uint64`` row.  Returns the full ``(num_nets, words)`` value
        matrix (constants included).
        """
        values = np.empty((self.num_nets, words), dtype=np.uint64)
        values[0] = 0
        values[1] = ~np.uint64(0)
        for net, row in packed_inputs.items():
            values[self.net_id[net]] = row
        for batch in self.batches:
            operands = [values[ids] for ids in batch.operand_ids]
            values[batch.out_ids] = batch.kernel(*operands)
        return values

    def evaluate_bits(self, bit_inputs: Mapping[str, np.ndarray], length: int) -> np.ndarray:
        """Pack per-net 0/1 stimulus of ``length`` cycles and execute."""
        words = packed_word_count(length)
        packed = {net: pack_bits(bits) for net, bits in bit_inputs.items()}
        return self.run_packed(packed, words)

    def evaluate(self, bit_inputs: Mapping[str, np.ndarray], length: int
                 ) -> Dict[str, np.ndarray]:
        """Packed evaluation returning every net as a ``(length,)`` 0/1 array.

        This is the compiled replacement for the reference per-gate loop
        in :meth:`Netlist.evaluate`; inputs must already be validated.
        """
        values = self.run_packed(
            {net: pack_bits(np.ascontiguousarray(bits, dtype=np.uint8))
             for net, bits in bit_inputs.items()},
            packed_word_count(length))
        unpacked = unpack_bits(values, length)
        return {net: unpacked[row] for net, row in self.net_id.items()}

    def decode_words(self, values: np.ndarray, nets: Sequence[str], length: int) -> np.ndarray:
        """Assemble packed rows of ``nets`` (LSB first) into integer words."""
        return rows_to_words(values[[self.net_id[net] for net in nets]], length)

    def compute_words(self, bit_inputs: Mapping[str, np.ndarray], length: int,
                      output_nets: Sequence[str]) -> np.ndarray:
        """Packed end-to-end: evaluate and decode only the requested bus."""
        values = self.evaluate_bits(bit_inputs, length)
        return self.decode_words(values, output_nets, length)

    def evaluate_transitions(self, bit_inputs: Mapping[str, np.ndarray],
                             transitions: int) -> Tuple[np.ndarray, np.ndarray]:
        """Old/new settled values for ``transitions`` back-to-back transitions.

        ``bit_inputs`` holds ``transitions + 1`` cycles per net; the trace
        is evaluated once and the "new" matrix is derived with a one-bit
        cross-word funnel shift instead of a second evaluation pass.
        Both returned matrices span ``packed_word_count(transitions)``
        words; bits at positions ``>= transitions`` are unspecified.
        """
        full = self.evaluate_bits(bit_inputs, transitions + 1)
        shifted = full >> np.uint64(1)
        shifted[:, :-1] |= full[:, 1:] << np.uint64(63)
        words = packed_word_count(transitions)
        return full[:, :words], shifted[:, :words]


@dataclass(frozen=True)
class _ThresholdBatch:
    """All threshold rows of one (level, fan-in count) group.

    After renumbering, the rows of a batch occupy the contiguous block
    ``[start, stop)`` of the mask matrix, so the propagation writes a
    slice instead of scattering through an index array.  Clock-specialised
    plans restrict a batch to a subset of its rows; ``out_rows`` then
    carries the explicit (non-contiguous) targets.
    """

    start: int
    stop: int
    changed_rows: np.ndarray
    source_rows: Tuple[np.ndarray, ...]
    out_rows: Optional[np.ndarray] = None


@dataclass(frozen=True)
class _TimingPlan:
    """Propagation schedule restricted to the cone of a set of root rows."""

    runtime_rows: np.ndarray
    runtime_nets: np.ndarray
    batches: List[_ThresholdBatch]


class PackedTimingProgram:
    """Arrival-threshold masks of a delay-annotated netlist, fully packed.

    See the module docstring for the algorithm.  The program is compiled
    once per (netlist, annotation) pair; :meth:`run` then produces the
    mask matrix for one packed chunk of transitions, and
    :meth:`late_rows` maps a clock period to the mask rows that answer
    ``arrival > clock`` for a list of nets.
    """

    #: Default ceiling on threshold rows per gate (beyond it, compilation
    #: aborts and the dense engine takes over).
    DEFAULT_ROWS_PER_GATE = 48

    def __init__(self, program: CompiledProgram, annotation,
                 row_limit: Optional[int] = None) -> None:
        self.program = program
        netlist = program.netlist
        if row_limit is None:
            row_limit = (self.DEFAULT_ROWS_PER_GATE * max(netlist.num_gates, 1)
                         + len(netlist.inputs) + 64)
        net_id = program.net_id

        # Per net: sorted ascending arrival-value candidates and the mask
        # row answering "arrival >= value" for each.  Constants never move.
        values_of: List[np.ndarray] = [np.empty(0)] * program.num_nets
        rows_of: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * program.num_nets

        next_row = 1  # row 0 is the all-zero mask
        runtime_rows: List[int] = []     # rows filled from the changed matrix ...
        runtime_nets: List[int] = []     # ... and the net each one mirrors
        for net in netlist.inputs:
            nid = net_id[net]
            values_of[nid] = np.array([0.0])
            rows_of[nid] = np.array([next_row], dtype=np.int64)
            runtime_rows.append(next_row)
            runtime_nets.append(nid)
            next_row += 1

        # node id -> (level, fanin, changed row, source rows)
        nodes: Dict[int, Tuple[int, int, int, Tuple[int, ...]]] = {}
        for gate in netlist.topological_order():
            out = net_id[gate.output]
            delay = annotation.delay_of(gate.name)
            in_ids = [net_id[net] for net in gate.inputs]
            lifted = [values_of[i] + delay for i in in_ids if values_of[i].size]
            if not lifted:
                continue  # constant-driven: the output can never change
            values = np.unique(np.concatenate(lifted))
            rows = np.empty(values.shape[0], dtype=np.int64)
            rows[0] = next_row  # == changed(gate): filled from the diff matrix
            runtime_rows.append(next_row)
            runtime_nets.append(out)
            changed_row = next_row
            next_row += 1

            # lift indices per input for every non-minimal threshold
            source_table = []
            for i in in_ids:
                if not values_of[i].size:
                    continue
                indices = np.searchsorted(values_of[i] + delay, values[1:], side="left")
                source_table.append((rows_of[i], indices))
            level = program.gate_level[gate.output]
            dedup: Dict[Tuple[int, ...], int] = {}
            for k in range(1, values.shape[0]):
                sources = []
                for input_rows, indices in source_table:
                    idx = indices[k - 1]
                    if idx < input_rows.shape[0]:
                        sources.append(int(input_rows[idx]))
                key = tuple(sorted(set(sources)))
                if not key:  # unreachable threshold: mask is identically zero
                    rows[k] = 0
                    continue
                existing = dedup.get(key)
                if existing is not None:
                    rows[k] = existing
                    continue
                rows[k] = dedup[key] = next_row
                nodes[next_row] = (level, len(key), changed_row, key)
                next_row += 1
                if next_row > row_limit:
                    raise CompilationError(
                        f"timing program for {netlist.name!r} exceeds "
                        f"{row_limit} threshold rows (irregular delays); "
                        f"use the dense reference engine")
            values_of[out] = values
            rows_of[out] = rows

        # Backward-reachability pruning: only rows that can answer a
        # lateness query on a sampleable net (any bus or primary output),
        # directly or through a lift chain, are worth propagating.
        sampleable = set(netlist.outputs)
        for bus_nets in netlist.buses.values():
            sampleable.update(bus_nets)
        alive = {0}
        stack: List[int] = []
        for net in sampleable:
            nid = net_id.get(net)
            if nid is not None:
                stack.extend(int(row) for row in rows_of[nid])
        while stack:
            row = stack.pop()
            if row in alive:
                continue
            alive.add(row)
            node = nodes.get(row)
            if node is not None:
                stack.append(node[2])  # the gate's own changed mask
                stack.extend(node[3])
        runtime_alive = [(row, nid) for row, nid in zip(runtime_rows, runtime_nets)
                         if row in alive]

        # Renumber: row 0, then the runtime block, then batch-contiguous
        # threshold rows ordered by (level, fanin) so every batch writes
        # one slice of the mask matrix.
        remap = np.full(next_row, -1, dtype=np.int64)
        remap[0] = 0
        cursor = 1
        for row, _ in runtime_alive:
            remap[row] = cursor
            cursor += 1
        self.runtime_nets = np.array([nid for _, nid in runtime_alive], dtype=np.int64)
        self.runtime_stop = cursor

        grouped: Dict[Tuple[int, int], List[int]] = {}
        for row, (level, fanin, _, _) in nodes.items():
            if row in alive:
                grouped.setdefault((level, fanin), []).append(row)
        self.batches: List[_ThresholdBatch] = []
        for (level, fanin), members in sorted(grouped.items()):
            start = cursor
            for row in members:
                remap[row] = cursor
                cursor += 1
            changed_rows = np.empty(len(members), dtype=np.int64)
            source_rows = tuple(np.empty(len(members), dtype=np.int64)
                                for _ in range(fanin))
            for position, row in enumerate(members):
                _, _, changed_row, key = nodes[row]
                changed_rows[position] = remap[changed_row]
                for pin in range(fanin):
                    source_rows[pin][position] = remap[key[pin]]
            self.batches.append(_ThresholdBatch(start=start, stop=cursor,
                                                changed_rows=changed_rows,
                                                source_rows=source_rows))

        self.num_rows = cursor
        self.values_of = values_of
        self.rows_of = [remap[rows] for rows in rows_of]
        self._dependencies = {
            int(remap[row]): (int(remap[node[2]]),
                              tuple(int(remap[source]) for source in node[3]))
            for row, node in nodes.items() if row in alive}
        self._plan_cache: Dict[frozenset, _TimingPlan] = {}

    # ------------------------------------------------------------------ #
    def plan_for(self, root_rows: Sequence[int]) -> "_TimingPlan":
        """Specialised propagation plan covering only ``root_rows``.

        A trace run at a fixed set of clock periods samples a handful of
        lateness thresholds; everything not in their backward cone is
        dead work.  Plans are cached per root set — for the paper's
        three-clock sweeps they shrink the propagation to a quarter of
        the rows or less.
        """
        key = frozenset(int(row) for row in root_rows if row)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        alive = set()
        stack = list(key)
        while stack:
            row = stack.pop()
            if row in alive or row == 0:
                continue
            alive.add(row)
            node = self._dependencies.get(row)
            if node is not None:
                stack.append(node[0])
                stack.extend(node[1])

        runtime_selection = np.array(
            sorted(row for row in alive if row < self.runtime_stop), dtype=np.int64)
        plan_batches: List[_ThresholdBatch] = []
        for batch in self.batches:
            positions = np.array([k for k, row in enumerate(range(batch.start, batch.stop))
                                  if row in alive], dtype=np.int64)
            if not positions.size:
                continue
            if positions.size == batch.stop - batch.start:
                plan_batches.append(batch)
                continue
            plan_batches.append(_ThresholdBatch(
                start=batch.start, stop=batch.stop,
                changed_rows=batch.changed_rows[positions],
                source_rows=tuple(rows[positions] for rows in batch.source_rows),
                out_rows=positions + batch.start))
        plan = _TimingPlan(
            runtime_rows=runtime_selection,
            runtime_nets=self.runtime_nets[runtime_selection - 1],
            batches=plan_batches)
        self._plan_cache[key] = plan
        return plan

    def run(self, changed: np.ndarray, plan: Optional["_TimingPlan"] = None) -> np.ndarray:
        """Propagate threshold masks for one packed chunk.

        ``changed`` is the ``(num_nets, words)`` packed old-vs-new diff of
        settled values.  Returns the ``(num_rows, words)`` mask matrix;
        with a ``plan`` only the rows in the plan's cone hold defined
        values (exactly the ones its roots sample).
        """
        words = changed.shape[1]
        masks = np.empty((self.num_rows, words), dtype=np.uint64)
        masks[0] = 0
        if plan is None:
            masks[1:self.runtime_stop] = changed[self.runtime_nets]
            batches: Sequence[_ThresholdBatch] = self.batches
        else:
            masks[plan.runtime_rows] = changed[plan.runtime_nets]
            batches = plan.batches
        for batch in batches:
            if batch.out_rows is None:
                block = masks[batch.start:batch.stop]
                np.take(masks, batch.source_rows[0], axis=0, out=block)
            else:
                block = masks[batch.source_rows[0]]
            for source in batch.source_rows[1:]:
                block |= masks[source]
            block &= masks[batch.changed_rows]
            if batch.out_rows is not None:
                masks[batch.out_rows] = block
        return masks

    def late_rows(self, nets: Sequence[str], clock_period: float) -> np.ndarray:
        """Mask row answering ``arrival > clock_period`` for each net.

        Nets that can never be late at this clock map to row 0 (all-zero).
        Only sampleable nets (primary outputs and bus members) survive
        compilation; querying any other net raises.
        """
        rows = np.zeros(len(nets), dtype=np.int64)
        for k, net in enumerate(nets):
            nid = self.program.net_id[net]
            values = self.values_of[nid]
            idx = int(np.searchsorted(values, clock_period, side="right"))
            if idx < values.shape[0]:
                row = int(self.rows_of[nid][idx])
                if row < 0:
                    raise SimulationError(
                        f"net {net!r} was pruned from the timing program and "
                        "cannot be sampled")
                rows[k] = row
        return rows


def compile_netlist(netlist) -> CompiledProgram:
    """Lower ``netlist`` into a :class:`CompiledProgram` (no caching here;
    use :meth:`Netlist.compiled` for the cached accessor)."""
    return CompiledProgram(netlist)


def packed_stimulus(netlist, bit_inputs: Mapping[str, np.ndarray]) -> Tuple[int, int]:
    """Validate that a stimulus dict is eligible for the packed engine.

    Returns ``(length, words)``; raises :class:`SimulationError` when the
    per-net arrays disagree on length.
    """
    length: Optional[int] = None
    for net, bits in bit_inputs.items():
        size = int(np.asarray(bits).shape[0])
        if length is None:
            length = size
        elif size != length:
            raise SimulationError(
                f"stimulus arrays disagree on trace length ({size} vs {length})")
    if length is None:
        raise SimulationError(f"netlist {netlist.name!r} received an empty stimulus")
    return length, packed_word_count(length)
