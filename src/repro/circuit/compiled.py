"""Compiled bit-packed netlist programs: 64 simulation cycles per word.

This module lowers a :class:`~repro.circuit.netlist.Netlist` into a
structure-of-arrays *program* that NumPy can execute without touching the
Python object graph on the hot path:

* nets become dense integer IDs into a value matrix,
* gates become per-(level, cell) batches of operand/result index arrays,
* trace bits are packed 64 cycles per ``uint64`` word, so one bitwise
  NumPy operation evaluates a gate batch for 64 transitions at once.

Two programs are provided:

:class:`CompiledProgram`
    Zero-delay logic evaluation.  Bit-exact with the reference per-gate
    ``uint8`` loop in :meth:`Netlist.evaluate`; used transparently by
    :meth:`Netlist.evaluate` / :meth:`Netlist.compute_words` for 1-D
    stimulus arrays.

:class:`PackedTimingProgram`
    The timing half of the compiled engine.  Per-gate transport delays
    from a :class:`~repro.circuit.sdf.DelayAnnotation` give every net a
    *finite* set of possible final-transition arrival times (path sums of
    delays).  For each net ``n`` and each possible arrival value ``v``
    the program materialises a packed mask ``M[n, v] = (arrival(n) >= v)``
    and propagates it levelwise with pure bitwise OR/AND operations::

        arrival(n) >= v  <=>  changed(n) and
                              OR_i ( arrival(in_i) >= lift_i(v) )

    where ``lift_i(v)`` is the smallest value ``w`` in the arrival set of
    input ``i`` with ``w + delay(n) >= v``.  Because every threshold is a
    float64 sum built with the *same additions* the dense float simulator
    performs, the masks are bit-exact with the reference arrival-time
    propagation — there is no quantisation.  The number of packed
    operations is proportional to the number of (net, value) thresholds
    and *independent of the trace length per word*, which is what buys
    the order-of-magnitude speedup over the dense float path.

    When per-instance delay variation makes the arrival sets explode
    (every path a distinct float sum), compilation aborts with
    :class:`~repro.exceptions.CompilationError` and callers fall back to
    the dense reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.cells import cell
from repro.exceptions import CompilationError, SimulationError

#: Number of trace cycles packed into one engine word.
WORD_BITS = 64

#: Net name of the always-zero / always-one constants (mirrors netlist.py;
#: imported lazily there to avoid a circular import).
_CONST0 = "const0"
_CONST1 = "const1"


def packed_word_count(length: int) -> int:
    """Number of ``uint64`` words needed to hold ``length`` cycles."""
    return (int(length) + WORD_BITS - 1) // WORD_BITS


def transition_chunks(transitions: int, chunk_transitions: int) -> List[Tuple[int, int]]:
    """Word-aligned ``[start, stop)`` spans covering ``transitions`` cycles.

    ``chunk_transitions`` is rounded up to a multiple of :data:`WORD_BITS`
    so every chunk starts on a packed word boundary and fills whole words
    except possibly the last (ragged) one.  Because the timing simulators
    are transition-local, simulating the spans independently — each span
    reads input vectors ``[start, stop]`` — and concatenating the results
    in span order is bit-identical to one full-trace run.  This is the
    chunk-level unit of work shared by the packed engine's internal
    chunking and the runtime's multiprocess backend.
    """
    transitions = int(transitions)
    if transitions < 1:
        raise SimulationError(f"need at least one transition, got {transitions}")
    if chunk_transitions < 1:
        raise SimulationError(
            f"chunk size must be at least one transition, got {chunk_transitions}")
    aligned = -(-int(chunk_transitions) // WORD_BITS) * WORD_BITS
    return [(start, min(start + aligned, transitions))
            for start in range(0, transitions, aligned)]


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack 0/1 values along the last axis, 64 cycles per ``uint64`` word.

    Bit ``i`` of word ``j`` (LSB first) holds cycle ``64 * j + i``.  The
    tail of the last word is zero-padded.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    length = bits.shape[-1]
    words = packed_word_count(length)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1)
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bits(words: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: expand words back into 0/1 ``uint8`` cycles."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return np.unpackbits(words.view(np.uint8), axis=-1, count=int(length),
                         bitorder="little")


def rows_to_words(rows: np.ndarray, length: int) -> np.ndarray:
    """Assemble packed per-bit rows (LSB first) into ``uint64`` words.

    ``rows`` is a ``(bits, ..., words)`` packed array — bit positions
    along the first axis, packed words along the last, any batch axes in
    between.  The result has shape ``(..., length)``: bit ``k`` of every
    word comes from ``rows[k]``.  The assembly is one broadcast
    shift-and-reduce, not a per-position Python loop, so decoding a
    stacked multi-trace batch costs one NumPy dispatch.
    """
    rows = np.ascontiguousarray(rows, dtype=np.uint64)
    if rows.shape[0] == 0:
        return np.zeros(rows.shape[1:-1] + (int(length),), dtype=np.uint64)
    bits = unpack_bits(rows, length).astype(np.uint64)
    shifts = np.arange(rows.shape[0], dtype=np.uint64)
    return np.bitwise_or.reduce(
        bits << shifts.reshape((-1,) + (1,) * (bits.ndim - 1)), axis=0)


def pack_word_bits(values: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Pack bit ``positions[k]`` of integer ``values`` into packed rows.

    Returns a ``(len(positions), W)`` matrix — the packed per-net stimulus
    of a bus carrying ``values`` — without materialising per-cycle
    ``uint8`` arrays for more than one bit at a time.
    """
    values = np.asarray(values, dtype=np.uint64)
    rows = np.empty((len(positions), packed_word_count(values.shape[0])), dtype=np.uint64)
    for k, position in enumerate(positions):
        rows[k] = pack_bits(((values >> np.uint64(position)) & np.uint64(1)).astype(np.uint8))
    return rows


def levelise_netlist(netlist) -> Tuple[Dict[str, int], List[int]]:
    """Dense net IDs and per-gate levels of a netlist.

    Net IDs follow the shared indexing scheme of the compiled programs
    and the vectorized STA kernels: ``const0`` = 0, ``const1`` = 1, then
    the primary inputs, then every gate output in topological order.
    The returned level list is parallel to
    ``netlist.topological_order()``: inputs and constants sit at level
    0, a gate one above its deepest input.
    """
    order = netlist.topological_order()
    net_id: Dict[str, int] = {_CONST0: 0, _CONST1: 1}
    for net in netlist.inputs:
        net_id[net] = len(net_id)
    for gate in order:
        net_id[gate.output] = len(net_id)
    # Gate output IDs are assigned consecutively in topological order,
    # so appending keeps the list indexable by net ID.
    level: List[int] = [0] * (2 + len(netlist.inputs))
    gate_levels: List[int] = []
    for gate in order:
        gate_level = 1 + max(level[net_id[net]] for net in gate.inputs)
        level.append(gate_level)
        gate_levels.append(gate_level)
    return net_id, gate_levels


@dataclass(frozen=True)
class _EvalBatch:
    """All gates of one (level, cell) group: one kernel call per batch."""

    kernel: object
    out_ids: np.ndarray
    operand_ids: Tuple[np.ndarray, ...]


class CompiledProgram:
    """A netlist lowered to integer net IDs and levelised gate batches.

    The program is immutable and safe to cache per netlist; it holds no
    simulation state.  All evaluation methods allocate a fresh value
    matrix of shape ``(num_nets, words)``.
    """

    def __init__(self, netlist) -> None:
        self.netlist = netlist
        order = netlist.topological_order()

        net_id, gate_levels = levelise_netlist(netlist)
        self.net_id = net_id
        self.num_nets = len(net_id)
        self.input_ids = np.array([net_id[net] for net in netlist.inputs], dtype=np.int64)

        self.gate_level: Dict[str, int] = {}
        grouped: Dict[Tuple[int, str], List] = {}
        for gate, gate_level in zip(order, gate_levels):
            self.gate_level[gate.output] = gate_level
            grouped.setdefault((gate_level, gate.cell), []).append(gate)
        self.num_levels = max(gate_levels, default=0)

        self.batches: List[_EvalBatch] = []
        for (gate_level, cell_name) in sorted(grouped):
            gates = grouped[(gate_level, cell_name)]
            cell_def = cell(cell_name)
            if cell_def.packed_function is None:
                raise CompilationError(
                    f"cell {cell_name!r} has no packed kernel; cannot compile "
                    f"netlist {netlist.name!r}")
            out_ids = np.array([net_id[g.output] for g in gates], dtype=np.int64)
            operand_ids = tuple(
                np.array([net_id[g.inputs[pin]] for g in gates], dtype=np.int64)
                for pin in range(cell_def.arity))
            self.batches.append(_EvalBatch(cell_def.packed_function, out_ids, operand_ids))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _execute(self, values: np.ndarray,
                 packed_inputs: Mapping[str, np.ndarray]) -> np.ndarray:
        """Fill ``values`` from the stimulus and run every gate batch."""
        values[0] = 0
        values[1] = ~np.uint64(0)
        for net, row in packed_inputs.items():
            values[self.net_id[net]] = row
        for batch in self.batches:
            operands = [values[ids] for ids in batch.operand_ids]
            values[batch.out_ids] = batch.kernel(*operands)
        return values

    def run_packed(self, packed_inputs: Mapping[str, np.ndarray], words: int) -> np.ndarray:
        """Execute the program on packed stimulus rows.

        ``packed_inputs`` maps every primary input net to a ``(words,)``
        ``uint64`` row.  Returns the full ``(num_nets, words)`` value
        matrix (constants included).
        """
        return self._execute(np.empty((self.num_nets, words), dtype=np.uint64),
                             packed_inputs)

    def run_packed_many(self, packed_inputs: Mapping[str, np.ndarray],
                        traces: int, words: int) -> np.ndarray:
        """Execute the program on a stacked batch of packed traces.

        ``packed_inputs`` maps every primary input net to a
        ``(traces, words)`` ``uint64`` matrix — one packed row per trace.
        Returns the ``(num_nets, traces, words)`` value tensor.  Every
        gate batch runs as **one** bitwise kernel call covering all
        traces; because the packed words of different traces never mix,
        slicing trace ``t`` out of the result is bit-identical to
        :meth:`run_packed` on that trace alone.
        """
        return self._execute(
            np.empty((self.num_nets, int(traces), int(words)), dtype=np.uint64),
            packed_inputs)

    def evaluate_bits(self, bit_inputs: Mapping[str, np.ndarray], length: int) -> np.ndarray:
        """Pack per-net 0/1 stimulus of ``length`` cycles and execute."""
        words = packed_word_count(length)
        packed = {net: pack_bits(bits) for net, bits in bit_inputs.items()}
        return self.run_packed(packed, words)

    def evaluate(self, bit_inputs: Mapping[str, np.ndarray], length: int
                 ) -> Dict[str, np.ndarray]:
        """Packed evaluation returning every net as a ``(length,)`` 0/1 array.

        This is the compiled replacement for the reference per-gate loop
        in :meth:`Netlist.evaluate`; inputs must already be validated.
        """
        values = self.run_packed(
            {net: pack_bits(np.ascontiguousarray(bits, dtype=np.uint8))
             for net, bits in bit_inputs.items()},
            packed_word_count(length))
        unpacked = unpack_bits(values, length)
        return {net: unpacked[row] for net, row in self.net_id.items()}

    def decode_words(self, values: np.ndarray, nets: Sequence[str], length: int) -> np.ndarray:
        """Assemble packed rows of ``nets`` (LSB first) into integer words."""
        return rows_to_words(values[[self.net_id[net] for net in nets]], length)

    def compute_words(self, bit_inputs: Mapping[str, np.ndarray], length: int,
                      output_nets: Sequence[str]) -> np.ndarray:
        """Packed end-to-end: evaluate and decode only the requested bus."""
        values = self.evaluate_bits(bit_inputs, length)
        return self.decode_words(values, output_nets, length)

    def evaluate_transitions(self, bit_inputs: Mapping[str, np.ndarray],
                             transitions: int) -> Tuple[np.ndarray, np.ndarray]:
        """Old/new settled values for ``transitions`` back-to-back transitions.

        ``bit_inputs`` holds ``transitions + 1`` cycles per net; the trace
        is evaluated once and the "new" matrix is derived with a one-bit
        cross-word funnel shift instead of a second evaluation pass.
        Both returned matrices span ``packed_word_count(transitions)``
        words; bits at positions ``>= transitions`` are unspecified.
        """
        full = self.evaluate_bits(bit_inputs, transitions + 1)
        shifted = full >> np.uint64(1)
        shifted[:, :-1] |= full[:, 1:] << np.uint64(63)
        words = packed_word_count(transitions)
        return full[:, :words], shifted[:, :words]

    def evaluate_transitions_many(self, bit_inputs: Mapping[str, np.ndarray],
                                  transitions: int) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked :meth:`evaluate_transitions` over a batch of traces.

        ``bit_inputs`` holds a ``(traces, transitions + 1)`` 0/1 matrix
        per net (rows shorter than the batch must be zero-padded by the
        caller; the padded bits are evaluated but carry no meaning).
        Returns ``(old, new)`` value tensors of shape
        ``(num_nets, traces, packed_word_count(transitions))``.  The
        funnel shift deriving the "new" matrix runs along the packed
        word axis of each trace independently, so every trace slice is
        bit-identical to a standalone :meth:`evaluate_transitions`.
        """
        words_full = packed_word_count(transitions + 1)
        packed = {net: pack_bits(bits) for net, bits in bit_inputs.items()}
        traces = next(iter(packed.values())).shape[0] if packed else 0
        full = self.run_packed_many(packed, traces, words_full)
        shifted = full >> np.uint64(1)
        shifted[..., :-1] |= full[..., 1:] << np.uint64(63)
        words = packed_word_count(transitions)
        return full[..., :words], shifted[..., :words]


@dataclass(frozen=True)
class _ThresholdBatch:
    """All threshold rows of one (level, fan-in count) group.

    After renumbering, the rows of a batch occupy the contiguous block
    ``[start, stop)`` of the mask matrix, so the propagation writes a
    slice instead of scattering through an index array.  Clock-specialised
    plans restrict a batch to a subset of its rows; ``out_rows`` then
    carries the explicit (non-contiguous) targets.
    """

    start: int
    stop: int
    changed_rows: np.ndarray
    source_rows: Tuple[np.ndarray, ...]
    out_rows: Optional[np.ndarray] = None


@dataclass(frozen=True)
class _TimingPlan:
    """Propagation schedule restricted to the cone of a set of root rows."""

    runtime_rows: np.ndarray
    runtime_nets: np.ndarray
    batches: List[_ThresholdBatch]


class PackedTimingProgram:
    """Arrival-threshold masks of a delay-annotated netlist, fully packed.

    See the module docstring for the algorithm.  The program is compiled
    once per (netlist, annotation) pair; :meth:`run` then produces the
    mask matrix for one packed chunk of transitions, and
    :meth:`late_rows` maps a clock period to the mask rows that answer
    ``arrival > clock`` for a list of nets.

    Compilation is *cone-directed*: arrival-value candidate sets are
    derived bottom-up for every net, but threshold rows are materialised
    top-down from the query roots, so only masks that can influence a
    lateness answer are ever built.  By default the roots are **every**
    threshold of every sampleable net (primary outputs and bus members)
    — the general program, able to answer any clock period.  Passing
    ``clock_periods`` restricts the roots to the one lateness threshold
    each clock samples per net; the resulting program is typically an
    order of magnitude smaller (cheaper to compile *and* to run) and is
    bit-identical to the general program on those clocks.  Querying a
    clock outside the specialisation raises, it never answers wrongly.
    """

    #: Default ceiling on threshold rows per gate (beyond it, compilation
    #: aborts and the dense engine takes over).
    DEFAULT_ROWS_PER_GATE = 48

    def __init__(self, program: CompiledProgram, annotation,
                 row_limit: Optional[int] = None,
                 clock_periods: Optional[Sequence[float]] = None) -> None:
        self.program = program
        netlist = program.netlist
        if row_limit is None:
            row_limit = (self.DEFAULT_ROWS_PER_GATE * max(netlist.num_gates, 1)
                         + len(netlist.inputs) + 64)
        net_id = program.net_id
        self.clock_periods = (None if clock_periods is None else
                              tuple(sorted({float(clk) for clk in clock_periods})))

        def _overflow() -> CompilationError:
            return CompilationError(
                f"timing program for {netlist.name!r} exceeds {row_limit} "
                f"threshold rows (irregular delays); use the dense reference engine")

        # ---------------------------------------------------------------- #
        # Arrival-value candidate sets, bottom-up.  Every threshold is a
        # float64 sum built with the same additions the dense simulator
        # performs (Python floats *are* IEEE doubles), so the masks stay
        # bit-exact with the reference arrival propagation.  The merge
        # runs on plain float sets — for the small per-net sets of
        # regular adders that is several times cheaper than per-gate
        # ``np.unique`` dispatch — and converts to arrays once at the
        # end, where ``searchsorted`` wants them.
        # ---------------------------------------------------------------- #
        value_sets: List[tuple] = [()] * program.num_nets
        for net in netlist.inputs:
            value_sets[net_id[net]] = (0.0,)
        # out nid -> (delay, live input nids, level); only gates whose
        # output can move (some input with a non-empty arrival set).
        gate_of: Dict[int, Tuple[float, Tuple[int, ...], int]] = {}
        for gate in netlist.topological_order():
            out = net_id[gate.output]
            delay = annotation.delay_of(gate.name)
            live = tuple(i for i in (net_id[net] for net in gate.inputs)
                         if value_sets[i])
            if not live:
                continue  # constant-driven: the output can never change
            gate_of[out] = (delay, live, program.gate_level[gate.output])
            if len(live) == 1:
                # A sorted unique set shifted by a constant stays sorted
                # and unique; no merge needed.
                values = tuple(value + delay for value in value_sets[live[0]])
            else:
                merged = set()
                for source in live:
                    merged.update(value + delay for value in value_sets[source])
                values = tuple(sorted(merged))
            if len(values) > row_limit:
                # A single net with more candidate thresholds than the
                # whole row budget is the irregular-delay explosion the
                # limit exists for; abort before the sets snowball.
                raise _overflow()
            value_sets[out] = values
        empty = np.empty(0)
        values_of: List[np.ndarray] = [
            np.asarray(values, dtype=np.float64) if values else empty
            for values in value_sets]

        # ---------------------------------------------------------------- #
        # Query roots: the (net, threshold) pairs a run may sample.
        # ---------------------------------------------------------------- #
        roots: List[Tuple[int, int]] = []
        seen_nets: set = set()
        sample_order = list(netlist.outputs) + [
            net for nets in netlist.buses.values() for net in nets]
        for net in sample_order:
            if net in seen_nets:
                continue
            seen_nets.add(net)
            nid = net_id.get(net)
            if nid is None:
                continue
            size = values_of[nid].shape[0]
            if not size:
                continue
            if self.clock_periods is None:
                roots.extend((nid, k) for k in range(size))
            else:
                indices = {int(np.searchsorted(values_of[nid], clk, side="right"))
                           for clk in self.clock_periods}
                roots.extend((nid, k) for k in sorted(indices) if k < size)

        # ---------------------------------------------------------------- #
        # Threshold-row discovery.  Both strategies materialise a runtime
        # (changed) row per live net and one threshold node per distinct
        # source set of a gate (per-gate dedup), and both keep only rows
        # reachable from the roots — they differ in how they get there:
        #
        # * the **general** program (``clock_periods is None``) builds
        #   every threshold bottom-up with one vectorised lift per
        #   (gate, input) and prunes unreachable rows afterwards — every
        #   root references nearly every row, so a top-down walk would
        #   only add per-row Python overhead;
        # * a **clock-specialised** program walks top-down from the few
        #   sampled thresholds, so rows outside their backward cone
        #   (typically the vast majority) are never created at all.
        # ---------------------------------------------------------------- #
        if self.clock_periods is None:
            discovery = self._discover_full(gate_of, values_of, roots,
                                            row_limit, _overflow)
        else:
            discovery = self._discover_cone(gate_of, values_of, roots,
                                            row_limit, _overflow)
        pair_row, nodes, runtime_order, runtime_nets, next_row = discovery

        # ---------------------------------------------------------------- #
        # Renumber: row 0, then the runtime block, then batch-contiguous
        # threshold rows ordered by (level, fanin) so every batch writes
        # one slice of the mask matrix.
        # ---------------------------------------------------------------- #
        remap = np.full(next_row, -1, dtype=np.int64)
        remap[0] = 0
        cursor = 1
        for row in runtime_order:
            remap[row] = cursor
            cursor += 1
        self.runtime_nets = np.array(runtime_nets, dtype=np.int64)
        self.runtime_stop = cursor

        grouped: Dict[Tuple[int, int], List[int]] = {}
        for row, (level, fanin, _, _) in nodes.items():
            grouped.setdefault((level, fanin), []).append(row)
        self.batches: List[_ThresholdBatch] = []
        for (level, fanin), members in sorted(grouped.items()):
            start = cursor
            for row in members:
                remap[row] = cursor
                cursor += 1
            changed_rows = np.empty(len(members), dtype=np.int64)
            source_rows = tuple(np.empty(len(members), dtype=np.int64)
                                for _ in range(fanin))
            for position, row in enumerate(members):
                _, _, changed_row, key = nodes[row]
                changed_rows[position] = remap[changed_row]
                for pin in range(fanin):
                    source_rows[pin][position] = remap[key[pin]]
            self.batches.append(_ThresholdBatch(start=start, stop=cursor,
                                                changed_rows=changed_rows,
                                                source_rows=source_rows))

        self.num_rows = cursor
        self.values_of = values_of
        rows_of: List[np.ndarray] = [
            np.full(values.shape[0], -1, dtype=np.int64) for values in values_of]
        for (nid, k), row in pair_row.items():
            rows_of[nid][k] = remap[row]
        self.rows_of = rows_of
        self._dependencies = {
            int(remap[row]): (int(remap[node[2]]),
                              tuple(int(remap[source]) for source in node[3]))
            for row, node in nodes.items()}
        self._plan_cache: Dict[frozenset, _TimingPlan] = {}

    # ------------------------------------------------------------------ #
    # Discovery strategies (see the constructor comment for the split)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _discover_full(gate_of, values_of, roots, row_limit, overflow):
        """Build every threshold bottom-up, then prune to the roots' cone.

        Net IDs are assigned in topological order, so iterating nets by
        ID guarantees every gate sees its sources' rows already built.
        Returns ``(pair_row, nodes, runtime_order, runtime_nets,
        next_row)`` with ``nodes`` and the runtime lists already reduced
        to reachable rows (``pair_row`` may still name pruned rows; the
        renumbering maps those to -1).
        """
        pair_row: Dict[Tuple[int, int], int] = {}
        nodes: Dict[int, Tuple[int, int, int, Tuple[int, ...]]] = {}
        runtime_order: List[int] = []
        runtime_nets: List[int] = []
        next_row = 1  # row 0 is the all-zero mask
        for nid, values in enumerate(values_of):
            if not values.shape[0]:
                continue
            changed_row = pair_row[(nid, 0)] = next_row
            runtime_order.append(next_row)
            runtime_nets.append(nid)
            next_row += 1
            if nid not in gate_of:
                continue  # primary input: the changed row is its only threshold
            delay, live, level = gate_of[nid]
            source_table = [
                (source, np.searchsorted(values_of[source] + delay, values[1:],
                                         side="left"))
                for source in live]
            dedup: Dict[Tuple[int, ...], int] = {}
            for k in range(1, values.shape[0]):
                sources = set()
                for source, indices in source_table:
                    index = indices[k - 1]
                    if index < values_of[source].shape[0]:
                        row = pair_row[(source, index)]
                        if row:
                            sources.add(row)
                key = tuple(sorted(sources))
                if not key:  # unreachable threshold: mask is identically zero
                    pair_row[(nid, k)] = 0
                    continue
                existing = dedup.get(key)
                if existing is not None:
                    pair_row[(nid, k)] = existing
                    continue
                row = dedup[key] = pair_row[(nid, k)] = next_row
                nodes[row] = (level, len(key), changed_row, key)
                next_row += 1
                if next_row > row_limit:
                    raise overflow()

        # Backward-reachability pruning: only rows that can answer a
        # lateness query on a root, directly or through a lift chain,
        # are worth propagating.
        alive = {0}
        stack = [pair_row[pair] for pair in roots]
        while stack:
            row = stack.pop()
            if row in alive:
                continue
            alive.add(row)
            node = nodes.get(row)
            if node is not None:
                stack.append(node[2])  # the gate's own changed mask
                stack.extend(node[3])
        kept = [(row, nid) for row, nid in zip(runtime_order, runtime_nets)
                if row in alive]
        runtime_order = [row for row, _ in kept]
        runtime_nets = [nid for _, nid in kept]
        nodes = {row: node for row, node in nodes.items() if row in alive}
        return pair_row, nodes, runtime_order, runtime_nets, next_row

    @staticmethod
    def _discover_cone(gate_of, values_of, roots, row_limit, overflow):
        """Walk top-down from the roots, creating only reachable rows.

        The inverse strategy of :meth:`_discover_full`: nothing outside
        the roots' backward cone is ever materialised, which is what
        makes clock-specialised compilation an order of magnitude
        cheaper than the general program on multi-clock sweeps.
        """
        pair_row: Dict[Tuple[int, int], int] = {}
        dedup: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        nodes: Dict[int, Tuple[int, int, int, Tuple[int, ...]]] = {}
        runtime_order: List[int] = []
        runtime_nets: List[int] = []
        lift_cache: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        next_row = 1  # row 0 is the all-zero mask

        def lift_table(nid: int) -> List[Tuple[int, np.ndarray]]:
            # Per visited gate, one vectorised searchsorted per input:
            # ``(source nid, lift index of every non-minimal threshold)``.
            table = lift_cache.get(nid)
            if table is None:
                delay, live, _ = gate_of[nid]
                non_minimal = values_of[nid][1:]
                table = lift_cache[nid] = [
                    (source, np.searchsorted(values_of[source] + delay,
                                             non_minimal, side="left"))
                    for source in live]
            return table

        stack: List[Tuple[int, int, bool]] = [(nid, k, False)
                                              for nid, k in reversed(roots)]
        while stack:
            nid, k, expanded = stack.pop()
            if (nid, k) in pair_row:
                continue
            if k == 0:
                # The minimal threshold of a net is its changed mask,
                # filled straight from the settled-value diff at runtime.
                pair_row[(nid, 0)] = next_row
                runtime_order.append(next_row)
                runtime_nets.append(nid)
                next_row += 1
                if next_row > row_limit:
                    raise overflow()
                continue
            children: List[Tuple[int, int]] = [(nid, 0)]
            for source, indices in lift_table(nid):
                index = int(indices[k - 1])
                if index < values_of[source].shape[0]:
                    children.append((source, index))
            if not expanded:
                stack.append((nid, k, True))
                stack.extend((child_nid, child_k, False)
                             for child_nid, child_k in children)
                continue
            sources = tuple(sorted({pair_row[child] for child in children[1:]}
                                   - {0}))
            if not sources:  # unreachable threshold: mask is identically zero
                pair_row[(nid, k)] = 0
                continue
            key = (nid, sources)
            existing = dedup.get(key)
            if existing is not None:
                pair_row[(nid, k)] = existing
                continue
            row = dedup[key] = pair_row[(nid, k)] = next_row
            nodes[row] = (gate_of[nid][2], len(sources), pair_row[(nid, 0)],
                          sources)
            next_row += 1
            if next_row > row_limit:
                raise overflow()
        return pair_row, nodes, runtime_order, runtime_nets, next_row

    # ------------------------------------------------------------------ #
    def plan_for(self, root_rows: Sequence[int]) -> "_TimingPlan":
        """Specialised propagation plan covering only ``root_rows``.

        A trace run at a fixed set of clock periods samples a handful of
        lateness thresholds; everything not in their backward cone is
        dead work.  Plans are cached per root set — for the paper's
        three-clock sweeps they shrink the propagation to a quarter of
        the rows or less.
        """
        key = frozenset(int(row) for row in root_rows if row)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        alive = set()
        stack = list(key)
        while stack:
            row = stack.pop()
            if row in alive or row == 0:
                continue
            alive.add(row)
            node = self._dependencies.get(row)
            if node is not None:
                stack.append(node[0])
                stack.extend(node[1])

        runtime_selection = np.array(
            sorted(row for row in alive if row < self.runtime_stop), dtype=np.int64)
        plan_batches: List[_ThresholdBatch] = []
        for batch in self.batches:
            positions = np.array([k for k, row in enumerate(range(batch.start, batch.stop))
                                  if row in alive], dtype=np.int64)
            if not positions.size:
                continue
            if positions.size == batch.stop - batch.start:
                plan_batches.append(batch)
                continue
            plan_batches.append(_ThresholdBatch(
                start=batch.start, stop=batch.stop,
                changed_rows=batch.changed_rows[positions],
                source_rows=tuple(rows[positions] for rows in batch.source_rows),
                out_rows=positions + batch.start))
        plan = _TimingPlan(
            runtime_rows=runtime_selection,
            runtime_nets=self.runtime_nets[runtime_selection - 1],
            batches=plan_batches)
        self._plan_cache[key] = plan
        return plan

    def run(self, changed: np.ndarray, plan: Optional["_TimingPlan"] = None) -> np.ndarray:
        """Propagate threshold masks for one packed chunk.

        ``changed`` is the ``(num_nets, words)`` packed old-vs-new diff of
        settled values — or a stacked ``(num_nets, traces, words)`` batch
        (see :meth:`run_many`).  Returns the ``(num_rows, ...)`` mask
        matrix with the same trailing shape; with a ``plan`` only the
        rows in the plan's cone hold defined values (exactly the ones
        its roots sample).
        """
        masks = np.empty((self.num_rows,) + changed.shape[1:], dtype=np.uint64)
        masks[0] = 0
        if plan is None:
            masks[1:self.runtime_stop] = changed[self.runtime_nets]
            batches: Sequence[_ThresholdBatch] = self.batches
        else:
            masks[plan.runtime_rows] = changed[plan.runtime_nets]
            batches = plan.batches
        for batch in batches:
            if batch.out_rows is None:
                block = masks[batch.start:batch.stop]
                np.take(masks, batch.source_rows[0], axis=0, out=block)
            else:
                block = masks[batch.source_rows[0]]
            for source in batch.source_rows[1:]:
                block |= masks[source]
            block &= masks[batch.changed_rows]
            if batch.out_rows is not None:
                masks[batch.out_rows] = block
        return masks

    def run_many(self, changed: np.ndarray,
                 plan: Optional["_TimingPlan"] = None) -> np.ndarray:
        """Batched :meth:`run` over a stacked multi-trace diff tensor.

        ``changed`` has shape ``(num_nets, traces, words)``; the result
        has shape ``(num_rows, traces, words)``.  Every threshold batch
        propagates with **one** bitwise operation covering all traces,
        and because packed words of different traces never mix, slicing
        trace ``t`` out of the result is bit-identical to a standalone
        :meth:`run` on that trace's diff matrix.
        """
        if changed.ndim != 3:
            raise SimulationError(
                f"run_many expects a (num_nets, traces, words) tensor, "
                f"got shape {changed.shape}")
        return self.run(changed, plan=plan)

    def late_rows(self, nets: Sequence[str], clock_period: float) -> np.ndarray:
        """Mask row answering ``arrival > clock_period`` for each net.

        Nets that can never be late at this clock map to row 0 (all-zero).
        Only sampleable nets (primary outputs and bus members) survive
        compilation; querying any other net — or a clock period a
        clock-specialised program was not compiled for — raises.
        """
        rows = np.zeros(len(nets), dtype=np.int64)
        for k, net in enumerate(nets):
            nid = self.program.net_id[net]
            values = self.values_of[nid]
            idx = int(np.searchsorted(values, clock_period, side="right"))
            if idx < values.shape[0]:
                row = int(self.rows_of[nid][idx])
                if row < 0:
                    if self.clock_periods is not None:
                        raise SimulationError(
                            f"net {net!r} has no threshold row for clock period "
                            f"{clock_period!r}: the timing program was specialised "
                            f"to clock periods {self.clock_periods}")
                    raise SimulationError(
                        f"net {net!r} was pruned from the timing program and "
                        "cannot be sampled")
                rows[k] = row
        return rows


def compile_netlist(netlist) -> CompiledProgram:
    """Lower ``netlist`` into a :class:`CompiledProgram` (no caching here;
    use :meth:`Netlist.compiled` for the cached accessor)."""
    return CompiledProgram(netlist)


def packed_stimulus(netlist, bit_inputs: Mapping[str, np.ndarray]) -> Tuple[int, int]:
    """Validate that a stimulus dict is eligible for the packed engine.

    Returns ``(length, words)``; raises :class:`SimulationError` when the
    per-net arrays disagree on length.
    """
    length: Optional[int] = None
    for net, bits in bit_inputs.items():
        size = int(np.asarray(bits).shape[0])
        if length is None:
            length = size
        elif size != length:
            raise SimulationError(
                f"stimulus arrays disagree on trace length ({size} vs {length})")
    if length is None:
        raise SimulationError(f"netlist {netlist.name!r} received an empty stimulus")
    return length, packed_word_count(length)
