"""Gate-level circuit substrate: cells, library, netlists, delay annotation.

This package replaces the paper's commercial synthesis/simulation stack
(Design Compiler netlists + SDF + ModelSim) with a self-contained model:

* :mod:`~repro.circuit.cells` — functional models of a small standard-cell
  set (INV/NAND/XOR/MUX/...).
* :mod:`~repro.circuit.library` — a 65 nm-like technology library giving
  each cell a nominal delay and legal sizing range.
* :mod:`~repro.circuit.netlist` — the netlist graph (nets, gate instances,
  primary IOs) plus zero-delay logic evaluation.
* :mod:`~repro.circuit.compiled` — netlists lowered to bit-packed
  structure-of-arrays programs (64 simulation cycles per ``uint64``
  word) for logic evaluation and arrival-threshold timing.
* :mod:`~repro.circuit.builder` — convenience API for writing generators.
* :mod:`~repro.circuit.sdf` — per-instance delay annotation (a minimal
  SDF equivalent) with a text serialisation.
* :mod:`~repro.circuit.validate` — structural legality checks.
"""

from repro.circuit.cells import CELLS, Cell, cell
from repro.circuit.compiled import CompiledProgram, PackedTimingProgram, compile_netlist
from repro.circuit.library import CellTiming, TechnologyLibrary, default_library
from repro.circuit.netlist import CONST0, CONST1, Gate, Netlist
from repro.circuit.builder import NetlistBuilder
from repro.circuit.sdf import DelayAnnotation
from repro.circuit.validate import check_netlist

__all__ = [
    "CELLS",
    "Cell",
    "cell",
    "CompiledProgram",
    "PackedTimingProgram",
    "compile_netlist",
    "CellTiming",
    "TechnologyLibrary",
    "default_library",
    "CONST0",
    "CONST1",
    "Gate",
    "Netlist",
    "NetlistBuilder",
    "DelayAnnotation",
    "check_netlist",
]
