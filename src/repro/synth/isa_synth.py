"""Structural netlist generator for the Inexact Speculative Adder.

The generated netlist follows the block diagram of Fig. 1 of the paper:
for every speculative segment a SPEC block (carry look-ahead over the
``spec_size`` bits below the block boundary), an ADD block (a group
carry-look-ahead sub-adder seeded with the speculated carry) and a COMP
block (fault detection, LSB correction, MSB error reduction applied to
the *preceding* segment's sum).

The netlist is logically equivalent to the behavioural model in
:mod:`repro.core.isa`; the equivalence is enforced by integration tests
over random vectors for every paper design.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.circuit.builder import NetlistBuilder
from repro.circuit.netlist import Netlist
from repro.core.config import ISAConfig
from repro.synth.adders import adder_bits

#: Sub-adder architecture used for the ADD blocks by default.  Kogge-Stone
#: matches the kind of aggressive structure a synthesis tool picks for a
#: 3.3 GHz constraint and gives realistic dynamic path-sensitisation
#: behaviour under overclocking.
DEFAULT_SUB_ADDER = "kogge-stone"


def _speculator(builder: NetlistBuilder, a_bits: List[str], b_bits: List[str],
                boundary: int, spec_size: int, guess: int) -> str:
    """Build the SPEC block for the carry entering ``boundary``.

    Returns the net carrying the speculated carry.  The carry is the
    generate signal of the window (flat AND/OR terms); when the window
    fully propagates the generate is 0 and the guessed value applies
    (the paper's designs guess 0, so no extra logic is needed; a guess of
    1 ORs the window propagate in).
    """
    if spec_size == 0:
        return builder.const(guess)
    window = range(boundary - spec_size, boundary)
    propagate = [builder.xor2(a_bits[i], b_bits[i]) for i in window]
    generate = [builder.and2(a_bits[i], b_bits[i]) for i in window]
    terms: List[str] = []
    for k in range(spec_size - 1, -1, -1):
        literals = propagate[k + 1:] + [generate[k]]
        terms.append(builder.and_tree(literals))
    spec = builder.or_tree(terms)
    if guess == 1:
        spec = builder.or2(spec, builder.and_tree(propagate))
    return spec


def _correction(builder: NetlistBuilder, local_sums: List[str], correction: int,
                positive_fault: str, negative_fault: Optional[str]
                ) -> Tuple[List[str], str, str]:
    """Build the LSB-correction logic of the COMP block.

    Returns ``(corrected_sums, corrected, uncorrected)`` where ``corrected``
    indicates that the fault was absorbed and ``uncorrected`` that a fault
    occurred but could not be corrected (the field was saturated).

    To keep the COMP off the critical path (as the paper's architecture
    does), the incremented field is computed concurrently with the local
    addition and the late fault signal only drives the final selection
    multiplexers.
    """
    if correction == 0:
        return list(local_sums), builder.zero, builder.zero
    field = local_sums[:correction]
    all_ones = builder.and_tree(field)
    # Speculatively incremented field (does not wait for the fault signal).
    incremented = builder.incrementer(field, builder.one)
    can_increment = builder.and2(positive_fault, builder.inv(all_ones))
    cannot_increment = builder.and2(positive_fault, all_ones)
    select_incremented = can_increment
    corrected_flag = can_increment
    uncorrected_flag = cannot_increment
    new_field = [builder.mux2(original, plus_one, select_incremented)
                 for original, plus_one in zip(field, incremented)]
    if negative_fault is not None:
        all_zeros = builder.inv(builder.or_tree(field))
        decremented = builder.decrementer(field, builder.one)
        can_decrement = builder.and2(negative_fault, builder.inv(all_zeros))
        cannot_decrement = builder.and2(negative_fault, all_zeros)
        new_field = [builder.mux2(current, minus_one, can_decrement)
                     for current, minus_one in zip(new_field, decremented)]
        corrected_flag = builder.or2(can_increment, can_decrement)
        uncorrected_flag = builder.or2(cannot_increment, cannot_decrement)
    return new_field + list(local_sums[correction:]), corrected_flag, uncorrected_flag


def _reduction(builder: NetlistBuilder, previous_sums: List[str], reduction: int,
               reduce_up: str, reduce_down: Optional[str]) -> List[str]:
    """Build the error-reduction (balancing) logic applied to the preceding sum.

    The ``reduction`` MSBs of the preceding block sum are forced to 1 when
    a missing carry could not be corrected (``reduce_up``) and to 0 for an
    uncorrectable spurious carry (``reduce_down``), bounding the residual
    error of the fault.
    """
    if reduction == 0:
        return list(previous_sums)
    block_size = len(previous_sums)
    result = list(previous_sums)
    for position in range(block_size - reduction, block_size):
        forced = builder.or2(result[position], reduce_up)
        if reduce_down is not None:
            forced = builder.and2(forced, builder.inv(reduce_down))
        result[position] = forced
    return result


def isa_adder(config: ISAConfig, name: Optional[str] = None,
              sub_adder: str = DEFAULT_SUB_ADDER) -> Netlist:
    """Generate the gate-level netlist of an Inexact Speculative Adder.

    Parameters
    ----------
    config:
        The ISA configuration (width, block size, speculation, correction,
        reduction).
    name:
        Netlist name; defaults to the configuration label.
    sub_adder:
        Architecture of the ADD blocks (one of
        :data:`repro.synth.adders.ADDER_ARCHITECTURES`).
    """
    builder = NetlistBuilder(name or config.label)
    a_bits = builder.input_bus("A", config.width)
    b_bits = builder.input_bus("B", config.width)
    cin = builder.input_bit("cin")

    # A guess of 0 makes spurious-carry faults impossible, so the
    # decrement/force-to-zero compensation hardware is not instantiated
    # (mirroring what logic synthesis would prune away).
    negative_possible = config.speculate_on_propagate == 1

    block_sums: List[List[str]] = []
    previous_cout: Optional[str] = None

    for index, offset in enumerate(config.block_offsets):
        a_blk = a_bits[offset:offset + config.block_size]
        b_blk = b_bits[offset:offset + config.block_size]
        if index == 0:
            spec = cin
        else:
            spec = _speculator(builder, a_bits, b_bits, offset, config.spec_size,
                               config.speculate_on_propagate)
        local_sums, local_cout = adder_bits(builder, a_blk, b_blk, spec,
                                            architecture=sub_adder)

        if index > 0 and (config.correction > 0 or config.reduction > 0):
            # COMP: detect a speculation fault by comparing the speculated
            # carry with the carry out of the preceding ADD block.  With a
            # guess of 0 every fault is a missing carry (the window cannot
            # speculate 1 unless the carry really is 1), so the fault
            # direction logic degenerates and is not instantiated.
            fault = builder.xor2(spec, previous_cout)
            if negative_possible:
                positive_fault = builder.and2(fault, previous_cout)
                negative_fault = builder.and2(fault, builder.inv(previous_cout))
            else:
                positive_fault, negative_fault = fault, None

            local_sums, corrected, uncorrected = _correction(
                builder, local_sums, config.correction, positive_fault, negative_fault)

            if config.reduction > 0:
                if config.correction == 0:
                    uncorrected = fault
                reduce_up = builder.and2(uncorrected, previous_cout) \
                    if negative_possible else uncorrected
                reduce_down = builder.and2(uncorrected, builder.inv(previous_cout)) \
                    if negative_possible else None
                block_sums[index - 1] = _reduction(
                    builder, block_sums[index - 1], config.reduction, reduce_up, reduce_down)

        block_sums.append(local_sums)
        previous_cout = local_cout

    outputs: List[str] = []
    for sums in block_sums:
        outputs.extend(sums)
    outputs.append(previous_cout)
    builder.output_bus("S", outputs)
    return builder.build()
