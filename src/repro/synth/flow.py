"""End-to-end synthesis flow: generate, validate, size, annotate.

``synthesize`` is the high-level entry point used by the experiments: it
accepts either an :class:`~repro.core.config.ISAConfig` (the inexact
designs) or a ready-made netlist (the exact baseline or any custom
architecture), runs structural validation, applies the slack-driven
sizing step against the clock constraint and optionally adds per-instance
process variation, and returns a :class:`SynthesizedDesign` bundling the
netlist with its delay annotation and timing reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.circuit.library import TechnologyLibrary, default_library
from repro.circuit.netlist import Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.circuit.validate import NetlistReport, check_netlist
from repro.core.config import ISAConfig
from repro.exceptions import SynthesisError
from repro.synth.adders import ADDER_ARCHITECTURES, carry_lookahead_adder, kogge_stone_adder
from repro.synth.isa_synth import isa_adder
from repro.synth.optimize import optimize
from repro.synth.sizing import SizingOptions, SizingResult, size_to_constraint
from repro.timing.clocking import PAPER_SAFE_PERIOD
from repro.timing.sta import TimingReport, analyze_timing
from repro.utils.phases import phase
from repro.utils.rng import SeedLike, ensure_rng

DesignSpec = Union[ISAConfig, Netlist]


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the synthesis flow (defaults reproduce the paper's setup)."""

    clock_constraint: float = PAPER_SAFE_PERIOD
    library: Optional[TechnologyLibrary] = None
    enable_optimization: bool = True
    enable_sizing: bool = True
    slack_utilization: float = 0.5
    fixup_iterations: int = 6
    adder_architecture: str = "kogge-stone"
    variation_sigma: float = 0.0
    variation_seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.adder_architecture not in ADDER_ARCHITECTURES:
            raise SynthesisError(
                f"unknown adder architecture {self.adder_architecture!r}; "
                f"known: {sorted(ADDER_ARCHITECTURES)}")

    def resolved_library(self) -> TechnologyLibrary:
        """The technology library to use (defaults to the synthetic 65 nm one)."""
        return self.library if self.library is not None else default_library()


@dataclass(frozen=True)
class SynthesizedDesign:
    """A synthesized design: netlist + delay annotation + reports."""

    name: str
    netlist: Netlist
    annotation: DelayAnnotation
    library: TechnologyLibrary
    options: SynthesisOptions
    netlist_report: NetlistReport
    timing_report: TimingReport
    sizing_result: Optional[SizingResult]
    config: Optional[ISAConfig] = None

    @property
    def critical_path_delay(self) -> float:
        """Critical path delay of the synthesized (sized) design, in seconds."""
        return self.timing_report.critical_path_delay

    @property
    def is_exact(self) -> bool:
        """True when the design is the exact baseline (no ISA configuration)."""
        return self.config is None or self.config.is_exact

    def describe(self) -> str:
        """Human-readable summary of the synthesis outcome."""
        lines = [
            f"Design {self.name}",
            f"  gates               : {self.netlist.num_gates}",
            f"  logic depth         : {self.netlist_report.logic_depth}",
            f"  critical path       : {self.critical_path_delay * 1e12:.1f} ps",
            f"  clock constraint    : {self.options.clock_constraint * 1e12:.1f} ps",
        ]
        if self.sizing_result is not None:
            lines.append(f"  nominal critical    : "
                         f"{self.sizing_result.nominal_critical_path * 1e12:.1f} ps")
            lines.append(f"  power recovery proxy: "
                         f"{self.sizing_result.power_recovery * 100:.1f}% slower gates")
        return "\n".join(lines)


def exact_adder_netlist(width: int = 32, architecture: str = "kogge-stone") -> Netlist:
    """The exact baseline architecture used in the paper's figures.

    A Kogge-Stone prefix adder is the kind of structure synthesis picks
    for an aggressive 3.3 GHz constraint; the carry-look-ahead generator
    remains available through ``architecture="cla"``.
    """
    if architecture == "cla":
        return carry_lookahead_adder(width=width, name="exact")
    if architecture == "kogge-stone":
        return kogge_stone_adder(width=width, name="exact")
    from repro.synth.adders import brent_kung_adder, ripple_carry_adder
    if architecture == "brent-kung":
        return brent_kung_adder(width=width, name="exact")
    if architecture == "ripple":
        return ripple_carry_adder(width=width, name="exact")
    raise SynthesisError(f"unknown exact-adder architecture {architecture!r}")


def _materialise(design: DesignSpec, options: SynthesisOptions) -> Tuple[Netlist, Optional[ISAConfig]]:
    if isinstance(design, Netlist):
        return design, None
    if isinstance(design, ISAConfig):
        if design.is_exact:
            return exact_adder_netlist(design.width, options.adder_architecture), design
        return isa_adder(design, sub_adder=options.adder_architecture), design
    raise SynthesisError(f"cannot synthesize object of type {type(design).__name__}")


def _apply_variation(netlist: Netlist, annotation: DelayAnnotation,
                     sigma: float, seed: SeedLike) -> DelayAnnotation:
    """Apply per-instance log-normal delay variation (post-synthesis PVT model)."""
    if sigma <= 0:
        return annotation
    rng = ensure_rng(seed)
    varied = annotation.copy()
    for gate in netlist.gates:
        factor = float(rng.lognormal(mean=0.0, sigma=sigma))
        varied.set_delay(gate.name, annotation.delay_of(gate.name) * factor)
    return varied


def synthesize(design: DesignSpec, options: Optional[SynthesisOptions] = None) -> SynthesizedDesign:
    """Run the full synthesis flow on a design specification.

    Parameters
    ----------
    design:
        Either an :class:`~repro.core.config.ISAConfig` (an ISA or, if the
        configuration is degenerate, the exact adder) or a pre-built
        :class:`~repro.circuit.netlist.Netlist`.
    options:
        Flow options; the defaults reproduce the paper's 0.3 ns constraint
        with the synthetic 65 nm library.
    """
    options = options or SynthesisOptions()
    library = options.resolved_library()
    netlist, config = _materialise(design, options)
    if options.enable_optimization:
        with phase("synth.optimize"):
            netlist = optimize(netlist)
    netlist_report = check_netlist(netlist)

    sizing_result: Optional[SizingResult] = None
    if options.enable_sizing:
        sizing_options = SizingOptions(
            clock_constraint=options.clock_constraint,
            slack_utilization=options.slack_utilization,
            fixup_iterations=options.fixup_iterations)
        with phase("synth.sizing"):
            sizing_result = size_to_constraint(netlist, library, sizing_options)
        annotation = sizing_result.annotation
    else:
        annotation = DelayAnnotation.nominal(netlist, library,
                                             clock_constraint=options.clock_constraint)

    annotation = _apply_variation(netlist, annotation, options.variation_sigma,
                                  options.variation_seed)
    with phase("synth.sta"):
        timing_report = analyze_timing(netlist, annotation,
                                       clock_period=options.clock_constraint)

    return SynthesizedDesign(
        name=netlist.name,
        netlist=netlist,
        annotation=annotation,
        library=library,
        options=options,
        netlist_report=netlist_report,
        timing_report=timing_report,
        sizing_result=sizing_result,
        config=config,
    )
