"""Structural netlist generators for exact adders.

Four classical architectures are provided.  The Kogge-Stone parallel
prefix adder is the workhorse: it is used for the exact baseline and for
the ISA sub-adders because it is the kind of aggressive structure
synthesis picks for a 3.3 GHz constraint and because its dense prefix
tree gives realistic dynamic path sensitisation under overclocking.
Ripple-carry, group carry-look-ahead and Brent-Kung generators are
provided for design-space exploration and as additional validation
targets of the timing substrate.

All generators build 32-/n-bit unsigned adders with operand buses ``A``
and ``B``, a carry-in input ``cin`` and an output bus ``S`` of
``width + 1`` bits (the MSB is the carry out).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuit.builder import NetlistBuilder
from repro.circuit.netlist import Netlist
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int


def _propagate_generate(builder: NetlistBuilder, a_bits: Sequence[str],
                        b_bits: Sequence[str]) -> Tuple[List[str], List[str]]:
    """Per-bit propagate (XOR) and generate (AND) signals."""
    propagate = [builder.xor2(a, b) for a, b in zip(a_bits, b_bits)]
    generate = [builder.and2(a, b) for a, b in zip(a_bits, b_bits)]
    return propagate, generate


def ripple_carry_bits(builder: NetlistBuilder, a_bits: Sequence[str], b_bits: Sequence[str],
                      cin: str) -> Tuple[List[str], str]:
    """Ripple-carry chain of full adders; returns ``(sum_bits, carry_out)``."""
    sums: List[str] = []
    carry = cin
    for a, b in zip(a_bits, b_bits):
        total, carry = builder.full_adder(a, b, carry)
        sums.append(total)
    return sums, carry


def cla_bits(builder: NetlistBuilder, a_bits: Sequence[str], b_bits: Sequence[str],
             cin: str, group: int = 4) -> Tuple[List[str], str]:
    """Group carry-look-ahead adder; returns ``(sum_bits, carry_out)``.

    Within each group the carry into every bit is computed from the group
    carry-in through flat (tree-structured) prefix generate/propagate
    terms, so the critical path is the inter-group carry chain — two
    gates per group — plus a constant intra-group depth.
    """
    if len(a_bits) != len(b_bits):
        raise ConfigurationError("operand bit vectors must have equal length")
    check_positive_int("group", group)
    propagate, generate = _propagate_generate(builder, a_bits, b_bits)
    sums: List[str] = []
    group_carry = cin
    width = len(a_bits)
    for start in range(0, width, group):
        stop = min(start + group, width)
        indices = list(range(start, stop))
        # Prefix generate/propagate of the group (relative to the group LSB),
        # built as flat AND/OR trees so their depth is constant per group.
        prefix_generate: List[str] = []
        prefix_propagate: List[str] = []
        for j, idx in enumerate(indices):
            # G[0..j] = OR over k of (p[j] & ... & p[k+1] & g[k])
            terms: List[str] = []
            for k in range(j, -1, -1):
                literals = [propagate[i] for i in indices[k + 1:j + 1]] + [generate[indices[k]]]
                terms.append(builder.and_tree(literals))
            prefix_generate.append(builder.or_tree(terms))
            prefix_propagate.append(builder.and_tree([propagate[i] for i in indices[:j + 1]]))
        # Carry into each bit of the group and the group carry out.
        carries = [group_carry]
        for j in range(1, len(indices)):
            carries.append(builder.or2(prefix_generate[j - 1],
                                       builder.and2(prefix_propagate[j - 1], group_carry)))
        for j, idx in enumerate(indices):
            sums.append(builder.xor2(propagate[idx], carries[j]))
        group_carry = builder.or2(prefix_generate[-1],
                                  builder.and2(prefix_propagate[-1], group_carry))
    return sums, group_carry


def prefix_adder_bits(builder: NetlistBuilder, a_bits: Sequence[str], b_bits: Sequence[str],
                      cin: str, pairs_schedule: Sequence[Sequence[Tuple[int, int]]]
                      ) -> Tuple[List[str], str]:
    """Shared machinery for parallel-prefix adders (Kogge-Stone, Brent-Kung).

    ``pairs_schedule`` lists, per prefix level, the (target, source) index
    pairs to combine with the usual (G, P) o (G', P') operator.
    """
    propagate, generate = _propagate_generate(builder, a_bits, b_bits)
    width = len(a_bits)
    prefix_g = list(generate)
    prefix_p = list(propagate)
    for level in pairs_schedule:
        new_g = list(prefix_g)
        new_p = list(prefix_p)
        for target, source in level:
            new_g[target] = builder.or2(prefix_g[target],
                                        builder.and2(prefix_p[target], prefix_g[source]))
            new_p[target] = builder.and2(prefix_p[target], prefix_p[source])
        prefix_g = new_g
        prefix_p = new_p
    # carry into bit i is prefix over bits [0, i) combined with cin
    carries = [cin]
    for i in range(1, width + 1):
        carries.append(builder.or2(prefix_g[i - 1],
                                   builder.and2(prefix_p[i - 1], cin)))
    sums = [builder.xor2(propagate[i], carries[i]) for i in range(width)]
    return sums, carries[width]


def _kogge_stone_schedule(width: int) -> List[List[Tuple[int, int]]]:
    schedule: List[List[Tuple[int, int]]] = []
    distance = 1
    while distance < width:
        schedule.append([(i, i - distance) for i in range(distance, width)])
        distance *= 2
    return schedule


def _brent_kung_schedule(width: int) -> List[List[Tuple[int, int]]]:
    schedule: List[List[Tuple[int, int]]] = []
    # Up-sweep: combine at strides 2, 4, 8, ...
    distance = 1
    while distance < width:
        level = [(i, i - distance) for i in range(2 * distance - 1, width, 2 * distance)]
        if level:
            schedule.append(level)
        distance *= 2
    # Down-sweep: fill in the remaining prefixes.
    distance //= 2
    while distance >= 1:
        level = [(i, i - distance) for i in range(3 * distance - 1, width, 2 * distance)]
        if level:
            schedule.append(level)
        distance //= 2
    return schedule


def kogge_stone_bits(builder: NetlistBuilder, a_bits: Sequence[str], b_bits: Sequence[str],
                     cin: str) -> Tuple[List[str], str]:
    """Kogge-Stone parallel-prefix adder on explicit bit vectors."""
    return prefix_adder_bits(builder, a_bits, b_bits, cin, _kogge_stone_schedule(len(a_bits)))


def brent_kung_bits(builder: NetlistBuilder, a_bits: Sequence[str], b_bits: Sequence[str],
                    cin: str) -> Tuple[List[str], str]:
    """Brent-Kung parallel-prefix adder on explicit bit vectors."""
    return prefix_adder_bits(builder, a_bits, b_bits, cin, _brent_kung_schedule(len(a_bits)))


#: Registry of sub-adder generators usable inside larger designs (ISA ADD blocks).
ADDER_ARCHITECTURES = {
    "ripple": ripple_carry_bits,
    "cla": cla_bits,
    "kogge-stone": kogge_stone_bits,
    "brent-kung": brent_kung_bits,
}


def adder_bits(builder: NetlistBuilder, a_bits: Sequence[str], b_bits: Sequence[str],
               cin: str, architecture: str = "kogge-stone") -> Tuple[List[str], str]:
    """Instantiate one of the registered adder architectures on bit vectors."""
    try:
        generator = ADDER_ARCHITECTURES[architecture]
    except KeyError:
        raise ConfigurationError(
            f"unknown adder architecture {architecture!r}; "
            f"known: {sorted(ADDER_ARCHITECTURES)}") from None
    return generator(builder, a_bits, b_bits, cin)


def _finish_adder(builder: NetlistBuilder, sums: Sequence[str], cout: str) -> Netlist:
    builder.output_bus("S", list(sums) + [cout])
    netlist = builder.build()
    return netlist


def _start_adder(name: str, width: int) -> Tuple[NetlistBuilder, List[str], List[str], str]:
    check_positive_int("width", width)
    builder = NetlistBuilder(name)
    a_bits = builder.input_bus("A", width)
    b_bits = builder.input_bus("B", width)
    cin = builder.input_bit("cin")
    return builder, a_bits, b_bits, cin


def ripple_carry_adder(width: int = 32, name: Optional[str] = None) -> Netlist:
    """Ripple-carry adder — the deepest, smallest architecture."""
    builder, a_bits, b_bits, cin = _start_adder(name or f"rca{width}", width)
    sums, cout = ripple_carry_bits(builder, a_bits, b_bits, cin)
    return _finish_adder(builder, sums, cout)


def carry_lookahead_adder(width: int = 32, group: int = 4, name: Optional[str] = None) -> Netlist:
    """Group carry-look-ahead adder — the exact baseline of the experiments."""
    builder, a_bits, b_bits, cin = _start_adder(name or f"cla{width}", width)
    sums, cout = cla_bits(builder, a_bits, b_bits, cin, group=group)
    return _finish_adder(builder, sums, cout)


def kogge_stone_adder(width: int = 32, name: Optional[str] = None) -> Netlist:
    """Kogge-Stone parallel-prefix adder — minimum logic depth, maximum area."""
    builder, a_bits, b_bits, cin = _start_adder(name or f"ks{width}", width)
    sums, cout = kogge_stone_bits(builder, a_bits, b_bits, cin)
    return _finish_adder(builder, sums, cout)


def brent_kung_adder(width: int = 32, name: Optional[str] = None) -> Netlist:
    """Brent-Kung parallel-prefix adder — a sparser prefix tree."""
    builder, a_bits, b_bits, cin = _start_adder(name or f"bk{width}", width)
    sums, cout = brent_kung_bits(builder, a_bits, b_bits, cin)
    return _finish_adder(builder, sums, cout)
