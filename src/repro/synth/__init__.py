"""Synthesis substrate: netlist generators, gate sizing and the full flow.

The paper synthesizes its adders with a commercial tool into an
industrial 65 nm library under a 0.3 ns timing constraint.  This package
replaces that step:

* :mod:`~repro.synth.adders` — structural generators for exact adders
  (ripple-carry, group carry-look-ahead, Kogge-Stone, Brent-Kung).
* :mod:`~repro.synth.isa_synth` — structural generator for the Inexact
  Speculative Adder architecture (SPEC / ADD / COMP blocks of Fig. 1).
* :mod:`~repro.synth.sizing` — slack-driven gate sizing that re-targets a
  netlist to a clock constraint, trading slack for "power" the same way a
  synthesis tool does, which produces the realistic wall of near-critical
  paths that makes overclocking interesting.
* :mod:`~repro.synth.flow` — ``synthesize()``: generate, validate, size
  and annotate a design in one call.
"""

from repro.synth.adders import (
    brent_kung_adder,
    carry_lookahead_adder,
    kogge_stone_adder,
    ripple_carry_adder,
)
from repro.synth.isa_synth import isa_adder
from repro.synth.sizing import SizingOptions, SizingResult, size_to_constraint
from repro.synth.flow import SynthesisOptions, SynthesizedDesign, synthesize

__all__ = [
    "ripple_carry_adder",
    "carry_lookahead_adder",
    "kogge_stone_adder",
    "brent_kung_adder",
    "isa_adder",
    "SizingOptions",
    "SizingResult",
    "size_to_constraint",
    "SynthesisOptions",
    "SynthesizedDesign",
    "synthesize",
]
