"""Logic optimisation: constant propagation and dead-logic removal.

The structural generators purposely emit straightforward logic (a
constant-0 speculated carry still feeds regular carry-look-ahead cells,
unused block carry-outs are still computed).  A synthesis tool would
sweep all of that away; this module reproduces the two passes that matter
for the timing behaviour of the paper's designs:

* :func:`propagate_constants` — folds constants through the logic and
  simplifies gates with constant or redundant inputs (an AND with a
  constant-0 speculated carry disappears, a MUX with a constant select
  becomes a wire, ...).
* :func:`prune_unused` — removes logic that no primary output depends on
  (e.g. the carry-out chain of a speculative segment whose COMP block is
  absent).

``optimize`` runs both until the netlist stops shrinking.  By default it
drives the passes over an integer-indexed in-memory view of the netlist
(:class:`_IndexedDesign`) with path-compressed alias resolution,
materialising a real :class:`~repro.circuit.netlist.Netlist` only once at
the end; ``vector=False`` / ``REPRO_SYNTH_VECTOR=0`` selects the original
netlist-per-pass reference path instead.  Both paths share the
simplification table and the fresh-name allocator, and produce
gate-identical netlists (enforced by ``tests/test_synth_vector.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.circuit.netlist import CONST0, CONST1, Gate, Netlist
from repro.exceptions import NetlistError
from repro.utils.vector import use_vector

#: Returned by the simplifier: either a constant, an alias to another net,
#: or a (possibly rewritten) gate.
_Simplified = Tuple[str, object]


def _resolve(net: str, alias: Dict[str, str]) -> str:
    """Resolve a net through the alias map, compressing the walked path.

    Deep speculative segments can build long alias chains (a wire of
    wires of wires); pointing every visited net directly at the root
    keeps later lookups amortised O(1) instead of O(chain).
    """
    root = net
    while root in alias:
        root = alias[root]
    while net != root:
        alias[net], net = root, alias[net]
    return root


def _const_of(net: str) -> Optional[int]:
    if net == CONST0:
        return 0
    if net == CONST1:
        return 1
    return None


def _simplify(cell: str, inputs: List[object], values: List[Optional[int]]) -> _Simplified:
    """Simplify one gate given its input tokens and their constant values.

    ``inputs`` are opaque tokens (net names on the reference path, net IDs
    on the indexed path); ``values[i]`` is 0/1 when token ``i`` is a
    constant, else ``None``.  Returns ``("const", 0/1)``,
    ``("alias", token)`` or ``("gate", (cell, tokens))`` where a token may
    be wrapped in :class:`_Inverted`.
    """
    if all(value is not None for value in values):
        from repro.circuit.cells import cell as cell_lookup
        result = int(cell_lookup(cell).evaluate(*values))
        return ("const", result)

    def gate(new_cell: str, *nets: object) -> _Simplified:
        return ("gate", (new_cell, list(nets)))

    if cell == "BUF":
        return ("alias", inputs[0])
    if cell == "INV":
        return gate("INV", inputs[0])

    if cell in ("AND2", "AND3"):
        if 0 in values:
            return ("const", 0)
        live = [net for net, value in zip(inputs, values) if value is None]
        if len(live) == 1:
            return ("alias", live[0])
        if len(live) == 2:
            return gate("AND2", *live)
        return gate(cell, *inputs)
    if cell in ("OR2", "OR3"):
        if 1 in values:
            return ("const", 1)
        live = [net for net, value in zip(inputs, values) if value is None]
        if len(live) == 1:
            return ("alias", live[0])
        if len(live) == 2:
            return gate("OR2", *live)
        return gate(cell, *inputs)
    if cell == "NAND2":
        if 0 in values:
            return ("const", 1)
        live = [net for net, value in zip(inputs, values) if value is None]
        if len(live) == 1:
            return gate("INV", live[0])
        return gate(cell, *inputs)
    if cell == "NOR2":
        if 1 in values:
            return ("const", 0)
        live = [net for net, value in zip(inputs, values) if value is None]
        if len(live) == 1:
            return gate("INV", live[0])
        return gate(cell, *inputs)
    if cell in ("XOR2", "XNOR2"):
        invert = cell == "XNOR2"
        live = [net for net, value in zip(inputs, values) if value is None]
        constant_parity = sum(value for value in values if value is not None) % 2
        if constant_parity == 1:
            invert = not invert
        if len(live) == 1:
            return gate("INV", live[0]) if invert else ("alias", live[0])
        return gate("XNOR2" if invert else "XOR2", *live)
    if cell == "MUX2":
        d0, d1, sel = inputs
        sel_value = values[2]
        if sel_value == 0:
            return ("alias", d0) if values[0] is None else ("const", values[0])
        if sel_value == 1:
            return ("alias", d1) if values[1] is None else ("const", values[1])
        if values[0] == 0 and values[1] == 1:
            return ("alias", sel)
        if values[0] == 1 and values[1] == 0:
            return gate("INV", sel)
        if d0 == d1:
            return ("alias", d0)
        if values[0] == 0:
            return gate("AND2", d1, sel)
        if values[1] == 0:
            return gate("AND2", d0, _invert_marker(sel))
        if values[0] == 1:
            return gate("OR2", d1, _invert_marker(sel))
        if values[1] == 1:
            return gate("OR2", d0, sel)
        return gate(cell, *inputs)
    if cell == "MAJ3":
        a, b, c = inputs
        if 0 in values:
            live = [net for net, value in zip(inputs, values) if value is None]
            if len(live) == 2:
                return gate("AND2", *live)
            if len(live) == 1:
                return ("const", 0) if values.count(0) >= 2 else ("alias", live[0])
        if 1 in values:
            live = [net for net, value in zip(inputs, values) if value is None]
            if len(live) == 2:
                return gate("OR2", *live)
            if len(live) == 1:
                return ("const", 1) if values.count(1) >= 2 else ("alias", live[0])
        return gate(cell, *inputs)
    if cell == "AOI21":
        a, b, c = inputs
        if values[2] == 1:
            return ("const", 0)
        if values[2] == 0:
            live = [net for net, value in zip((a, b), values[:2]) if value is None]
            if len(live) == 2:
                return gate("NAND2", a, b)
            if len(live) == 1:
                return gate("INV", live[0]) if 1 in values[:2] else ("const", 1)
        if values[0] == 0 or values[1] == 0:
            return gate("INV", c)
        if values[0] == 1:
            return gate("NOR2", b, c)
        if values[1] == 1:
            return gate("NOR2", a, c)
        return gate(cell, *inputs)
    if cell == "OAI21":
        a, b, c = inputs
        if values[2] == 0:
            return ("const", 1)
        if values[2] == 1:
            live = [net for net, value in zip((a, b), values[:2]) if value is None]
            if len(live) == 2:
                return gate("NOR2", a, b)
            if len(live) == 1:
                return gate("INV", live[0]) if 0 in values[:2] else ("const", 0)
        if values[0] == 1 or values[1] == 1:
            return gate("INV", c)
        if values[0] == 0:
            return gate("NAND2", b, c)
        if values[1] == 0:
            return gate("NAND2", a, c)
        return gate(cell, *inputs)
    return ("gate", (cell, list(inputs)))


class _Inverted:
    """Sentinel wrapper signalling that a token must be inverted before use."""

    __slots__ = ("net",)

    def __init__(self, net: object) -> None:
        self.net = net


def _invert_marker(net: object) -> _Inverted:
    return _Inverted(net)


def _fresh_inverter_names(gate_name: str, output_net: str, pin: int,
                          taken_gates: Set[str], taken_nets: Set[str]
                          ) -> Tuple[str, str]:
    """Collision-free (gate name, net name) for an expanded inverter.

    The natural ``{output_net}_inv_{pin}`` can collide with a net that
    already exists in the design (nothing stops a generator from naming a
    net that way); serial suffixes disambiguate.  Claims the names in the
    ``taken`` sets so one pass never mints the same name twice.
    """
    fresh_gate = f"{gate_name}_inv_{pin}"
    fresh_net = f"{output_net}_inv_{pin}"
    serial = 1
    while fresh_net in taken_nets or fresh_gate in taken_gates:
        fresh_gate = f"{gate_name}_inv_{pin}_{serial}"
        fresh_net = f"{output_net}_inv_{pin}_{serial}"
        serial += 1
    taken_gates.add(fresh_gate)
    taken_nets.add(fresh_net)
    return fresh_gate, fresh_net


def propagate_constants(netlist: Netlist) -> Netlist:
    """Fold constants and simplify gates, returning a new netlist."""
    alias: Dict[str, str] = {}
    new = Netlist(netlist.name)
    taken_nets = set(netlist.nets)
    taken_gates = {gate.name for gate in netlist.gates}
    for net in netlist.inputs:
        new.add_input(net)

    for gate in netlist.topological_order():
        resolved = [_resolve(net, alias) for net in gate.inputs]
        kind, payload = _simplify(gate.cell, resolved,
                                  [_const_of(net) for net in resolved])
        if kind == "const":
            alias[gate.output] = CONST1 if payload else CONST0
            continue
        if kind == "alias":
            alias[gate.output] = _resolve(str(payload), alias)
            continue
        cell_name, cell_inputs = payload
        final_inputs: List[str] = []
        for net in cell_inputs:
            if isinstance(net, _Inverted):
                inv_gate, inv_net = _fresh_inverter_names(
                    gate.name, gate.output, len(final_inputs),
                    taken_gates, taken_nets)
                inverted = new.add_gate(inv_gate, "INV", [net.net], inv_net)
                final_inputs.append(inverted.output)
            else:
                final_inputs.append(net)
        new.add_gate(gate.name, cell_name, final_inputs, gate.output)

    for net in netlist.outputs:
        new.add_output(_resolve(net, alias))
    for bus, nets in netlist.buses.items():
        new.register_bus(bus, [_resolve(net, alias) for net in nets])
    return new


def prune_unused(netlist: Netlist) -> Netlist:
    """Remove gates no primary output (transitively) depends on."""
    needed = set(netlist.outputs)
    for gate in reversed(netlist.topological_order()):
        if gate.output in needed:
            needed.update(gate.inputs)

    new = Netlist(netlist.name)
    for net in netlist.inputs:
        new.add_input(net)
    for gate in netlist.topological_order():
        if gate.output in needed:
            new.add_gate(gate.name, gate.cell, list(gate.inputs), gate.output)
    for net in netlist.outputs:
        new.add_output(net)
    for bus, nets in netlist.buses.items():
        new.register_bus(bus, list(nets))
    return new


# --------------------------------------------------------------------- #
# Indexed (vectorized) optimisation pipeline
# --------------------------------------------------------------------- #
class _IndexedDesign:
    """A netlist lowered to integer net IDs for the in-place passes.

    IDs follow the levelisation scheme shared with the timing kernels:
    ``const0`` = 0, ``const1`` = 1, inputs, then every further net in
    creation order.  Gates are mutable ``[name, cell, input IDs, output
    ID]`` records; aliasing is a path-compressed forest over an ID-indexed
    list, so no per-pass netlist object or dict-of-strings chasing is
    needed until :meth:`materialise` builds the final result.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.name = netlist.name
        self.inputs = list(netlist.inputs)
        self.net_names: List[str] = []
        self.net_id: Dict[str, int] = {}
        #: alias[i] == i means net i is its own root.
        self.alias: List[int] = []
        for name in (CONST0, CONST1, *self.inputs):
            self.intern(name)
        self.gates: List[list] = []
        for gate in netlist.topological_order():
            input_ids = [self.net_id[net] for net in gate.inputs]
            self.gates.append([gate.name, gate.cell, input_ids,
                               self.intern(gate.output)])
        self.output_ids = [self.net_id[net] for net in netlist.outputs]
        self.bus_ids = {bus: [self.net_id[net] for net in nets]
                        for bus, nets in netlist.buses.items()}

    def intern(self, name: str) -> int:
        """The ID of ``name``, allocating a fresh unaliased one if new."""
        net_id = self.net_id.get(name)
        if net_id is None:
            net_id = self.net_id[name] = len(self.net_names)
            self.net_names.append(name)
            self.alias.append(net_id)
        return net_id

    def resolve(self, net_id: int) -> int:
        """Root of ``net_id`` in the alias forest, with path compression."""
        alias = self.alias
        root = alias[net_id]
        while alias[root] != root:
            root = alias[root]
        while alias[net_id] != root:
            alias[net_id], net_id = root, alias[net_id]
        return root

    def materialise(self) -> Netlist:
        """Build the real netlist for the current gate list."""
        new = Netlist(self.name)
        names = self.net_names
        for net in self.inputs:
            new.add_input(net)
        # The pass invariants (collision-checked names, topological gate
        # order, inputs resolved to live nets) are exactly what add_gate
        # would re-check per gate; install in bulk instead.
        new.install_gates([
            (name, cell_name, tuple(names[net] for net in input_ids),
             names[output_id])
            for name, cell_name, input_ids, output_id in self.gates])
        for net in self.output_ids:
            new.add_output(names[net])
        for bus, nets in self.bus_ids.items():
            new.register_bus(bus, [names[net] for net in nets])
        return new


def _propagate_pass(design: _IndexedDesign) -> None:
    """One constant-propagation sweep over the indexed design (in place)."""
    resolve = design.resolve
    names = design.net_names
    taken_nets = {names[0], names[1], *design.inputs}
    taken_nets.update(names[record[3]] for record in design.gates)
    taken_gates = {record[0] for record in design.gates}
    alias = design.alias
    new_gates: List[list] = []
    for record in design.gates:
        name, cell_name, input_ids, output_id = record
        resolved = [resolve(net) for net in input_ids]
        # Fast path: no constant inputs and no possible structural rewrite
        # means _simplify provably returns the gate unchanged.
        if (min(resolved) > 1 and cell_name != "BUF"
                and not (cell_name == "MUX2" and resolved[0] == resolved[1])):
            record[2] = resolved
            new_gates.append(record)
            continue
        values = [net if net < 2 else None for net in resolved]
        kind, payload = _simplify(cell_name, resolved, values)
        if kind == "const":
            alias[output_id] = 1 if payload else 0
            continue
        if kind == "alias":
            alias[output_id] = resolve(payload)
            continue
        new_cell, cell_inputs = payload
        final_inputs: List[int] = []
        for token in cell_inputs:
            if isinstance(token, _Inverted):
                inv_gate, inv_net = _fresh_inverter_names(
                    name, names[output_id], len(final_inputs),
                    taken_gates, taken_nets)
                inv_id = design.intern(inv_net)
                new_gates.append([inv_gate, "INV", [token.net], inv_id])
                final_inputs.append(inv_id)
            else:
                final_inputs.append(token)
        new_gates.append([name, new_cell, final_inputs, output_id])
    design.gates = new_gates
    design.output_ids = [resolve(net) for net in design.output_ids]
    design.bus_ids = {bus: [resolve(net) for net in nets]
                      for bus, nets in design.bus_ids.items()}


def _prune_pass(design: _IndexedDesign) -> None:
    """Drop gates no primary output depends on (in place)."""
    needed = bytearray(len(design.net_names))
    for net in design.output_ids:
        needed[net] = 1
    kept: List[bool] = []
    for record in reversed(design.gates):
        keep = bool(needed[record[3]])
        if keep:
            for net in record[2]:
                needed[net] = 1
        kept.append(keep)
    kept.reverse()
    design.gates = [record for record, keep in zip(design.gates, kept) if keep]


def _optimize_reference(netlist: Netlist, max_passes: int) -> Netlist:
    current = netlist
    for _ in range(max_passes):
        before = current.num_gates
        current = prune_unused(propagate_constants(current))
        if current.num_gates >= before:
            break
    return current


def optimize(netlist: Netlist, max_passes: int = 4,
             vector: Optional[bool] = None) -> Netlist:
    """Run constant propagation and pruning until the netlist stops shrinking."""
    if not use_vector(vector):
        return _optimize_reference(netlist, max_passes)
    design = _IndexedDesign(netlist)
    for _ in range(max_passes):
        before = len(design.gates)
        _propagate_pass(design)
        _prune_pass(design)
        if len(design.gates) >= before:
            break
    return design.materialise()
