"""Logic optimisation: constant propagation and dead-logic removal.

The structural generators purposely emit straightforward logic (a
constant-0 speculated carry still feeds regular carry-look-ahead cells,
unused block carry-outs are still computed).  A synthesis tool would
sweep all of that away; this module reproduces the two passes that matter
for the timing behaviour of the paper's designs:

* :func:`propagate_constants` — folds constants through the logic and
  simplifies gates with constant or redundant inputs (an AND with a
  constant-0 speculated carry disappears, a MUX with a constant select
  becomes a wire, ...).
* :func:`prune_unused` — removes logic that no primary output depends on
  (e.g. the carry-out chain of a speculative segment whose COMP block is
  absent).

``optimize`` runs both until the netlist stops shrinking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import CONST0, CONST1, Gate, Netlist
from repro.exceptions import NetlistError

#: Returned by the simplifier: either a constant, an alias to another net,
#: or a (possibly rewritten) gate.
_Simplified = Tuple[str, object]


def _resolve(net: str, alias: Dict[str, str]) -> str:
    while net in alias:
        net = alias[net]
    return net


def _const_of(net: str) -> Optional[int]:
    if net == CONST0:
        return 0
    if net == CONST1:
        return 1
    return None


def _simplify(cell: str, inputs: List[str]) -> _Simplified:
    """Simplify one gate whose inputs may be constant nets.

    Returns ``("const", 0/1)``, ``("alias", net)`` or
    ``("gate", (cell, inputs))``.
    """
    values = [_const_of(net) for net in inputs]

    if all(value is not None for value in values):
        from repro.circuit.cells import cell as cell_lookup
        result = int(cell_lookup(cell).evaluate(*values))
        return ("const", result)

    def gate(new_cell: str, *nets: str) -> _Simplified:
        return ("gate", (new_cell, list(nets)))

    if cell == "BUF":
        return ("alias", inputs[0])
    if cell == "INV":
        return gate("INV", inputs[0])

    if cell in ("AND2", "AND3"):
        if 0 in values:
            return ("const", 0)
        live = [net for net, value in zip(inputs, values) if value is None]
        if len(live) == 1:
            return ("alias", live[0])
        if len(live) == 2:
            return gate("AND2", *live)
        return gate(cell, *inputs)
    if cell in ("OR2", "OR3"):
        if 1 in values:
            return ("const", 1)
        live = [net for net, value in zip(inputs, values) if value is None]
        if len(live) == 1:
            return ("alias", live[0])
        if len(live) == 2:
            return gate("OR2", *live)
        return gate(cell, *inputs)
    if cell == "NAND2":
        if 0 in values:
            return ("const", 1)
        live = [net for net, value in zip(inputs, values) if value is None]
        if len(live) == 1:
            return gate("INV", live[0])
        return gate(cell, *inputs)
    if cell == "NOR2":
        if 1 in values:
            return ("const", 0)
        live = [net for net, value in zip(inputs, values) if value is None]
        if len(live) == 1:
            return gate("INV", live[0])
        return gate(cell, *inputs)
    if cell in ("XOR2", "XNOR2"):
        invert = cell == "XNOR2"
        live = [net for net, value in zip(inputs, values) if value is None]
        constant_parity = sum(value for value in values if value is not None) % 2
        if constant_parity == 1:
            invert = not invert
        if len(live) == 1:
            return gate("INV", live[0]) if invert else ("alias", live[0])
        return gate("XNOR2" if invert else "XOR2", *live)
    if cell == "MUX2":
        d0, d1, sel = inputs
        sel_value = values[2]
        if sel_value == 0:
            return ("alias", d0) if values[0] is None else ("const", values[0])
        if sel_value == 1:
            return ("alias", d1) if values[1] is None else ("const", values[1])
        if values[0] == 0 and values[1] == 1:
            return ("alias", sel)
        if values[0] == 1 and values[1] == 0:
            return gate("INV", sel)
        if d0 == d1:
            return ("alias", d0)
        if values[0] == 0:
            return gate("AND2", d1, sel)
        if values[1] == 0:
            return gate("AND2", d0, _invert_marker(sel))
        if values[0] == 1:
            return gate("OR2", d1, _invert_marker(sel))
        if values[1] == 1:
            return gate("OR2", d0, sel)
        return gate(cell, *inputs)
    if cell == "MAJ3":
        a, b, c = inputs
        if 0 in values:
            live = [net for net, value in zip(inputs, values) if value is None]
            if len(live) == 2:
                return gate("AND2", *live)
            if len(live) == 1:
                return ("const", 0) if values.count(0) >= 2 else ("alias", live[0])
        if 1 in values:
            live = [net for net, value in zip(inputs, values) if value is None]
            if len(live) == 2:
                return gate("OR2", *live)
            if len(live) == 1:
                return ("const", 1) if values.count(1) >= 2 else ("alias", live[0])
        return gate(cell, *inputs)
    if cell == "AOI21":
        a, b, c = inputs
        if values[2] == 1:
            return ("const", 0)
        if values[2] == 0:
            live = [net for net, value in zip((a, b), values[:2]) if value is None]
            if len(live) == 2:
                return gate("NAND2", a, b)
            if len(live) == 1:
                return gate("INV", live[0]) if 1 in values[:2] else ("const", 1)
        if values[0] == 0 or values[1] == 0:
            return gate("INV", c)
        if values[0] == 1:
            return gate("NOR2", b, c)
        if values[1] == 1:
            return gate("NOR2", a, c)
        return gate(cell, *inputs)
    if cell == "OAI21":
        a, b, c = inputs
        if values[2] == 0:
            return ("const", 1)
        if values[2] == 1:
            live = [net for net, value in zip((a, b), values[:2]) if value is None]
            if len(live) == 2:
                return gate("NOR2", a, b)
            if len(live) == 1:
                return gate("INV", live[0]) if 0 in values[:2] else ("const", 0)
        if values[0] == 1 or values[1] == 1:
            return gate("INV", c)
        if values[0] == 0:
            return gate("NAND2", b, c)
        if values[1] == 0:
            return gate("NAND2", a, c)
        return gate(cell, *inputs)
    return ("gate", (cell, list(inputs)))


class _InvertMarker(str):
    """Sentinel wrapper signalling that a net must be inverted before use."""


def _invert_marker(net: str) -> str:
    return _InvertMarker(net)


def propagate_constants(netlist: Netlist) -> Netlist:
    """Fold constants and simplify gates, returning a new netlist."""
    alias: Dict[str, str] = {}
    new = Netlist(netlist.name)
    for net in netlist.inputs:
        new.add_input(net)

    for gate in netlist.topological_order():
        resolved = [_resolve(net, alias) for net in gate.inputs]
        kind, payload = _simplify(gate.cell, resolved)
        if kind == "const":
            alias[gate.output] = CONST1 if payload else CONST0
            continue
        if kind == "alias":
            alias[gate.output] = _resolve(str(payload), alias)
            continue
        cell_name, cell_inputs = payload
        final_inputs: List[str] = []
        for net in cell_inputs:
            if isinstance(net, _InvertMarker):
                inverted = new.add_gate(f"{gate.name}_inv_{len(final_inputs)}", "INV",
                                        [str(net)], f"{gate.output}_inv_{len(final_inputs)}")
                final_inputs.append(inverted.output)
            else:
                final_inputs.append(net)
        new.add_gate(gate.name, cell_name, final_inputs, gate.output)

    for net in netlist.outputs:
        new.add_output(_resolve(net, alias))
    for bus, nets in netlist.buses.items():
        new.register_bus(bus, [_resolve(net, alias) for net in nets])
    return new


def prune_unused(netlist: Netlist) -> Netlist:
    """Remove gates no primary output (transitively) depends on."""
    needed = set(netlist.outputs)
    for gate in reversed(netlist.topological_order()):
        if gate.output in needed:
            needed.update(gate.inputs)

    new = Netlist(netlist.name)
    for net in netlist.inputs:
        new.add_input(net)
    for gate in netlist.topological_order():
        if gate.output in needed:
            new.add_gate(gate.name, gate.cell, list(gate.inputs), gate.output)
    for net in netlist.outputs:
        new.add_output(net)
    for bus, nets in netlist.buses.items():
        new.register_bus(bus, list(nets))
    return new


def optimize(netlist: Netlist, max_passes: int = 4) -> Netlist:
    """Run constant propagation and pruning until the netlist stops shrinking."""
    current = netlist
    for _ in range(max_passes):
        before = current.num_gates
        current = prune_unused(propagate_constants(current))
        if current.num_gates >= before:
            break
    return current
