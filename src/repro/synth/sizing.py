"""Slack-driven gate sizing: re-targeting a netlist to a clock constraint.

Commercial synthesis maps every design to the *same* clock constraint
(0.3 ns in the paper) and then recovers power by down-sizing gates on
paths with slack until most paths sit close to the constraint — the
well-known "slack wall".  This is the property that makes overclocking
behaviour design-dependent: designs with short nominal logic depth keep
real margin (gate down-sizing is bounded by the smallest available drive
strength), while deep designs end up with many near-critical paths.

``size_to_constraint`` reproduces that behaviour with a simple, fully
deterministic algorithm:

1. **Allocation pass** — every gate with positive slack is slowed down by
   ``slack_utilization * slack / n`` where ``n`` is the number of gates on
   the longest path through it (so a path never overshoots the
   constraint), bounded by the cell's ``max_delay``.
2. **Fix-up passes** — gates with negative slack (designs whose nominal
   delay exceeds the constraint) are sped up by their share of the
   violation, bounded by the cell's ``min_delay``; repeated a few times.

The result is a new :class:`~repro.circuit.sdf.DelayAnnotation` — the
library's equivalent of the SDF file produced by synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuit.library import TechnologyLibrary
from repro.circuit.netlist import Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.exceptions import SynthesisError
from repro.timing.sta import analyze_timing, gate_slacks, path_gate_counts
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class SizingOptions:
    """Parameters of the slack-driven sizing step."""

    clock_constraint: float
    slack_utilization: float = 0.8
    fixup_iterations: int = 6
    slack_tolerance: float = 1e-13

    def __post_init__(self) -> None:
        if self.clock_constraint <= 0:
            raise SynthesisError(
                f"clock constraint must be positive, got {self.clock_constraint}")
        check_probability("slack_utilization", self.slack_utilization)
        if self.fixup_iterations < 0:
            raise SynthesisError("fixup_iterations must be non-negative")


@dataclass(frozen=True)
class SizingResult:
    """Outcome of sizing one netlist."""

    annotation: DelayAnnotation
    nominal_critical_path: float
    sized_critical_path: float
    clock_constraint: float
    met_constraint: bool
    nominal_total_delay: float
    sized_total_delay: float

    @property
    def power_recovery(self) -> float:
        """Relative increase in total gate delay — a proxy for recovered power.

        Down-sized (slower) gates are smaller and leak less; the ratio of
        total delay after/before sizing is the crude proxy reported by the
        ablation benchmark.
        """
        if self.nominal_total_delay == 0:
            return 0.0
        return self.sized_total_delay / self.nominal_total_delay - 1.0

    @property
    def slack_at_constraint(self) -> float:
        """Remaining slack of the sized design against the constraint."""
        return self.clock_constraint - self.sized_critical_path


def size_to_constraint(netlist: Netlist, library: TechnologyLibrary,
                       options: SizingOptions,
                       initial: Optional[DelayAnnotation] = None) -> SizingResult:
    """Size ``netlist`` to ``options.clock_constraint`` and return the annotation."""
    annotation = (initial.copy() if initial is not None
                  else DelayAnnotation.nominal(netlist, library))
    annotation.clock_constraint = options.clock_constraint
    nominal_report = analyze_timing(netlist, annotation)
    nominal_total = annotation.total_delay()

    bounds: Dict[str, tuple] = {}
    for gate in netlist.gates:
        timing = library.timing(gate.cell)
        bounds[gate.name] = (timing.min_delay, timing.max_delay)

    counts = path_gate_counts(netlist)
    target = options.clock_constraint

    # Pass 1: allocate a bounded share of each gate's slack as extra delay
    # (power recovery), or remove delay where the nominal design violates.
    slacks = gate_slacks(netlist, annotation, target)
    for gate in netlist.gates:
        slack = slacks[gate.name]
        share_count = max(counts[gate.name], 1)
        low, high = bounds[gate.name]
        delay = annotation.delay_of(gate.name)
        if slack > options.slack_tolerance:
            delay = min(delay + options.slack_utilization * slack / share_count, high)
        elif slack < -options.slack_tolerance:
            delay = max(delay + slack / share_count, low)
        annotation.set_delay(gate.name, delay)

    # Fix-up passes: only repair violations introduced by the nominal design
    # being too slow (never consume more slack).
    for _ in range(options.fixup_iterations):
        slacks = gate_slacks(netlist, annotation, target)
        worst = min(slacks.values()) if slacks else 0.0
        if worst >= -options.slack_tolerance:
            break
        for gate in netlist.gates:
            slack = slacks[gate.name]
            if slack >= -options.slack_tolerance:
                continue
            low, _ = bounds[gate.name]
            share_count = max(counts[gate.name], 1)
            delay = annotation.delay_of(gate.name)
            annotation.set_delay(gate.name, max(delay + slack / share_count, low))

    sized_report = analyze_timing(netlist, annotation)
    return SizingResult(
        annotation=annotation,
        nominal_critical_path=nominal_report.critical_path_delay,
        sized_critical_path=sized_report.critical_path_delay,
        clock_constraint=target,
        met_constraint=sized_report.critical_path_delay <= target + options.slack_tolerance,
        nominal_total_delay=nominal_total,
        sized_total_delay=annotation.total_delay(),
    )
