"""Slack-driven gate sizing: re-targeting a netlist to a clock constraint.

Commercial synthesis maps every design to the *same* clock constraint
(0.3 ns in the paper) and then recovers power by down-sizing gates on
paths with slack until most paths sit close to the constraint — the
well-known "slack wall".  This is the property that makes overclocking
behaviour design-dependent: designs with short nominal logic depth keep
real margin (gate down-sizing is bounded by the smallest available drive
strength), while deep designs end up with many near-critical paths.

``size_to_constraint`` reproduces that behaviour with a simple, fully
deterministic algorithm:

1. **Allocation pass** — every gate with positive slack is slowed down by
   ``slack_utilization * slack / n`` where ``n`` is the number of gates on
   the longest path through it (so a path never overshoots the
   constraint), bounded by the cell's ``max_delay``.
2. **Fix-up passes** — gates with negative slack (designs whose nominal
   delay exceeds the constraint) are sped up by their share of the
   violation, bounded by the cell's ``min_delay``; repeated a few times.

The result is a new :class:`~repro.circuit.sdf.DelayAnnotation` — the
library's equivalent of the SDF file produced by synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuit.library import TechnologyLibrary
from repro.circuit.netlist import Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.exceptions import SynthesisError, TimingError
from repro.timing.sta import analyze_timing, gate_slacks, path_gate_counts, timing_table
from repro.utils.validation import check_probability
from repro.utils.vector import use_vector, vector_override


@dataclass(frozen=True)
class SizingOptions:
    """Parameters of the slack-driven sizing step."""

    clock_constraint: float
    slack_utilization: float = 0.8
    fixup_iterations: int = 6
    slack_tolerance: float = 1e-13

    def __post_init__(self) -> None:
        if self.clock_constraint <= 0:
            raise SynthesisError(
                f"clock constraint must be positive, got {self.clock_constraint}")
        check_probability("slack_utilization", self.slack_utilization)
        if self.fixup_iterations < 0:
            raise SynthesisError("fixup_iterations must be non-negative")


@dataclass(frozen=True)
class SizingResult:
    """Outcome of sizing one netlist."""

    annotation: DelayAnnotation
    nominal_critical_path: float
    sized_critical_path: float
    clock_constraint: float
    met_constraint: bool
    nominal_total_delay: float
    sized_total_delay: float

    @property
    def power_recovery(self) -> float:
        """Relative increase in total gate delay — a proxy for recovered power.

        Down-sized (slower) gates are smaller and leak less; the ratio of
        total delay after/before sizing is the crude proxy reported by the
        ablation benchmark.
        """
        if self.nominal_total_delay == 0:
            return 0.0
        return self.sized_total_delay / self.nominal_total_delay - 1.0

    @property
    def slack_at_constraint(self) -> float:
        """Remaining slack of the sized design against the constraint."""
        return self.clock_constraint - self.sized_critical_path


def size_to_constraint(netlist: Netlist, library: TechnologyLibrary,
                       options: SizingOptions,
                       initial: Optional[DelayAnnotation] = None,
                       vector: Optional[bool] = None) -> SizingResult:
    """Size ``netlist`` to ``options.clock_constraint`` and return the annotation.

    The allocation and fix-up passes run either as levelised NumPy array
    sweeps (the default) or as the original per-gate reference loops
    (``vector=False`` / ``REPRO_SYNTH_VECTOR=0``); the two are
    bit-identical (see :mod:`repro.timing.sta`).
    """
    if use_vector(vector) and netlist.num_gates:
        with vector_override(True):
            return _size_to_constraint_vector(netlist, library, options, initial)
    with vector_override(False):
        return _size_to_constraint_reference(netlist, library, options, initial)


def _size_to_constraint_vector(netlist: Netlist, library: TechnologyLibrary,
                               options: SizingOptions,
                               initial: Optional[DelayAnnotation]) -> SizingResult:
    annotation = (initial.copy() if initial is not None
                  else DelayAnnotation.nominal(netlist, library))
    annotation.clock_constraint = options.clock_constraint
    # Same checks and values analyze_timing performs for the reference
    # path's nominal report, without building the report's path walk.
    annotation.validate_against(netlist)
    if not netlist.outputs:
        raise TimingError(f"netlist {netlist.name!r} has no primary outputs")
    nominal_total = annotation.total_delay()

    table = timing_table(netlist)
    num_gates = len(table.order)
    lows = np.empty(num_gates, dtype=np.float64)
    highs = np.empty(num_gates, dtype=np.float64)
    cell_timings: Dict[str, tuple] = {}
    for index, gate in enumerate(table.order):
        timing = cell_timings.get(gate.cell)
        if timing is None:
            cell = library.timing(gate.cell)
            timing = cell_timings[gate.cell] = (cell.min_delay, cell.max_delay)
        lows[index], highs[index] = timing

    shares = np.maximum(table.path_counts(), 1).astype(np.float64)
    target = options.clock_constraint
    tolerance = options.slack_tolerance
    delays = table.delay_array(annotation)
    arrival = table.arrival_array(delays)
    nominal_delay = float(arrival[table.output_ids].max())

    # Pass 1 (allocation), same arithmetic as the reference per-gate loop.
    required = table.required_array(delays, target)
    slacks = required[table.out_ids] - arrival[table.out_ids]
    slowed = np.minimum(delays + options.slack_utilization * slacks / shares, highs)
    sped = np.maximum(delays + slacks / shares, lows)
    delays = np.where(slacks > tolerance, slowed,
                      np.where(slacks < -tolerance, sped, delays))

    # Fix-up passes: repair remaining violations only.
    for _ in range(options.fixup_iterations):
        slacks = table.slack_array(delays, target)
        worst = slacks.min() if slacks.size else 0.0
        if worst >= -tolerance:
            break
        repaired = np.maximum(delays + slacks / shares, lows)
        delays = np.where(slacks < -tolerance, repaired, delays)

    for gate, delay in zip(table.order, delays.tolist()):
        annotation.set_delay(gate.name, delay)

    sized_delay = float(table.arrival_array(delays)[table.output_ids].max())
    return SizingResult(
        annotation=annotation,
        nominal_critical_path=nominal_delay,
        sized_critical_path=sized_delay,
        clock_constraint=target,
        met_constraint=sized_delay <= target + options.slack_tolerance,
        nominal_total_delay=nominal_total,
        sized_total_delay=annotation.total_delay(),
    )


def _size_to_constraint_reference(netlist: Netlist, library: TechnologyLibrary,
                                  options: SizingOptions,
                                  initial: Optional[DelayAnnotation]) -> SizingResult:
    annotation = (initial.copy() if initial is not None
                  else DelayAnnotation.nominal(netlist, library))
    annotation.clock_constraint = options.clock_constraint
    nominal_report = analyze_timing(netlist, annotation)
    nominal_total = annotation.total_delay()

    bounds: Dict[str, tuple] = {}
    for gate in netlist.gates:
        timing = library.timing(gate.cell)
        bounds[gate.name] = (timing.min_delay, timing.max_delay)

    counts = path_gate_counts(netlist)
    target = options.clock_constraint

    # Pass 1: allocate a bounded share of each gate's slack as extra delay
    # (power recovery), or remove delay where the nominal design violates.
    slacks = gate_slacks(netlist, annotation, target)
    for gate in netlist.gates:
        slack = slacks[gate.name]
        share_count = max(counts[gate.name], 1)
        low, high = bounds[gate.name]
        delay = annotation.delay_of(gate.name)
        if slack > options.slack_tolerance:
            delay = min(delay + options.slack_utilization * slack / share_count, high)
        elif slack < -options.slack_tolerance:
            delay = max(delay + slack / share_count, low)
        annotation.set_delay(gate.name, delay)

    # Fix-up passes: only repair violations introduced by the nominal design
    # being too slow (never consume more slack).
    for _ in range(options.fixup_iterations):
        slacks = gate_slacks(netlist, annotation, target)
        worst = min(slacks.values()) if slacks else 0.0
        if worst >= -options.slack_tolerance:
            break
        for gate in netlist.gates:
            slack = slacks[gate.name]
            if slack >= -options.slack_tolerance:
                continue
            low, _ = bounds[gate.name]
            share_count = max(counts[gate.name], 1)
            delay = annotation.delay_of(gate.name)
            annotation.set_delay(gate.name, max(delay + slack / share_count, low))

    sized_report = analyze_timing(netlist, annotation)
    return SizingResult(
        annotation=annotation,
        nominal_critical_path=nominal_report.critical_path_delay,
        sized_critical_path=sized_report.critical_path_delay,
        clock_constraint=target,
        met_constraint=sized_report.critical_path_delay <= target + options.slack_tolerance,
        nominal_total_delay=nominal_total,
        sized_total_delay=annotation.total_delay(),
    )
