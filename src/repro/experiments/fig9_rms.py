"""Fig. 9 reproduction: structural, timing and joint relative-error RMS.

For every design and every CPR level the experiment computes the three
output sets of the error-combination methodology (diamond, gold, silver),
derives the signed relative errors and reports their RMS — one row per
design, one column group per CPR, mirroring Figs. 9a-9c of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_log_value, format_table
from repro.core.combination import combine_errors
from repro.experiments.common import (
    DesignCharacterization,
    StudyConfig,
    characterize_designs,
)


@dataclass(frozen=True)
class Fig9Row:
    """RMS relative errors of one design at one CPR level (fractions, not %)."""

    design: str
    cpr: float
    clock_period: float
    structural_rms: float
    timing_rms: float
    joint_rms: float

    def as_percentages(self) -> Tuple[float, float, float]:
        """The three RMS values in percent, the unit used by the paper's axis."""
        return (self.structural_rms * 100.0, self.timing_rms * 100.0, self.joint_rms * 100.0)


@dataclass
class Fig9Result:
    """All rows of the Fig. 9 reproduction plus formatting helpers."""

    rows: List[Fig9Row]
    cpr_levels: Sequence[float]

    def rows_for_cpr(self, cpr: float) -> List[Fig9Row]:
        """The rows of one sub-figure (9a, 9b or 9c)."""
        return [row for row in self.rows if abs(row.cpr - cpr) < 1e-12]

    def row(self, design: str, cpr: float) -> Fig9Row:
        """Look up a single design/CPR cell."""
        for candidate in self.rows:
            if candidate.design == design and abs(candidate.cpr - cpr) < 1e-12:
                return candidate
        raise KeyError(f"no Fig. 9 row for design {design!r} at CPR {cpr}")

    def worst_design(self, cpr: float) -> str:
        """Design with the largest joint error at one CPR (the paper expects "exact" at 5 %)."""
        rows = self.rows_for_cpr(cpr)
        return max(rows, key=lambda row: row.joint_rms).design

    def best_design(self, cpr: float) -> str:
        """Design with the smallest joint error at one CPR."""
        rows = self.rows_for_cpr(cpr)
        return min(rows, key=lambda row: row.joint_rms).design

    def format_table(self) -> str:
        """Text rendering of all three sub-figures."""
        sections = []
        for cpr in self.cpr_levels:
            rows = self.rows_for_cpr(cpr)
            table_rows = [
                (row.design,
                 format_log_value(row.structural_rms * 100.0),
                 format_log_value(row.timing_rms * 100.0),
                 format_log_value(row.joint_rms * 100.0))
                for row in rows
            ]
            sections.append(format_table(
                ["design", "structural RMS RE (%)", "timing RMS RE (%)", "joint RMS RE (%)"],
                table_rows,
                title=f"Fig. 9 — relative error RMS at {cpr * 100:g}% CPR"))
        return "\n\n".join(sections)

    def to_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Nested dict view: ``{cpr_label: {design: {metric: value}}}``."""
        result: Dict[str, Dict[str, Dict[str, float]]] = {}
        for row in self.rows:
            label = f"{row.cpr * 100:g}%"
            result.setdefault(label, {})[row.design] = {
                "structural": row.structural_rms,
                "timing": row.timing_rms,
                "joint": row.joint_rms,
            }
        return result


def fig9_rows_from_characterization(characterization: DesignCharacterization,
                                    config: StudyConfig) -> List[Fig9Row]:
    """Compute the Fig. 9 rows of one already-characterised design."""
    rows: List[Fig9Row] = []
    diamond = characterization.diamond_words[1:]
    gold = characterization.gold_words[1:]
    for cpr, period in config.clock_plan.items():
        timing_trace = characterization.timing_trace(period)
        errors = combine_errors(diamond, gold, timing_trace.sampled_words)
        rms = errors.rms_relative_errors()
        rows.append(Fig9Row(
            design=characterization.name,
            cpr=cpr,
            clock_period=period,
            structural_rms=rms["structural"],
            timing_rms=rms["timing"],
            joint_rms=rms["joint"],
        ))
    return rows


def run_fig9(config: Optional[StudyConfig] = None,
             characterizations: Optional[List[DesignCharacterization]] = None) -> Fig9Result:
    """Run the Fig. 9 experiment for every paper design.

    ``characterizations`` may be supplied to reuse work done by another
    experiment (the runner shares them with Fig. 10).
    """
    config = config or StudyConfig()
    if characterizations is None:
        characterizations = characterize_designs(
            config.design_entries(), config.characterization_trace(), config)
    rows: List[Fig9Row] = []
    for characterization in characterizations:
        rows.extend(fig9_rows_from_characterization(characterization, config))
    return Fig9Result(rows=rows, cpr_levels=config.clock_plan.cpr_levels)
