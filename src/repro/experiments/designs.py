"""The adder designs evaluated in the paper.

Section V-A of the paper selects ISA designs with regular structures
(2x16, 4x8 and 8x4-bit parallel paths) denoted by quadruples of
bit-widths (block size, SPEC size, correction, reduction), and confronts
them with an exact adder constrained at the same 0.3 ns.  The figures
label eleven ISA configurations plus the exact baseline; these are the
entries reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import ISAConfig

#: The eleven ISA quadruples named in Figs. 7-9 of the paper, left to right.
PAPER_QUADRUPLES: Tuple[Tuple[int, int, int, int], ...] = (
    (8, 0, 0, 0),
    (8, 0, 0, 2),
    (8, 0, 0, 4),
    (8, 0, 1, 4),
    (8, 0, 1, 6),
    (16, 0, 0, 0),
    (16, 1, 0, 0),
    (16, 1, 0, 2),
    (16, 2, 0, 4),
    (16, 2, 1, 6),
    (16, 7, 0, 8),
)

#: The design studied in Fig. 10 (best structural/timing error balance at 15 % CPR).
FIG10_QUADRUPLE: Tuple[int, int, int, int] = (8, 0, 0, 4)


@dataclass(frozen=True)
class DesignEntry:
    """One column of the paper's figures: either an ISA configuration or the exact adder."""

    name: str
    config: Optional[ISAConfig]

    #: Registry id resolving this entry's operator family.  A class
    #: attribute (not a dataclass field): adder entries predate the
    #: family registry and their cache-digest identity — the canonical
    #: flattening of the dataclass fields — must not change.
    family = "adder"

    @property
    def is_exact(self) -> bool:
        """True for the exact (conventional) adder baseline."""
        return self.config is None


def exact_entry(width: int = 32) -> DesignEntry:
    """The exact-adder baseline column (labelled "exact" in the figures)."""
    return DesignEntry(name="exact", config=None)


def isa_entry(quadruple: Sequence[int], width: int = 32) -> DesignEntry:
    """A single ISA column from its quadruple notation."""
    config = ISAConfig.from_quadruple(tuple(quadruple), width=width)
    return DesignEntry(name=config.name, config=config)


def paper_design_entries(width: int = 32, include_exact: bool = True) -> List[DesignEntry]:
    """All columns of the paper's figures, in the paper's left-to-right order."""
    entries = [isa_entry(quadruple, width) for quadruple in PAPER_QUADRUPLES]
    if include_exact:
        entries.append(exact_entry(width))
    return entries
