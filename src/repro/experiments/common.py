"""Shared machinery of the experiment drivers.

``StudyConfig`` gathers every knob of the reproduction (trace lengths and
their scale factor, clock plan, simulator tier and engine, execution
backend, synthesis and model options) with defaults scaled so a full run
finishes in minutes on a laptop; trace lengths can be raised towards the
paper's ten-million-vector characterisation when more fidelity is wanted.

Characterisation itself lives in :mod:`repro.runtime`: every figure
driver turns its designs into :class:`~repro.runtime.CharacterizationJob`
batches and submits them to the study's execution backend (``serial`` or
``multiprocess``).  :func:`characterize_design` is the single-job
convenience wrapper and :func:`characterize_designs` the batch entry
point; both return :class:`~repro.runtime.DesignCharacterization`
objects bundling the synthesized design, the diamond/golden outputs, the
gate-level cross-check words and the timing simulation at every clock
period of the plan.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.experiments.designs import DesignEntry, paper_design_entries
from repro.ml.model import TimingModelOptions
from repro.runtime import (
    BACKENDS,
    SIMULATORS,
    Backend,
    CachingBackend,
    CharacterizationJob,
    DesignCharacterization,
    PlannedBackend,
    get_backend,
)
from repro.synth.flow import SynthesisOptions
from repro.timing.clocking import ClockPlan
from repro.timing.fast_sim import ENGINES
from repro.workloads.generators import uniform_workload
from repro.workloads.traces import OperandTrace

#: Environment variable that scales every default trace length (used by the
#: benchmark harness to trade fidelity for runtime).  It is read **once**,
#: when a :class:`StudyConfig` is constructed, into the explicit
#: ``trace_scale`` field.
TRACE_SCALE_ENV = "REPRO_TRACE_SCALE"

#: Environment variables selecting the default execution backend and its
#: worker count (used by CI to run the test suite under every backend).
BACKEND_ENV = "REPRO_BACKEND"
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable naming the persistent on-disk result cache
#: directory (empty or unset means no cache); read once at
#: :class:`StudyConfig` construction into the ``cache_dir`` field.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the result cache in mebibytes (empty or
#: unset means unbounded); read once at :class:`StudyConfig`
#: construction into the ``cache_limit_mb`` field.
CACHE_LIMIT_ENV = "REPRO_CACHE_LIMIT_MB"


def _env_trace_scale() -> float:
    value = os.environ.get(TRACE_SCALE_ENV, "")
    if not value:
        return 1.0
    try:
        return float(value)
    except ValueError:
        raise ConfigurationError(
            f"{TRACE_SCALE_ENV} must be a number (trace-length scale factor), "
            f"got {value!r}") from None


def _env_backend() -> str:
    return os.environ.get(BACKEND_ENV, "serial")


def _env_workers() -> Optional[int]:
    value = os.environ.get(WORKERS_ENV, "")
    if not value:
        return None
    try:
        return int(value)
    except ValueError:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be a positive integer worker count, "
            f"got {value!r}") from None


def _env_cache_dir() -> Optional[str]:
    return os.environ.get(CACHE_DIR_ENV) or None


def _env_cache_limit() -> Optional[float]:
    value = os.environ.get(CACHE_LIMIT_ENV, "")
    if not value:
        return None
    try:
        return float(value)
    except ValueError:
        raise ConfigurationError(
            f"{CACHE_LIMIT_ENV} must be a size in mebibytes, got {value!r}") from None


#: Shared backend instances per (backend, workers) pair — keeps the
#: multiprocess pool (and its per-worker caches) alive between calls.
_BACKEND_INSTANCES: dict = {}

#: Shared execution planners per (backend, workers) pair, each wrapping
#: the shared raw backend above.
_PLANNED_INSTANCES: dict = {}

#: Shared caching wrappers per (backend, workers, cache dir) triple, so
#: hit/miss counters accumulate over a whole study run.
_CACHING_INSTANCES: dict = {}


def shutdown_backends() -> None:
    """Close every shared backend (worker pools included); idempotent.

    Registered with :mod:`atexit` so multiprocess pools never outlive
    the interpreter silently; tests call it directly to assert clean
    pool teardown and to reset the shared-instance registry.
    """
    for registry in (_CACHING_INSTANCES, _PLANNED_INSTANCES, _BACKEND_INSTANCES):
        instances = list(registry.values())
        registry.clear()
        for backend in instances:
            backend.close()


atexit.register(shutdown_backends)


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of a full reproduction study."""

    width: int = 32
    characterization_length: int = 4000
    training_length: int = 2500
    evaluation_length: int = 2500
    seed: int = 7
    simulator: str = "event"
    engine: str = "auto"
    backend: str = field(default_factory=_env_backend)
    workers: Optional[int] = field(default_factory=_env_workers)
    trace_scale: float = field(default_factory=_env_trace_scale)
    cache_dir: Optional[str] = field(default_factory=_env_cache_dir)
    cache_limit_mb: Optional[float] = field(default_factory=_env_cache_limit)
    clock_plan: ClockPlan = field(default_factory=ClockPlan.paper)
    synthesis: SynthesisOptions = field(default_factory=SynthesisOptions)
    model: TimingModelOptions = field(default_factory=TimingModelOptions)

    def __post_init__(self) -> None:
        if self.simulator not in SIMULATORS:
            raise ConfigurationError(
                f"simulator must be one of {SIMULATORS}, got {self.simulator!r}")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {self.workers}")
        if self.trace_scale <= 0:
            raise ConfigurationError(
                f"trace_scale must be positive, got {self.trace_scale}")
        if self.cache_limit_mb is not None and self.cache_limit_mb <= 0:
            raise ConfigurationError(
                f"cache_limit_mb must be positive, got {self.cache_limit_mb}")
        for name in ("characterization_length", "training_length", "evaluation_length"):
            if getattr(self, name) < 16:
                raise ConfigurationError(f"{name} must be at least 16 vectors")

    # ------------------------------------------------------------------ #
    def design_entries(self) -> List[DesignEntry]:
        """The twelve paper designs at this study's width."""
        return paper_design_entries(self.width)

    def scaled_length(self, length: int) -> int:
        """``length`` scaled by the study's ``trace_scale`` (16-vector floor)."""
        return max(int(length * self.trace_scale), 16)

    def characterization_trace(self) -> OperandTrace:
        """Random trace used for error characterisation (Figs. 9 and 10)."""
        return uniform_workload(self.scaled_length(self.characterization_length),
                                width=self.width, seed=self.seed)

    def training_trace(self) -> OperandTrace:
        """Random trace used to train the prediction model (Figs. 7 and 8)."""
        return uniform_workload(self.scaled_length(self.training_length),
                                width=self.width, seed=self.seed + 1)

    def evaluation_trace(self) -> OperandTrace:
        """Held-out random trace used to evaluate the prediction model."""
        return uniform_workload(self.scaled_length(self.evaluation_length),
                                width=self.width, seed=self.seed + 2)

    def scaled_down(self, factor: float) -> "StudyConfig":
        """A copy with every trace scaled by ``factor`` (for quick runs).

        Scaling composes into the explicit ``trace_scale`` field — the
        single mechanism behind every trace-length adjustment — so the
        applied factor stays visible in reports.
        """
        if factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {factor}")
        return replace(self, trace_scale=self.trace_scale * factor)

    # ------------------------------------------------------------------ #
    # Runtime integration
    # ------------------------------------------------------------------ #
    def job(self, entry: DesignEntry, trace: OperandTrace,
            collect_structural_stats: bool = False) -> CharacterizationJob:
        """The characterization job of one design entry over one trace."""
        return CharacterizationJob(
            entry=entry,
            trace=trace,
            clock_periods=tuple(self.clock_plan.periods),
            simulator=self.simulator,
            engine=self.engine,
            synthesis=self.synthesis,
            width=self.width,
            collect_structural_stats=collect_structural_stats,
        )

    def runtime_backend(self) -> Backend:
        """The execution backend this study schedules its jobs on.

        Backend instances are shared per (backend, workers) pair so that
        the multiprocess worker pool — and with it the per-worker design
        caches — stays warm across successive characterisation calls.
        Every study schedules through the execution planner
        (:class:`~repro.runtime.PlannedBackend`), which batches jobs
        sharing a design and clock plan bit-identically; with
        ``cache_dir`` set the planner is fronted by the persistent
        on-disk result cache (also shared, so hit/miss counters span a
        whole study run) — planner *under* cache, so cache entries stay
        per-job and warm runs execute zero jobs.
        """
        key = (self.backend, self.workers)
        backend = _BACKEND_INSTANCES.get(key)
        if backend is None:
            backend = _BACKEND_INSTANCES[key] = get_backend(self.backend,
                                                            workers=self.workers)
        planned = _PLANNED_INSTANCES.get(key)
        if planned is None or planned.inner is not backend:
            planned = _PLANNED_INSTANCES[key] = PlannedBackend(backend)
        if self.cache_dir is None:
            return planned
        cache_key = key + (os.path.abspath(os.path.expanduser(self.cache_dir)),
                           self.cache_limit_mb)
        caching = _CACHING_INSTANCES.get(cache_key)
        if caching is None or caching.inner is not planned:
            caching = _CACHING_INSTANCES[cache_key] = CachingBackend(
                planned, self.cache_dir, limit_mb=self.cache_limit_mb)
        return caching


def characterize_design(entry: DesignEntry, trace: OperandTrace, config: StudyConfig,
                        collect_structural_stats: bool = False) -> DesignCharacterization:
    """Characterise one design over a trace at every CPR level.

    Thin wrapper over the runtime: builds a single job and submits it to
    the study's backend (the multiprocess backend still parallelises a
    single job across its trace chunks).
    """
    job = config.job(entry, trace, collect_structural_stats=collect_structural_stats)
    return config.runtime_backend().run([job])[0]


def characterize_designs(entries: Sequence[DesignEntry], trace: OperandTrace,
                         config: StudyConfig,
                         stats_for: Iterable[str] = ()) -> List[DesignCharacterization]:
    """Characterise a batch of designs over one shared trace.

    ``stats_for`` names the designs whose structural fault statistics
    should be collected (the Fig. 10 design).  Results come back in
    entry order regardless of the backend.
    """
    stats_for = set(stats_for)
    jobs = [config.job(entry, trace, collect_structural_stats=entry.name in stats_for)
            for entry in entries]
    return config.runtime_backend().run(jobs)
