"""Shared machinery of the experiment drivers.

``StudyConfig`` gathers every knob of the reproduction (trace lengths,
clock plan, simulator choice, synthesis and model options) with defaults
scaled so a full run finishes in minutes on a laptop; trace lengths can
be raised towards the paper's ten-million-vector characterisation when
more fidelity is wanted.

``characterize_design`` performs the per-design heavy lifting shared by
all figures: synthesize the netlist, compute diamond/golden outputs, and
run the delay-annotated timing simulation at every clock period of the
plan.  The gate-level settled outputs are additionally computed with
:meth:`Netlist.compute_words` on the compiled bit-packed engine, both as
a structural cross-check against the behavioural golden model and so
downstream consumers can characterise from the netlist alone.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import ISAConfig
from repro.core.exact import ExactAdder
from repro.core.isa import InexactSpeculativeAdder, StructuralFaultStats
from repro.exceptions import ConfigurationError
from repro.experiments.designs import DesignEntry, paper_design_entries
from repro.ml.features import gold_words_from_netlist
from repro.ml.model import TimingModelOptions
from repro.synth.flow import SynthesisOptions, SynthesizedDesign, exact_adder_netlist, synthesize
from repro.timing.clocking import ClockPlan
from repro.timing.errors import TimingErrorTrace
from repro.timing.event_sim import EventDrivenSimulator
from repro.timing.fast_sim import FastTimingSimulator
from repro.workloads.generators import uniform_workload
from repro.workloads.traces import OperandTrace

#: Environment variable that scales every default trace length (used by the
#: benchmark harness to trade fidelity for runtime).
TRACE_SCALE_ENV = "REPRO_TRACE_SCALE"

SIMULATORS = ("event", "fast")


def _scaled(length: int) -> int:
    scale = float(os.environ.get(TRACE_SCALE_ENV, "1.0"))
    return max(int(length * scale), 16)


@dataclass(frozen=True)
class StudyConfig:
    """Configuration of a full reproduction study."""

    width: int = 32
    characterization_length: int = 4000
    training_length: int = 2500
    evaluation_length: int = 2500
    seed: int = 7
    simulator: str = "event"
    clock_plan: ClockPlan = field(default_factory=ClockPlan.paper)
    synthesis: SynthesisOptions = field(default_factory=SynthesisOptions)
    model: TimingModelOptions = field(default_factory=TimingModelOptions)

    def __post_init__(self) -> None:
        if self.simulator not in SIMULATORS:
            raise ConfigurationError(
                f"simulator must be one of {SIMULATORS}, got {self.simulator!r}")
        for name in ("characterization_length", "training_length", "evaluation_length"):
            if getattr(self, name) < 16:
                raise ConfigurationError(f"{name} must be at least 16 vectors")

    # ------------------------------------------------------------------ #
    def design_entries(self) -> List[DesignEntry]:
        """The twelve paper designs at this study's width."""
        return paper_design_entries(self.width)

    def characterization_trace(self) -> OperandTrace:
        """Random trace used for error characterisation (Figs. 9 and 10)."""
        return uniform_workload(_scaled(self.characterization_length), width=self.width,
                                seed=self.seed)

    def training_trace(self) -> OperandTrace:
        """Random trace used to train the prediction model (Figs. 7 and 8)."""
        return uniform_workload(_scaled(self.training_length), width=self.width,
                                seed=self.seed + 1)

    def evaluation_trace(self) -> OperandTrace:
        """Held-out random trace used to evaluate the prediction model."""
        return uniform_workload(_scaled(self.evaluation_length), width=self.width,
                                seed=self.seed + 2)

    def scaled_down(self, factor: float) -> "StudyConfig":
        """A copy with every trace length multiplied by ``factor`` (for quick runs)."""
        if factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {factor}")
        return replace(
            self,
            characterization_length=max(int(self.characterization_length * factor), 16),
            training_length=max(int(self.training_length * factor), 16),
            evaluation_length=max(int(self.evaluation_length * factor), 16),
        )


@dataclass
class DesignCharacterization:
    """Everything the experiments need to know about one synthesized design."""

    entry: DesignEntry
    synthesized: SynthesizedDesign
    trace: OperandTrace
    diamond_words: np.ndarray
    gold_words: np.ndarray
    timing_traces: Dict[float, TimingErrorTrace]
    structural_stats: Optional[StructuralFaultStats] = None
    netlist_words: Optional[np.ndarray] = None

    @property
    def name(self) -> str:
        """Design label as used in the paper's figures."""
        return self.entry.name

    def timing_trace(self, clock_period: float) -> TimingErrorTrace:
        """Timing-simulation result at one clock period of the plan."""
        try:
            return self.timing_traces[clock_period]
        except KeyError:
            raise ConfigurationError(
                f"design {self.name} was not simulated at clock period {clock_period}") from None


def golden_model(entry: DesignEntry, width: int):
    """Behavioural golden model of a design entry (ISA or exact adder)."""
    if entry.is_exact:
        return ExactAdder(width)
    return InexactSpeculativeAdder(entry.config)


def synthesize_entry(entry: DesignEntry, width: int,
                     options: SynthesisOptions) -> SynthesizedDesign:
    """Synthesize one design entry with the study's flow options."""
    if entry.is_exact:
        return synthesize(exact_adder_netlist(width, options.adder_architecture), options)
    return synthesize(entry.config, options)


def make_simulator(kind: str, synthesized: SynthesizedDesign):
    """Instantiate the requested timing simulator for a synthesized design."""
    if kind == "event":
        return EventDrivenSimulator(synthesized.netlist, synthesized.annotation)
    if kind == "fast":
        return FastTimingSimulator(synthesized.netlist, synthesized.annotation)
    raise ConfigurationError(f"unknown simulator kind {kind!r}")


def characterize_design(entry: DesignEntry, trace: OperandTrace, config: StudyConfig,
                        collect_structural_stats: bool = False) -> DesignCharacterization:
    """Synthesize and simulate one design over a trace at every CPR level."""
    synthesized = synthesize_entry(entry, config.width, config.synthesis)
    exact = ExactAdder(config.width)
    diamond = exact.add_many(trace.a, trace.b)

    structural_stats = None
    if entry.is_exact:
        gold = diamond.copy()
    else:
        model = InexactSpeculativeAdder(entry.config)
        if collect_structural_stats:
            gold, structural_stats = model.add_many_with_stats(trace.a, trace.b)
        else:
            gold = model.add_many(trace.a, trace.b)

    # Gate-level settled outputs from the compiled packed engine: the
    # netlist's own golden reference, checked against the behavioural one.
    netlist_words = gold_words_from_netlist(synthesized.netlist, trace)
    if not np.array_equal(netlist_words, gold):
        raise ConfigurationError(
            f"synthesized netlist of {entry.name} disagrees with its behavioural "
            "golden model; the synthesis flow is unfaithful")

    simulator = make_simulator(config.simulator, synthesized)
    timing_traces = simulator.run_trace_multi(trace.as_operands(), config.clock_plan.periods)

    return DesignCharacterization(
        entry=entry,
        synthesized=synthesized,
        trace=trace,
        diamond_words=diamond,
        gold_words=gold,
        timing_traces=timing_traces,
        structural_stats=structural_stats,
        netlist_words=netlist_words,
    )
