"""Fig. 7 reproduction: average bit-level prediction error rate (ABPER).

This is a thin wrapper over :mod:`repro.experiments.prediction`: the
underlying study trains the per-bit random forests once and serves both
Fig. 7 (ABPER) and Fig. 8 (AVPE); ``run_fig7`` exposes the ABPER view.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import StudyConfig
from repro.experiments.prediction import PredictionStudyResult, run_prediction_study


def run_fig7(config: Optional[StudyConfig] = None,
             study: Optional[PredictionStudyResult] = None) -> PredictionStudyResult:
    """Run (or reuse) the prediction study and return it for ABPER reporting.

    Parameters
    ----------
    config:
        Study configuration; defaults reproduce the paper's setup at
        laptop-scale trace lengths.
    study:
        A pre-computed prediction study to reuse (the runner shares one
        study between Figs. 7 and 8).
    """
    if study is not None:
        return study
    return run_prediction_study(config)


def format_fig7(result: PredictionStudyResult) -> str:
    """Text table equivalent to Fig. 7 of the paper."""
    return result.format_abper_table()
