"""Command-line runner regenerating every figure of the paper.

``repro-experiments`` (installed as a console script) runs the Fig. 7/8
prediction study, the Fig. 9 error-combination sweep and the Fig. 10
distribution analysis, printing the paper-equivalent tables and
optionally writing them to a results file.

All characterisation is routed through the job pipeline of
:mod:`repro.runtime`: the runner builds one :class:`StudyConfig` from the
CLI knobs (simulator tier, fast-engine tier, execution backend, worker
count and result-cache directory), the figure drivers turn their designs
into job batches, and the selected backend — ``serial`` or
``multiprocess``, optionally fronted by the persistent on-disk result
cache (``--cache-dir`` / ``$REPRO_CACHE_DIR``) — schedules them.
Fig. 9 and Fig. 10 share a single characterization batch; a warm cache
reproduces every figure bit-identically without executing a single
simulation job (the footer reports the hit/miss counts).

Example::

    repro-experiments --scale 0.5 --backend multiprocess --jobs 4 \
        --simulator fast --engine compiled --output results.txt
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import replace
from typing import List, Optional

from repro.core.config import ISAConfig
from repro.experiments.common import StudyConfig, characterize_designs
from repro.experiments.designs import FIG10_QUADRUPLE
from repro.experiments.fig9_rms import run_fig9
from repro.experiments.fig10_distribution import run_fig10
from repro.experiments.prediction import run_prediction_study
from repro.families import family_ids, get_family
from repro.obs.manifest import resolve_telemetry_dir, telemetry_run
from repro.runtime import BACKENDS, RETRIES_ENV, TIMEOUT_ENV, CachingBackend
from repro.runtime.synth_cache import active_synth_cache, configure_synth_cache
from repro.timing.fast_sim import ENGINES
from repro.utils.phases import collect_phases


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro-experiments`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of 'Combining Structural and Timing Errors in "
                    "Overclocked Inexact Speculative Adders' (DATE 2017)")
    parser.add_argument("--family", choices=family_ids(), default="adder",
                        help="operator family to characterise (default adder; the "
                             "paper's figures are adder studies, so any other family "
                             "runs a compact characterization sweep instead of "
                             "--figures)")
    parser.add_argument("--width", type=int, default=None,
                        help="operand width of a non-adder family study "
                             "(default: the family's default width)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale factor applied to every trace length (default 1.0)")
    parser.add_argument("--simulator", choices=("event", "fast"), default="event",
                        help="timing simulator: glitch-aware event-driven (default) or fast "
                             "no-glitch vectorised")
    parser.add_argument("--engine", choices=ENGINES, default="auto",
                        help="execution engine of the fast simulator: compiled bit-packed, "
                             "dense reference, or auto fallback (default auto)")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="execution backend scheduling the characterization jobs "
                             "(default: $REPRO_BACKEND or serial)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes of the multiprocess backend "
                             "(default: $REPRO_WORKERS or one per CPU)")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="persistent on-disk result cache: characterization jobs "
                             "already in the cache skip simulation entirely and "
                             "reproduce bit-identically; misses are simulated and "
                             "stored for the next run (default: $REPRO_CACHE_DIR, "
                             "or no cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even when $REPRO_CACHE_DIR "
                             "is set")
    parser.add_argument("--synth-cache-dir", type=str, default=None, metavar="DIR",
                        help="persistent synthesis cache: designs synthesized by any "
                             "run or process load from disk bit-identically instead "
                             "of re-running the flow (default: $REPRO_SYNTH_CACHE, "
                             "or no cache)")
    parser.add_argument("--no-synth-cache", action="store_true",
                        help="disable the synthesis cache even when $REPRO_SYNTH_CACHE "
                             "is set")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="transient-failure retries per task, on top of the first "
                             "attempt (exports $REPRO_MAX_RETRIES; default: "
                             "$REPRO_MAX_RETRIES or 2)")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="SECONDS",
                        help="per-task wall-clock budget; stalled multiprocess tasks "
                             "are re-dispatched, over-budget serial tasks retried "
                             "(exports $REPRO_TASK_TIMEOUT; default: "
                             "$REPRO_TASK_TIMEOUT or none)")
    parser.add_argument("--seed", type=int, default=7, help="master random seed")
    parser.add_argument("--timings", action="store_true",
                        help="append a phase breakdown (synthesize — split into "
                             "synth.optimize / synth.sizing / synth.sta sub-phases — "
                             "then lower / pack / simulate / score) to the footer; "
                             "multiprocess worker phases are merged back into the "
                             "breakdown, with the driver's blocked time reported "
                             "as schedule.wait")
    parser.add_argument("--telemetry-dir", type=str, default=None, metavar="DIR",
                        help="append a run manifest (config, host, phases, worker "
                             "utilisation, cache metrics) to DIR/manifests.jsonl; "
                             "summarise with repro-stats "
                             "(default: $REPRO_TELEMETRY_DIR, or no telemetry)")
    parser.add_argument("--figures", nargs="+", default=["fig7", "fig8", "fig9", "fig10"],
                        choices=["fig7", "fig8", "fig9", "fig10"],
                        help="which figures to regenerate")
    parser.add_argument("--output", type=str, default=None,
                        help="optional path for the text report (stdout is always printed)")
    return parser


def run_all(config: StudyConfig, figures: List[str]) -> str:
    """Run the requested figures and return the combined text report."""
    sections: List[str] = []
    started = time.time()
    backend_instance = config.runtime_backend()
    # Shared caching backends accumulate counters across every study of
    # the process; the footer reports the delta of *this* run only.
    stats_baseline = (backend_instance.stats.snapshot()
                      if isinstance(backend_instance, CachingBackend) else None)
    synth_cache = active_synth_cache()
    synth_baseline = (synth_cache.stats.snapshot()
                      if synth_cache is not None else None)

    if "fig7" in figures or "fig8" in figures:
        study = run_prediction_study(config)
        if "fig7" in figures:
            sections.append(study.format_abper_table())
        if "fig8" in figures:
            sections.append(study.format_avpe_table())

    characterizations = None
    if "fig9" in figures or "fig10" in figures:
        target = ISAConfig.from_quadruple(FIG10_QUADRUPLE).name
        characterizations = characterize_designs(
            config.design_entries(), config.characterization_trace(), config,
            stats_for=(target,))

    if "fig9" in figures:
        sections.append(run_fig9(config, characterizations=characterizations).format_table())

    if "fig10" in figures:
        fig10_characterization = None
        if characterizations is not None:
            target = ISAConfig.from_quadruple(FIG10_QUADRUPLE).name
            for characterization in characterizations:
                if characterization.name == target:
                    fig10_characterization = characterization
                    break
        sections.append(run_fig10(config, characterization=fig10_characterization).format_table())

    elapsed = time.time() - started
    cache_note = ""
    if stats_baseline is not None:
        run_stats = backend_instance.stats.since(stats_baseline)
        cache_note = (f", cache={run_stats.describe()} "
                      f"[{backend_instance.store.root}]")
    if synth_baseline is not None:
        synth_stats = synth_cache.stats.since(synth_baseline)
        cache_note += (f", synth-cache={synth_stats.describe()} "
                       f"[{synth_cache.store.root}]")
    sections.append(f"(regenerated {', '.join(figures)} in {elapsed:.1f} s, "
                    f"simulator={config.simulator}, engine={config.engine}, "
                    f"backend={backend_instance.describe()}, "
                    f"trace_scale={config.trace_scale:g}, "
                    f"seed={config.seed}{cache_note})")
    return "\n\n".join(sections)


def run_family_study(config: StudyConfig, family_id: str, width: int) -> str:
    """Compact characterization sweep of one non-adder operator family.

    The paper's figures are adder studies; other families get the
    pipeline-equivalent summary — a strided selection of the legal space
    plus the exact baseline, swept over the family's CPR plan through
    the same cached job pipeline, reported per (design x CPR) point.
    """
    from repro.analysis.report import format_log_value, format_table
    from repro.explore.sweep import SWEEP_CPR_LEVELS, SweepSpec, run_sweep
    from repro.timing.clocking import ClockPlan
    from repro.workloads.generators import WorkloadSpec

    family = get_family(family_id)
    space = family.design_space(width)
    started = time.time()
    backend_instance = config.runtime_backend()
    stats_baseline = (backend_instance.stats.snapshot()
                      if isinstance(backend_instance, CachingBackend) else None)
    synth_cache = active_synth_cache()
    synth_baseline = (synth_cache.stats.snapshot()
                      if synth_cache is not None else None)

    spec = SweepSpec(
        entries=tuple(space.entries(max_designs=12)),
        clock_plan=ClockPlan(safe_period=family.safe_period(width),
                             cpr_levels=SWEEP_CPR_LEVELS),
        workloads=(WorkloadSpec(kind="uniform", length=config.scaled_length(512),
                                width=width, seed=config.seed),),
        simulator=config.simulator, engine=config.engine,
        synthesis=config.synthesis, width=width)
    result = run_sweep(spec, backend=backend_instance)

    rows = [(point.design,
             f"{point.cpr * 100:g}%",
             f"{point.clock_period * 1e12:.0f}",
             format_log_value(point.stats.rms_relative_error * 100.0),
             f"{point.stats.error_rate:.4f}",
             "yes" if point.provably_exact else "",
             point.cost.gates,
             f"{point.cost.area_proxy * 1e12:.0f}")
            for point in result.points]
    table = format_table(
        ["design", "CPR", "clock (ps)", "joint RMS RE (%)", "error rate",
         "exact-by-design", "gates", "area (ps)"],
        rows,
        title=f"{family_id} characterization — {space.describe()}; "
              f"{spec.describe()}")

    elapsed = time.time() - started
    cache_note = ""
    if stats_baseline is not None:
        run_stats = backend_instance.stats.since(stats_baseline)
        cache_note = (f", cache={run_stats.describe()} "
                      f"[{backend_instance.store.root}]")
    if synth_baseline is not None:
        synth_stats = synth_cache.stats.since(synth_baseline)
        cache_note += (f", synth-cache={synth_stats.describe()} "
                       f"[{synth_cache.store.root}]")
    footer = (f"(characterized {len(spec.entries)} {family_id} designs in "
              f"{elapsed:.1f} s, simulator={config.simulator}, "
              f"engine={config.engine}, backend={backend_instance.describe()}, "
              f"trace_scale={config.trace_scale:g}, "
              f"seed={config.seed}{cache_note})")
    return "\n\n".join([table, footer])


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.no_cache and arguments.cache_dir:
        parser.error("--no-cache and --cache-dir are mutually exclusive")
    if arguments.no_synth_cache and arguments.synth_cache_dir:
        parser.error("--no-synth-cache and --synth-cache-dir are mutually exclusive")
    if arguments.no_synth_cache:
        configure_synth_cache(None)
    elif arguments.synth_cache_dir is not None:
        # Exports $REPRO_SYNTH_CACHE so multiprocess workers spawned by
        # the backend read through the same on-disk cache.
        configure_synth_cache(arguments.synth_cache_dir)
    if arguments.max_retries is not None:
        if arguments.max_retries < 0:
            parser.error("--max-retries must be non-negative")
        # Exported like the synthesis cache: backends resolve their
        # RetryPolicy from the environment, workers inherit it.
        os.environ[RETRIES_ENV] = str(arguments.max_retries)
    if arguments.task_timeout is not None:
        if arguments.task_timeout <= 0:
            parser.error("--task-timeout must be positive")
        os.environ[TIMEOUT_ENV] = str(arguments.task_timeout)
    overrides = {"simulator": arguments.simulator, "engine": arguments.engine,
                 "seed": arguments.seed}
    if arguments.backend is not None:
        overrides["backend"] = arguments.backend
    if arguments.jobs is not None:
        overrides["workers"] = arguments.jobs
    if arguments.no_cache:
        overrides["cache_dir"] = None
    elif arguments.cache_dir is not None:
        overrides["cache_dir"] = arguments.cache_dir
    family = get_family(arguments.family)
    width = arguments.width
    if arguments.family == "adder":
        if width is not None:
            parser.error("--width applies to non-adder family studies only "
                         "(the paper's figures are fixed-width adder studies)")
    else:
        width = width if width is not None else family.default_width
        if not 2 <= width <= family.max_width:
            parser.error(f"--width must be in [2, {family.max_width}] for the "
                         f"{arguments.family} family")
    config = StudyConfig(**overrides)
    if arguments.scale != 1.0:
        # --scale composes with $REPRO_TRACE_SCALE through the explicit
        # trace_scale field, so the applied scaling shows in the report.
        config = replace(config, trace_scale=config.trace_scale * arguments.scale)

    def run() -> str:
        if arguments.family == "adder":
            return run_all(config, arguments.figures)
        return run_family_study(config, arguments.family, width)

    with telemetry_run(resolve_telemetry_dir(arguments.telemetry_dir),
                       command="repro-experiments",
                       config={"family": arguments.family,
                               "figures": list(arguments.figures),
                               "simulator": arguments.simulator,
                               "engine": arguments.engine,
                               "scale": arguments.scale}):
        if arguments.timings:
            with collect_phases() as phases:
                report = run()
            report += f"\n(timings: {phases.describe()})"
        else:
            report = run()
    print(report)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
