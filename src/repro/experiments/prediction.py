"""Shared prediction study behind Figs. 7 and 8.

For every design and CPR level the study:

1. characterises the design over a *training* trace at the overclocked
   periods (delay-annotated gate-level simulation — the "Data
   Collection" phase of the paper's Fig. 3) and over a held-out
   evaluation trace, as one batch of runtime jobs scheduled on the
   study's execution backend,
2. trains one random-forest classifier per output bit on the
   {x[t], x[t-1], yRTL_n[t-1], yRTL_n[t]} features,
3. evaluates the model on the held-out trace, reporting ABPER (Fig. 7)
   and AVPE (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import format_log_value, format_table
from repro.experiments.common import StudyConfig
from repro.experiments.designs import DesignEntry
from repro.ml.metrics import classification_summary, floored
from repro.ml.model import BitLevelTimingModel
from repro.runtime import DesignCharacterization
from repro.workloads.traces import OperandTrace


@dataclass(frozen=True)
class PredictionRow:
    """Model-quality metrics of one design at one CPR level."""

    design: str
    cpr: float
    clock_period: float
    abper: float
    avpe: float
    real_error_rate: float
    precision: float
    recall: float
    trained_bits: int


@dataclass
class PredictionStudyResult:
    """All rows of the prediction study plus per-figure formatting."""

    rows: List[PredictionRow]
    cpr_levels: tuple

    def rows_for_cpr(self, cpr: float) -> List[PredictionRow]:
        """Rows of one CPR level, in the paper's design order."""
        return [row for row in self.rows if abs(row.cpr - cpr) < 1e-12]

    def row(self, design: str, cpr: float) -> PredictionRow:
        """Look up one design/CPR cell."""
        for candidate in self.rows:
            if candidate.design == design and abs(candidate.cpr - cpr) < 1e-12:
                return candidate
        raise KeyError(f"no prediction row for design {design!r} at CPR {cpr}")

    def format_abper_table(self) -> str:
        """Fig. 7 rendering: ABPER per design and CPR."""
        return self._format("Fig. 7 — average bit-level prediction error rate (ABPER)",
                            metric="abper")

    def format_avpe_table(self) -> str:
        """Fig. 8 rendering: AVPE per design and CPR."""
        return self._format("Fig. 8 — average value-level predictive error (AVPE)",
                            metric="avpe")

    def _format(self, title: str, metric: str) -> str:
        designs = []
        for row in self.rows:
            if row.design not in designs:
                designs.append(row.design)
        headers = ["design"] + [f"{cpr * 100:g}% CPR" for cpr in self.cpr_levels]
        table_rows = []
        for design in designs:
            cells = [design]
            for cpr in self.cpr_levels:
                row = self.row(design, cpr)
                cells.append(format_log_value(getattr(row, metric)))
            table_rows.append(cells)
        return format_table(headers, table_rows, title=title)

    def to_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Nested dict view ``{cpr_label: {design: {metric: value}}}``."""
        result: Dict[str, Dict[str, Dict[str, float]]] = {}
        for row in self.rows:
            label = f"{row.cpr * 100:g}%"
            result.setdefault(label, {})[row.design] = {
                "abper": row.abper,
                "avpe": row.avpe,
                "real_error_rate": row.real_error_rate,
                "precision": row.precision,
                "recall": row.recall,
            }
        return result


def rows_from_characterizations(config: StudyConfig,
                                training: DesignCharacterization,
                                evaluation: DesignCharacterization) -> List[PredictionRow]:
    """Train and evaluate the per-bit model from a design's two characterisations.

    ``training`` and ``evaluation`` are the runtime results of the same
    design over the training and the held-out trace; their golden words
    and timing traces drive the fit/evaluate cycle at every CPR level.
    """
    rows: List[PredictionRow] = []
    for cpr, period in config.clock_plan.items():
        model = BitLevelTimingModel(design=training.name, clock_period=period,
                                    output_width=config.width + 1, options=config.model)
        model.fit(training.trace, training.gold_words, training.timing_trace(period))
        eval_timing = evaluation.timing_trace(period)
        metrics = model.evaluate(evaluation.trace, evaluation.gold_words, eval_timing)
        predicted_errors = model.predict_error_matrix(evaluation.trace, evaluation.gold_words)
        summary = classification_summary(predicted_errors, eval_timing.error_bits())
        rows.append(PredictionRow(
            design=training.name,
            cpr=cpr,
            clock_period=period,
            abper=floored(metrics["abper"]),
            avpe=floored(metrics["avpe"]),
            real_error_rate=summary["error_rate"],
            precision=summary["precision"],
            recall=summary["recall"],
            trained_bits=len(model.trained_bits),
        ))
    return rows


def study_design(entry: DesignEntry, config: StudyConfig,
                 training_trace: OperandTrace,
                 evaluation_trace: OperandTrace) -> List[PredictionRow]:
    """Train and evaluate the per-bit model of one design at every CPR level."""
    training, evaluation = config.runtime_backend().run([
        config.job(entry, training_trace),
        config.job(entry, evaluation_trace),
    ])
    return rows_from_characterizations(config, training, evaluation)


def run_prediction_study(config: Optional[StudyConfig] = None) -> PredictionStudyResult:
    """Run the Fig. 7 / Fig. 8 prediction study over every paper design.

    The heavy characterisation work — every design over both the
    training and the evaluation trace — is submitted as one job batch to
    the study's execution backend; model training then proceeds from the
    returned characterisations.
    """
    config = config or StudyConfig()
    training_trace = config.training_trace()
    evaluation_trace = config.evaluation_trace()
    entries = config.design_entries()
    jobs = []
    for entry in entries:
        jobs.append(config.job(entry, training_trace))
        jobs.append(config.job(entry, evaluation_trace))
    results = config.runtime_backend().run(jobs)
    rows: List[PredictionRow] = []
    for index in range(len(entries)):
        rows.extend(rows_from_characterizations(
            config, results[2 * index], results[2 * index + 1]))
    return PredictionStudyResult(rows=rows, cpr_levels=config.clock_plan.cpr_levels)
