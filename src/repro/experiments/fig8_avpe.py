"""Fig. 8 reproduction: average value-level predictive error (AVPE).

Shares the prediction study with Fig. 7 (the trained per-bit forests are
identical); this module exposes the value-level view, i.e. how far the
silver outputs reconstructed from the predicted timing classes deviate
from the measured silver outputs.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import StudyConfig
from repro.experiments.prediction import PredictionStudyResult, run_prediction_study


def run_fig8(config: Optional[StudyConfig] = None,
             study: Optional[PredictionStudyResult] = None) -> PredictionStudyResult:
    """Run (or reuse) the prediction study and return it for AVPE reporting."""
    if study is not None:
        return study
    return run_prediction_study(config)


def format_fig8(result: PredictionStudyResult) -> str:
    """Text table equivalent to Fig. 8 of the paper."""
    return result.format_avpe_table()
