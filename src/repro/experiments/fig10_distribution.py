"""Fig. 10 reproduction: bit-position error distribution of one overclocked ISA.

The paper analyses ISA (8,0,0,4) at 15 % CPR — the configuration with the
best balance between structural and timing errors — and plots, per
bit-position equivalent, the internal rate of structural errors (from the
speculative architecture) and of timing errors (from overclocking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.distribution import BitErrorDistribution, bit_error_distribution
from repro.analysis.report import format_table
from repro.core.config import ISAConfig
from repro.experiments.common import DesignCharacterization, StudyConfig, characterize_designs
from repro.experiments.designs import FIG10_QUADRUPLE, DesignEntry


@dataclass
class Fig10Result:
    """The Fig. 10 distribution plus the characterisation it came from."""

    distribution: BitErrorDistribution
    characterization: DesignCharacterization
    cpr: float

    def format_table(self) -> str:
        """Text rendering of the two Fig. 10 series."""
        rows = [(position, f"{structural:.4f}", f"{timing:.4f}")
                for position, structural, timing in self.distribution.rows()]
        title = (f"Fig. 10 — bit-level-equivalent error distribution in ISA "
                 f"{self.distribution.design} under {self.cpr * 100:g}% CPR")
        return format_table(["bit position", "structural error rate", "timing error rate"],
                            rows, title=title)

    def structural_peak_positions(self, top: int = 3) -> Tuple[int, ...]:
        """Bit positions with the highest structural error rates."""
        order = self.distribution.structural.argsort()[::-1]
        return tuple(int(position) for position in order[:top])

    def timing_peak_positions(self, top: int = 3) -> Tuple[int, ...]:
        """Bit positions with the highest timing error rates."""
        order = self.distribution.timing.argsort()[::-1]
        return tuple(int(position) for position in order[:top])


def run_fig10(config: Optional[StudyConfig] = None,
              quadruple: Tuple[int, int, int, int] = FIG10_QUADRUPLE,
              cpr: float = 0.15,
              characterization: Optional[DesignCharacterization] = None) -> Fig10Result:
    """Reproduce Fig. 10 for the given design and CPR level."""
    config = config or StudyConfig()
    if characterization is None:
        isa_config = ISAConfig.from_quadruple(quadruple, width=config.width)
        entry = DesignEntry(name=isa_config.name, config=isa_config)
        trace = config.characterization_trace()
        [characterization] = characterize_designs([entry], trace, config,
                                                  stats_for=(entry.name,))
    elif characterization.structural_stats is None:
        raise ValueError("the supplied characterization lacks structural fault statistics")

    period = config.clock_plan.period_for(cpr)
    timing_trace = characterization.timing_trace(period)
    distribution = bit_error_distribution(
        design=characterization.name,
        width=config.width,
        structural_stats=characterization.structural_stats,
        timing_trace=timing_trace,
    )
    return Fig10Result(distribution=distribution, characterization=characterization, cpr=cpr)
