"""Experiment drivers reproducing the paper's evaluation figures.

Each module regenerates one artefact of Section V of the paper:

* :mod:`~repro.experiments.fig7_abper` — Fig. 7, bit-level prediction
  error rate (ABPER) per design and CPR.
* :mod:`~repro.experiments.fig8_avpe` — Fig. 8, value-level predictive
  error (AVPE) per design and CPR.
* :mod:`~repro.experiments.fig9_rms` — Fig. 9(a-c), structural / timing /
  joint relative-error RMS per design and CPR.
* :mod:`~repro.experiments.fig10_distribution` — Fig. 10, bit-position
  error distribution of ISA (8,0,0,4) at 15 % CPR.

:mod:`~repro.experiments.designs` lists the paper's twelve designs and
:mod:`~repro.experiments.runner` provides the ``repro-experiments``
command-line entry point that regenerates everything.
"""

from repro.experiments.common import (
    DesignCharacterization,
    DesignEntry,
    StudyConfig,
    characterize_design,
    characterize_designs,
)
from repro.experiments.designs import PAPER_QUADRUPLES, exact_entry, paper_design_entries
from repro.experiments.fig7_abper import run_fig7
from repro.experiments.fig8_avpe import run_fig8
from repro.experiments.fig9_rms import Fig9Result, run_fig9
from repro.experiments.fig10_distribution import Fig10Result, run_fig10
from repro.experiments.prediction import PredictionStudyResult, run_prediction_study

__all__ = [
    "StudyConfig",
    "DesignEntry",
    "DesignCharacterization",
    "characterize_design",
    "characterize_designs",
    "PAPER_QUADRUPLES",
    "paper_design_entries",
    "exact_entry",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "Fig9Result",
    "Fig10Result",
    "PredictionStudyResult",
    "run_prediction_study",
]
