"""Word-level operand expansion shared by the timing simulators.

Both simulators accept the same stimulus dict: keys are registered bus
names (values are integer words, one per cycle) or individual primary
input nets (values are 0/1 arrays).  This module centralises the
expansion into per-net bit traces and its validation, which used to be
copy-pasted between the fast and the event-driven simulator.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.circuit.netlist import Netlist
from repro.exceptions import SimulationError
from repro.utils.lru import IdentityMemo

#: Entries kept by :func:`expand_operand_traces_interned`; each holds the
#: expanded per-net bit arrays of one (operand arrays, bus layout) pair.
_INTERN_CACHE: "IdentityMemo[Dict[str, np.ndarray]]" = IdentityMemo(16)


def expand_operand_traces(netlist: Netlist,
                          operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Expand word-level buses / scalar nets into per-net 0/1 bit traces.

    Every entry of ``operands`` must carry the same number of cycles, and
    the expansion must drive every primary input of ``netlist``; a
    :class:`~repro.exceptions.SimulationError` is raised otherwise.
    """
    expanded: Dict[str, np.ndarray] = {}
    length: Optional[int] = None
    for name, values in operands.items():
        values = np.asarray(values)
        if name in netlist.buses:
            expanded.update(netlist.encode_bus(name, values.astype(np.uint64)))
        elif name in netlist.inputs:
            expanded[name] = values.astype(np.uint8)
        else:
            raise SimulationError(f"unknown operand {name!r}: not a bus or input net")
        current_length = int(values.shape[0])
        if length is None:
            length = current_length
        elif current_length != length:
            raise SimulationError("all operand traces must have the same length")
    missing = [net for net in netlist.inputs if net not in expanded]
    if missing:
        raise SimulationError(f"operand trace does not drive inputs {missing}")
    return expanded


def expand_operand_traces_interned(netlist: Netlist,
                                   operands: Mapping[str, np.ndarray]
                                   ) -> Dict[str, np.ndarray]:
    """Like :func:`expand_operand_traces`, memoised per operand identity.

    A design-space sweep expands the *same* workload trace once per
    design; the expansion only depends on the operand arrays and the
    netlist's bus layout (the ordered net lists of the buses driven), so
    two designs sharing a layout can share the expanded bit traces.
    Entries are keyed by the identity of the operand arrays (an
    :class:`~repro.utils.lru.IdentityMemo`, so a recycled ``id`` can
    never alias) plus the layout signature, in a small
    least-recently-used cache.

    Callers must treat the returned arrays as read-only — they are
    shared with every other caller of the same key.
    """
    signature = []
    sources = []
    for name in sorted(operands):
        sources.append(operands[name])
        layout = tuple(netlist.buses[name]) if name in netlist.buses else None
        signature.append((name, layout))
    # The full input list takes part in the key: expansion validates that
    # every primary input is driven, and that check must not be skipped
    # for a netlist with extra inputs that happens to share bus layouts.
    extra = (tuple(netlist.inputs), tuple(signature))
    anchors = tuple(sources)
    expanded = _INTERN_CACHE.get(anchors, extra=extra)
    if expanded is None:
        expanded = _INTERN_CACHE.put(anchors,
                                     expand_operand_traces(netlist, operands),
                                     extra=extra)
    return expanded


def trace_length(bit_traces: Mapping[str, np.ndarray]) -> int:
    """Common cycle count of expanded bit traces (validated)."""
    lengths = {int(values.shape[0]) for values in bit_traces.values()}
    if len(lengths) != 1:
        raise SimulationError("inconsistent trace lengths after expansion")
    return lengths.pop()
