"""Static timing analysis over delay-annotated netlists.

Arrival times propagate forward from primary inputs (which switch at time
zero), required times propagate backward from primary outputs (which must
settle by the clock period), and the slack of a gate is the difference at
its output net.  The analysis is purely topological — input-pattern
(dynamic) effects are handled by the simulators in
:mod:`repro.timing.fast_sim` and :mod:`repro.timing.event_sim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import CONST0, CONST1, Gate, Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.exceptions import TimingError


def arrival_times(netlist: Netlist, annotation: DelayAnnotation) -> Dict[str, float]:
    """Latest arrival time of every net (primary inputs switch at time 0)."""
    arrival: Dict[str, float] = {net: 0.0 for net in netlist.inputs}
    arrival[CONST0] = 0.0
    arrival[CONST1] = 0.0
    for gate in netlist.topological_order():
        delay = annotation.delay_of(gate.name)
        arrival[gate.output] = delay + max(arrival[net] for net in gate.inputs)
    return arrival


def required_times(netlist: Netlist, annotation: DelayAnnotation,
                   clock_period: float) -> Dict[str, float]:
    """Latest allowed arrival of every net for the outputs to meet ``clock_period``."""
    required: Dict[str, float] = {net: math.inf for net in netlist.nets}
    for net in netlist.outputs:
        required[net] = min(required[net], clock_period)
    for gate in reversed(netlist.topological_order()):
        delay = annotation.delay_of(gate.name)
        budget = required[gate.output] - delay
        for net in gate.inputs:
            if budget < required[net]:
                required[net] = budget
    return required


def gate_slacks(netlist: Netlist, annotation: DelayAnnotation,
                clock_period: float) -> Dict[str, float]:
    """Slack of every gate instance (required minus arrival at its output)."""
    arrival = arrival_times(netlist, annotation)
    required = required_times(netlist, annotation, clock_period)
    return {gate.name: required[gate.output] - arrival[gate.output]
            for gate in netlist.gates}


def path_gate_counts(netlist: Netlist) -> Dict[str, int]:
    """Number of gates on the longest input-to-output path through each gate.

    Used by the sizing heuristic to split a path's slack fairly among the
    gates that share it.
    """
    forward: Dict[str, int] = {net: 0 for net in netlist.nets}
    for gate in netlist.topological_order():
        forward[gate.output] = 1 + max(forward[net] for net in gate.inputs)
    backward: Dict[str, int] = {net: 0 for net in netlist.nets}
    output_set = set(netlist.outputs)
    for gate in reversed(netlist.topological_order()):
        downstream = backward[gate.output]
        if gate.output in output_set:
            downstream = max(downstream, 0)
        through = downstream + 1
        for net in gate.inputs:
            if through > backward[net]:
                backward[net] = through
    counts: Dict[str, int] = {}
    for gate in netlist.gates:
        counts[gate.name] = forward[gate.output] + backward[gate.output]
    return counts


def critical_path(netlist: Netlist, annotation: DelayAnnotation
                  ) -> Tuple[List[str], float, str]:
    """Longest path as ``(gate names, delay, endpoint net)``."""
    arrival = arrival_times(netlist, annotation)
    if not netlist.outputs:
        raise TimingError(f"netlist {netlist.name!r} has no primary outputs")
    endpoint = max(netlist.outputs, key=lambda net: arrival[net])
    path: List[str] = []
    net = endpoint
    while True:
        gate = netlist.driver_of(net)
        if gate is None:
            break
        path.append(gate.name)
        net = max(gate.inputs, key=lambda candidate: arrival[candidate])
    path.reverse()
    return path, arrival[endpoint], endpoint


@dataclass(frozen=True)
class TimingReport:
    """Summary of one static timing analysis run."""

    design: str
    clock_period: Optional[float]
    critical_path_delay: float
    critical_path_gates: Tuple[str, ...]
    critical_endpoint: str
    worst_slack: Optional[float]
    output_arrivals: Dict[str, float]

    @property
    def meets_constraint(self) -> bool:
        """True when the worst slack is non-negative (or no clock was given)."""
        if self.worst_slack is None:
            return True
        return self.worst_slack >= -1e-15

    def max_frequency_ghz(self) -> float:
        """Maximum clock frequency implied by the critical path, in GHz."""
        if self.critical_path_delay <= 0:
            raise TimingError("critical path delay must be positive to define a frequency")
        return 1e-9 / self.critical_path_delay

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Timing report for {self.design}",
            f"  critical path delay : {self.critical_path_delay * 1e12:.1f} ps "
            f"(endpoint {self.critical_endpoint})",
            f"  logic depth (gates) : {len(self.critical_path_gates)}",
            f"  max frequency       : {self.max_frequency_ghz():.2f} GHz",
        ]
        if self.clock_period is not None:
            lines.append(f"  clock period        : {self.clock_period * 1e12:.1f} ps")
            lines.append(f"  worst slack         : {self.worst_slack * 1e12:+.1f} ps"
                         f" ({'MET' if self.meets_constraint else 'VIOLATED'})")
        return "\n".join(lines)


def analyze_timing(netlist: Netlist, annotation: DelayAnnotation,
                   clock_period: Optional[float] = None) -> TimingReport:
    """Run STA and return a :class:`TimingReport`."""
    annotation.validate_against(netlist)
    arrival = arrival_times(netlist, annotation)
    path, delay, endpoint = critical_path(netlist, annotation)
    worst_slack = None
    if clock_period is not None:
        if clock_period <= 0:
            raise TimingError(f"clock period must be positive, got {clock_period}")
        worst_slack = clock_period - delay
    return TimingReport(
        design=netlist.name,
        clock_period=clock_period,
        critical_path_delay=delay,
        critical_path_gates=tuple(path),
        critical_endpoint=endpoint,
        worst_slack=worst_slack,
        output_arrivals={net: arrival[net] for net in netlist.outputs},
    )
