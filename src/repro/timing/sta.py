"""Static timing analysis over delay-annotated netlists.

Arrival times propagate forward from primary inputs (which switch at time
zero), required times propagate backward from primary outputs (which must
settle by the clock period), and the slack of a gate is the difference at
its output net.  The analysis is purely topological — input-pattern
(dynamic) effects are handled by the simulators in
:mod:`repro.timing.fast_sim` and :mod:`repro.timing.event_sim`.

Each analysis exists twice: the original per-gate dict passes (the
reference implementation, selected with ``vector=False`` or
``REPRO_SYNTH_VECTOR=0``) and a levelised NumPy path over the
integer-indexed gate tables of :class:`TimingTable` (the default).  The
two are bit-identical: the array passes perform the same IEEE-754
operations in a dependency-equivalent order — per-level forward maxima,
order-independent backward min/max scatters — so every arrival, required
time and slack matches the reference float for float (enforced by
``tests/test_synth_vector.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.compiled import levelise_netlist
from repro.circuit.netlist import CONST0, CONST1, Gate, Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.exceptions import TimingError
from repro.utils.lru import IdentityMemo
from repro.utils.vector import use_vector


# --------------------------------------------------------------------- #
# Levelised gate tables (shared by the vectorized STA and sizing kernels)
# --------------------------------------------------------------------- #
class TimingTable:
    """A netlist lowered to integer-indexed, levelised timing tables.

    Reuses the dense net-ID scheme of the compiled simulation engine
    (:func:`~repro.circuit.compiled.levelise_netlist`): ``const0`` = 0,
    ``const1`` = 1, inputs, then gate outputs in topological order.
    Gates are grouped per level into padded pin-index arrays (short
    gates repeat pin 0, which is neutral for the min/max reductions the
    passes perform), so one forward or backward sweep costs a handful
    of NumPy calls per level instead of a Python iteration per gate.

    The table is structure-only (no delays) and safe to cache per
    netlist; :func:`timing_table` memoises it by netlist identity.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.order = netlist.topological_order()
        net_id, gate_levels = levelise_netlist(netlist)
        self.net_id = net_id
        self.num_nets = len(net_id)
        names: List[str] = [""] * self.num_nets
        for net, index in net_id.items():
            names[index] = net
        self.net_names = names
        self.out_ids = np.array([net_id[gate.output] for gate in self.order],
                                dtype=np.int64)
        self.output_ids = np.array([net_id[net] for net in netlist.outputs],
                                   dtype=np.int64)

        by_level: Dict[int, List[int]] = {}
        for index, level in enumerate(gate_levels):
            by_level.setdefault(level, []).append(index)
        #: Per level, ascending: (gate indices, output-net ids, pin-net ids).
        self.level_batches: List[Tuple[np.ndarray, np.ndarray, Tuple[np.ndarray, ...]]] = []
        for level in sorted(by_level):
            indices = np.array(by_level[level], dtype=np.int64)
            gates = [self.order[i] for i in by_level[level]]
            width = max(len(gate.inputs) for gate in gates)
            pins = tuple(
                np.array([net_id[gate.inputs[pin if pin < len(gate.inputs) else 0]]
                          for gate in gates], dtype=np.int64)
                for pin in range(width))
            self.level_batches.append((indices, self.out_ids[indices], pins))
        self._path_counts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def delay_array(self, annotation: DelayAnnotation) -> np.ndarray:
        """Per-gate delays in topological order."""
        return np.array([annotation.delay_of(gate.name) for gate in self.order],
                        dtype=np.float64)

    def arrival_array(self, delays: np.ndarray) -> np.ndarray:
        """Latest arrival per net ID (inputs and constants switch at 0)."""
        arrival = np.zeros(self.num_nets, dtype=np.float64)
        for indices, outs, pins in self.level_batches:
            latest = arrival[pins[0]]
            for pin in pins[1:]:
                latest = np.maximum(latest, arrival[pin])
            arrival[outs] = delays[indices] + latest
        return arrival

    def required_array(self, delays: np.ndarray, clock_period: float) -> np.ndarray:
        """Latest allowed arrival per net ID against ``clock_period``."""
        required = np.full(self.num_nets, math.inf, dtype=np.float64)
        np.minimum.at(required, self.output_ids, clock_period)
        for indices, outs, pins in reversed(self.level_batches):
            budget = required[outs] - delays[indices]
            for pin in pins:
                np.minimum.at(required, pin, budget)
        return required

    def slack_array(self, delays: np.ndarray, clock_period: float) -> np.ndarray:
        """Per-gate slack (required minus arrival at the output net)."""
        arrival = self.arrival_array(delays)
        required = self.required_array(delays, clock_period)
        return required[self.out_ids] - arrival[self.out_ids]

    def path_counts(self) -> np.ndarray:
        """Per-gate longest input-to-output path length (cached; structural)."""
        if self._path_counts is None:
            forward = np.zeros(self.num_nets, dtype=np.int64)
            for indices, outs, pins in self.level_batches:
                deepest = forward[pins[0]]
                for pin in pins[1:]:
                    deepest = np.maximum(deepest, forward[pin])
                forward[outs] = 1 + deepest
            backward = np.zeros(self.num_nets, dtype=np.int64)
            for indices, outs, pins in reversed(self.level_batches):
                through = backward[outs] + 1
                for pin in pins:
                    np.maximum.at(backward, pin, through)
            self._path_counts = forward[self.out_ids] + backward[self.out_ids]
        return self._path_counts


#: Tables keyed by netlist identity; gate/input counts in the extra key
#: sideline stale tables should a cached netlist be grown in place.
_TIMING_TABLES: IdentityMemo = IdentityMemo(capacity=8)


def timing_table(netlist: Netlist) -> TimingTable:
    """The (memoised) levelised timing table of ``netlist``."""
    extra = (netlist.num_gates, len(netlist.inputs))
    table = _TIMING_TABLES.get((netlist,), extra=extra)
    if table is None:
        table = _TIMING_TABLES.put((netlist,), TimingTable(netlist), extra=extra)
    return table


# --------------------------------------------------------------------- #
# Reference implementations (the executable specification)
# --------------------------------------------------------------------- #
def _arrival_times_reference(netlist: Netlist,
                             annotation: DelayAnnotation) -> Dict[str, float]:
    arrival: Dict[str, float] = {net: 0.0 for net in netlist.inputs}
    arrival[CONST0] = 0.0
    arrival[CONST1] = 0.0
    for gate in netlist.topological_order():
        delay = annotation.delay_of(gate.name)
        arrival[gate.output] = delay + max(arrival[net] for net in gate.inputs)
    return arrival


def _required_times_reference(netlist: Netlist, annotation: DelayAnnotation,
                              clock_period: float) -> Dict[str, float]:
    required: Dict[str, float] = {net: math.inf for net in netlist.nets}
    for net in netlist.outputs:
        required[net] = min(required[net], clock_period)
    for gate in reversed(netlist.topological_order()):
        delay = annotation.delay_of(gate.name)
        budget = required[gate.output] - delay
        for net in gate.inputs:
            if budget < required[net]:
                required[net] = budget
    return required


def _gate_slacks_reference(netlist: Netlist, annotation: DelayAnnotation,
                           clock_period: float) -> Dict[str, float]:
    arrival = _arrival_times_reference(netlist, annotation)
    required = _required_times_reference(netlist, annotation, clock_period)
    return {gate.name: required[gate.output] - arrival[gate.output]
            for gate in netlist.gates}


def _path_gate_counts_reference(netlist: Netlist) -> Dict[str, int]:
    forward: Dict[str, int] = {net: 0 for net in netlist.nets}
    for gate in netlist.topological_order():
        forward[gate.output] = 1 + max(forward[net] for net in gate.inputs)
    backward: Dict[str, int] = {net: 0 for net in netlist.nets}
    output_set = set(netlist.outputs)
    for gate in reversed(netlist.topological_order()):
        downstream = backward[gate.output]
        if gate.output in output_set:
            downstream = max(downstream, 0)
        through = downstream + 1
        for net in gate.inputs:
            if through > backward[net]:
                backward[net] = through
    counts: Dict[str, int] = {}
    for gate in netlist.gates:
        counts[gate.name] = forward[gate.output] + backward[gate.output]
    return counts


# --------------------------------------------------------------------- #
# Public entry points (vector dispatch)
# --------------------------------------------------------------------- #
def arrival_times(netlist: Netlist, annotation: DelayAnnotation,
                  vector: Optional[bool] = None) -> Dict[str, float]:
    """Latest arrival time of every net (primary inputs switch at time 0)."""
    if not use_vector(vector) or not netlist.num_gates:
        return _arrival_times_reference(netlist, annotation)
    table = timing_table(netlist)
    values = table.arrival_array(table.delay_array(annotation)).tolist()
    # Same key order as the reference: inputs, constants, gate outputs.
    arrival = {net: values[table.net_id[net]] for net in netlist.inputs}
    arrival[CONST0] = values[0]
    arrival[CONST1] = values[1]
    for gate, out_id in zip(table.order, table.out_ids.tolist()):
        arrival[gate.output] = values[out_id]
    return arrival


def required_times(netlist: Netlist, annotation: DelayAnnotation,
                   clock_period: float,
                   vector: Optional[bool] = None) -> Dict[str, float]:
    """Latest allowed arrival of every net for the outputs to meet ``clock_period``."""
    if not use_vector(vector) or not netlist.num_gates:
        return _required_times_reference(netlist, annotation, clock_period)
    table = timing_table(netlist)
    values = table.required_array(table.delay_array(annotation), clock_period)
    return dict(zip(table.net_names, values.tolist()))


def gate_slacks(netlist: Netlist, annotation: DelayAnnotation,
                clock_period: float,
                vector: Optional[bool] = None) -> Dict[str, float]:
    """Slack of every gate instance (required minus arrival at its output)."""
    if not use_vector(vector) or not netlist.num_gates:
        return _gate_slacks_reference(netlist, annotation, clock_period)
    table = timing_table(netlist)
    slacks = table.slack_array(table.delay_array(annotation), clock_period)
    return {gate.name: slack
            for gate, slack in zip(table.order, slacks.tolist())}


def path_gate_counts(netlist: Netlist,
                     vector: Optional[bool] = None) -> Dict[str, int]:
    """Number of gates on the longest input-to-output path through each gate.

    Used by the sizing heuristic to split a path's slack fairly among the
    gates that share it.
    """
    if not use_vector(vector) or not netlist.num_gates:
        return _path_gate_counts_reference(netlist)
    table = timing_table(netlist)
    return {gate.name: count
            for gate, count in zip(table.order, table.path_counts().tolist())}


def critical_path(netlist: Netlist, annotation: DelayAnnotation
                  ) -> Tuple[List[str], float, str]:
    """Longest path as ``(gate names, delay, endpoint net)``."""
    arrival = arrival_times(netlist, annotation)
    if not netlist.outputs:
        raise TimingError(f"netlist {netlist.name!r} has no primary outputs")
    endpoint = max(netlist.outputs, key=lambda net: arrival[net])
    path: List[str] = []
    net = endpoint
    while True:
        gate = netlist.driver_of(net)
        if gate is None:
            break
        path.append(gate.name)
        net = max(gate.inputs, key=lambda candidate: arrival[candidate])
    path.reverse()
    return path, arrival[endpoint], endpoint


@dataclass(frozen=True)
class TimingReport:
    """Summary of one static timing analysis run."""

    design: str
    clock_period: Optional[float]
    critical_path_delay: float
    critical_path_gates: Tuple[str, ...]
    critical_endpoint: str
    worst_slack: Optional[float]
    output_arrivals: Dict[str, float]

    @property
    def meets_constraint(self) -> bool:
        """True when the worst slack is non-negative (or no clock was given)."""
        if self.worst_slack is None:
            return True
        return self.worst_slack >= -1e-15

    def max_frequency_ghz(self) -> float:
        """Maximum clock frequency implied by the critical path, in GHz."""
        if self.critical_path_delay <= 0:
            raise TimingError("critical path delay must be positive to define a frequency")
        return 1e-9 / self.critical_path_delay

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Timing report for {self.design}",
            f"  critical path delay : {self.critical_path_delay * 1e12:.1f} ps "
            f"(endpoint {self.critical_endpoint})",
            f"  logic depth (gates) : {len(self.critical_path_gates)}",
            f"  max frequency       : {self.max_frequency_ghz():.2f} GHz",
        ]
        if self.clock_period is not None:
            lines.append(f"  clock period        : {self.clock_period * 1e12:.1f} ps")
            lines.append(f"  worst slack         : {self.worst_slack * 1e12:+.1f} ps"
                         f" ({'MET' if self.meets_constraint else 'VIOLATED'})")
        return "\n".join(lines)


def analyze_timing(netlist: Netlist, annotation: DelayAnnotation,
                   clock_period: Optional[float] = None) -> TimingReport:
    """Run STA and return a :class:`TimingReport`."""
    annotation.validate_against(netlist)
    arrival = arrival_times(netlist, annotation)
    path, delay, endpoint = critical_path(netlist, annotation)
    worst_slack = None
    if clock_period is not None:
        if clock_period <= 0:
            raise TimingError(f"clock period must be positive, got {clock_period}")
        worst_slack = clock_period - delay
    return TimingReport(
        design=netlist.name,
        clock_period=clock_period,
        critical_path_delay=delay,
        critical_path_gates=tuple(path),
        critical_endpoint=endpoint,
        worst_slack=worst_slack,
        output_arrivals={net: arrival[net] for net in netlist.outputs},
    )
