"""Extraction of timing errors from timing-simulation results.

A timing simulation of a two-vector transition produces, for every
primary output bit, the value latched at the clock edge (possibly stale)
and the fully settled value.  :class:`TimingErrorTrace` packages a whole
trace of such cycles in word and bit form, and derives the quantities the
rest of the library consumes: per-bit timing classes (for the prediction
model), silver output words (for the error-combination flow) and per-bit
error rates (for the Fig. 10 distribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import AnalysisError
from repro.utils.bitops import extract_bits_matrix


@dataclass(frozen=True)
class TimingErrorTrace:
    """Timing-simulation outcome for a trace of input transitions.

    Attributes
    ----------
    clock_period:
        Sampling period used by the simulation (seconds).
    sampled_words:
        Output word latched at the clock edge for each cycle (the *silver*
        value of the overclocked circuit).
    settled_words:
        Output word after the circuit fully settles (the *golden* value of
        the properly clocked circuit).
    output_width:
        Number of output bits (adder width + 1).
    """

    clock_period: float
    sampled_words: np.ndarray
    settled_words: np.ndarray
    output_width: int

    def __post_init__(self) -> None:
        if self.sampled_words.shape != self.settled_words.shape:
            raise AnalysisError("sampled and settled word arrays must have the same shape")

    @property
    def cycles(self) -> int:
        """Number of simulated transitions."""
        return int(self.sampled_words.shape[0])

    # ------------------------------------------------------------------ #
    # Bit-level views
    # ------------------------------------------------------------------ #
    def _bit_matrices(self) -> tuple:
        """Memoized (sampled, settled, error) bit matrices.

        Scoring calls the bit views several times per trace (error rates,
        timing classes, feature extraction); the extraction is recomputed
        work with an identical result every time, so it is derived once
        and kept on the instance.  The matrices are marked read-only —
        they are shared state now — and the memo never pickles
        (:meth:`__getstate__`), keeping cached/shipped traces lean.
        """
        cached = getattr(self, "_bits_cache", None)
        if cached is None:
            sampled = extract_bits_matrix(self.sampled_words, self.output_width)
            settled = extract_bits_matrix(self.settled_words, self.output_width)
            errors = (sampled != settled).astype(np.uint8)
            for matrix in (sampled, settled, errors):
                matrix.setflags(write=False)
            cached = (sampled, settled, errors)
            object.__setattr__(self, "_bits_cache", cached)
        return cached

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_bits_cache", None)
        return state

    def sampled_bits(self) -> np.ndarray:
        """0/1 matrix of shape (cycles, output_width) of latched output bits."""
        return self._bit_matrices()[0]

    def settled_bits(self) -> np.ndarray:
        """0/1 matrix of the settled (error-free at this abstraction) output bits."""
        return self._bit_matrices()[1]

    def error_bits(self) -> np.ndarray:
        """0/1 matrix marking bits whose latched value differs from the settled one."""
        return self._bit_matrices()[2]

    def timing_classes(self) -> np.ndarray:
        """Timing classes per the paper: 1 = timing-correct, 0 = timing-erroneous."""
        return (1 - self.error_bits()).astype(np.uint8)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def bit_error_rate(self) -> np.ndarray:
        """Per-bit-position fraction of cycles with a timing error (Fig. 10 series)."""
        if self.cycles == 0:
            return np.zeros(self.output_width)
        return self.error_bits().mean(axis=0)

    def cycle_error_rate(self) -> float:
        """Fraction of cycles in which at least one output bit is wrong."""
        if self.cycles == 0:
            return 0.0
        return float(np.mean(np.any(self.error_bits(), axis=1)))

    def arithmetic_errors(self) -> np.ndarray:
        """Signed arithmetic timing error (sampled minus settled) per cycle."""
        return self.sampled_words.astype(np.int64) - self.settled_words.astype(np.int64)


def extract_timing_errors(sampled_words: np.ndarray, settled_words: np.ndarray,
                          output_width: int, clock_period: float) -> TimingErrorTrace:
    """Bundle raw simulation outputs into a :class:`TimingErrorTrace`."""
    sampled = np.asarray(sampled_words, dtype=np.uint64)
    settled = np.asarray(settled_words, dtype=np.uint64)
    return TimingErrorTrace(clock_period=clock_period, sampled_words=sampled,
                            settled_words=settled, output_width=output_width)
