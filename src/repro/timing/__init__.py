"""Timing substrate: static analysis, timing simulation, clocking helpers.

* :mod:`~repro.timing.sta` — static timing analysis (arrival/required
  times, slack, critical path) over a delay-annotated netlist.
* :mod:`~repro.timing.fast_sim` — vectorised two-vector arrival-time
  simulation used for large overclocking sweeps.
* :mod:`~repro.timing.event_sim` — event-driven (transport-delay)
  gate-level simulator used as the reference model and for glitch-aware
  studies.
* :mod:`~repro.timing.operands` — word-level operand expansion shared by
  both simulators.
* :mod:`~repro.timing.clocking` — clock plans and Clock-Period-Reduction
  (CPR) helpers.
* :mod:`~repro.timing.errors` — extraction of per-bit and word-level
  timing errors from simulation results.
"""

from repro.timing.clocking import ClockPlan, cpr_to_period, period_to_cpr
from repro.timing.errors import TimingErrorTrace, extract_timing_errors
from repro.timing.event_sim import EventDrivenSimulator
from repro.timing.fast_sim import FastTimingSimulator
from repro.timing.operands import expand_operand_traces
from repro.timing.sta import TimingReport, analyze_timing, arrival_times, critical_path, gate_slacks

__all__ = [
    "ClockPlan",
    "cpr_to_period",
    "period_to_cpr",
    "TimingErrorTrace",
    "extract_timing_errors",
    "EventDrivenSimulator",
    "FastTimingSimulator",
    "expand_operand_traces",
    "TimingReport",
    "analyze_timing",
    "arrival_times",
    "critical_path",
    "gate_slacks",
]
