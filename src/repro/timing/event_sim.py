"""Event-driven (transport-delay) gate-level timing simulator.

This is the reference timing model of the library: on an input transition
events are propagated through the netlist with per-gate transport delays,
so glitches and multiple transitions per net are represented.  Sampling a
primary output at the clock period returns whatever value the net holds
at that instant.

The simulator is implemented with a plain event queue in Python and is
therefore orders of magnitude slower than
:class:`repro.timing.fast_sim.FastTimingSimulator`; it is used for unit
tests, for validating the fast simulator (ablation A2 in DESIGN.md) and
for small glitch-sensitivity studies.  Trace runs lean on the compiled
bit-packed logic engine where they can: the settled values that seed
every transition's initial state are computed once for the whole trace,
64 cycles per word, before the per-cycle event loops start.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.circuit.netlist import Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.exceptions import SimulationError
from repro.timing.errors import TimingErrorTrace
from repro.timing.operands import expand_operand_traces, trace_length


@dataclass
class Waveform:
    """Sequence of (time, value) changes of one net within a cycle."""

    changes: List[Tuple[float, int]]

    def value_at(self, time: float) -> int:
        """Value of the net at ``time`` (changes at exactly ``time`` are visible).

        Change lists are time-sorted, so the lookup bisects instead of
        scanning — this is called once per output net, clock period and
        cycle when sampling a trace.
        """
        index = bisect_right(self.changes, (time, float("inf")))
        return self.changes[index - 1][1]

    @property
    def final_value(self) -> int:
        """Settled value after all events."""
        return self.changes[-1][1]

    @property
    def transition_count(self) -> int:
        """Number of actual value changes (excluding the initial value)."""
        return sum(1 for i in range(1, len(self.changes))
                   if self.changes[i][1] != self.changes[i - 1][1])


#: Plain-Python boolean functions per cell, used by the event loop (the
#: vectorised NumPy cell models are too slow for per-event evaluation).
_SCALAR_CELL_FUNCTIONS = {
    "INV": lambda a: 1 - a,
    "BUF": lambda a: a,
    "AND2": lambda a, b: a & b,
    "OR2": lambda a, b: a | b,
    "NAND2": lambda a, b: 1 - (a & b),
    "NOR2": lambda a, b: 1 - (a | b),
    "XOR2": lambda a, b: a ^ b,
    "XNOR2": lambda a, b: 1 - (a ^ b),
    "AND3": lambda a, b, c: a & b & c,
    "OR3": lambda a, b, c: a | b | c,
    "MUX2": lambda d0, d1, sel: d1 if sel else d0,
    "MAJ3": lambda a, b, c: (a & b) | (a & c) | (b & c),
    "AOI21": lambda a, b, c: 1 - ((a & b) | c),
    "OAI21": lambda a, b, c: 1 - ((a | b) & c),
}


class EventDrivenSimulator:
    """Transport-delay event-driven simulator over a delay-annotated netlist."""

    def __init__(self, netlist: Netlist, annotation: DelayAnnotation) -> None:
        annotation.validate_against(netlist)
        self.netlist = netlist
        self.annotation = annotation
        self._fanout = netlist.fanout_map()
        self._delays = {gate.name: annotation.delay_of(gate.name) for gate in netlist.gates}
        # Per-gate scalar evaluators and per-net fanout closures for the hot loop.
        self._gate_eval = {}
        for gate in netlist.gates:
            try:
                self._gate_eval[gate.name] = _SCALAR_CELL_FUNCTIONS[gate.cell]
            except KeyError:
                raise SimulationError(
                    f"no scalar model for cell {gate.cell!r} (gate {gate.name!r})") from None

    # ------------------------------------------------------------------ #
    def simulate_transition(self, previous_inputs: Mapping[str, int],
                            current_inputs: Mapping[str, int],
                            initial_values: Mapping[str, int] = None) -> Dict[str, Waveform]:
        """Simulate one input transition and return the waveform of every net.

        ``initial_values`` may supply pre-computed settled values for the
        previous input vector (as produced by a vectorised logic
        evaluation); otherwise they are computed here.
        """
        if initial_values is None:
            initial_values = self._settled_values(previous_inputs)

        waveforms: Dict[str, Waveform] = {
            net: Waveform(changes=[(-np.inf, int(value))])
            for net, value in initial_values.items()
        }
        current = dict(initial_values)

        # Event queue of (time, sequence, net, value); the sequence breaks ties
        # deterministically in insertion order.
        queue: List[Tuple[float, int, str, int]] = []
        sequence = 0
        for net in self.netlist.inputs:
            if net not in current_inputs:
                raise SimulationError(f"missing value for primary input {net!r}")
            new_value = int(current_inputs[net]) & 1
            if new_value != current[net]:
                heapq.heappush(queue, (0.0, sequence, net, new_value))
                sequence += 1

        fanout = self._fanout
        delays = self._delays
        evaluators = self._gate_eval
        while queue:
            time, _, net, value = heapq.heappop(queue)
            if current[net] == value:
                continue
            current[net] = value
            waveforms[net].changes.append((time, value))
            for gate in fanout[net]:
                output_value = evaluators[gate.name](*[current[n] for n in gate.inputs])
                heapq.heappush(queue, (time + delays[gate.name], sequence,
                                       gate.output, output_value))
                sequence += 1

        return waveforms

    def sample_outputs(self, waveforms: Mapping[str, Waveform], clock_period: float,
                       output_bus: str = "S") -> int:
        """Word latched at ``clock_period`` on the given output bus."""
        nets = self._output_nets(output_bus)
        word = 0
        for position, net in enumerate(nets):
            word |= waveforms[net].value_at(clock_period) << position
        return word

    def settled_outputs(self, waveforms: Mapping[str, Waveform], output_bus: str = "S") -> int:
        """Fully settled word on the given output bus."""
        nets = self._output_nets(output_bus)
        word = 0
        for position, net in enumerate(nets):
            word |= waveforms[net].final_value << position
        return word

    # ------------------------------------------------------------------ #
    def run_trace(self, operands: Mapping[str, np.ndarray], clock_period: float,
                  output_bus: str = "S") -> TimingErrorTrace:
        """Simulate a word-level operand trace (one transition per cycle)."""
        return self.run_trace_multi(operands, [clock_period], output_bus)[clock_period]

    def run_trace_multi(self, operands: Mapping[str, np.ndarray],
                        clock_periods: Sequence[float], output_bus: str = "S"
                        ) -> Dict[float, TimingErrorTrace]:
        """Simulate one operand trace sampled at several clock periods.

        The event-driven waveforms of each transition are computed once and
        sampled at every requested clock period, so sweeping CPR levels
        costs a single simulation pass.
        """
        for clk in clock_periods:
            if clk <= 0:
                raise SimulationError(f"clock period must be positive, got {clk}")
        bit_traces = expand_operand_traces(self.netlist, operands)
        total = trace_length(bit_traces)
        if total < 2:
            raise SimulationError("a timing trace needs at least two input vectors")
        vectors = [{net: int(trace[index]) for net, trace in bit_traces.items()}
                   for index in range(total)]
        nets = self._output_nets(output_bus)
        transitions = total - 1
        sampled = {clk: np.zeros(transitions, dtype=np.uint64) for clk in clock_periods}
        settled = np.zeros(transitions, dtype=np.uint64)

        # Settled values of every net for every vector, computed once by the
        # packed engine (64 cycles per word); they seed each transition's
        # initial state without a per-cycle logic pass.
        all_values = self.netlist.evaluate(bit_traces)
        net_names = list(all_values.keys())
        value_matrix = np.vstack([
            np.broadcast_to(np.asarray(all_values[net], dtype=np.uint8), (total,))
            for net in net_names])

        for index in range(1, total):
            initial = dict(zip(net_names, value_matrix[:, index - 1].tolist()))
            waveforms = self.simulate_transition(vectors[index - 1], vectors[index],
                                                 initial_values=initial)
            settled[index - 1] = self.settled_outputs(waveforms, output_bus)
            for clk in clock_periods:
                sampled[clk][index - 1] = self.sample_outputs(waveforms, clk, output_bus)

        return {clk: TimingErrorTrace(clock_period=clk, sampled_words=sampled[clk],
                                      settled_words=settled, output_width=len(nets))
                for clk in clock_periods}

    # ------------------------------------------------------------------ #
    def _settled_values(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        values = self.netlist.evaluate({net: np.asarray(int(inputs[net]) & 1, dtype=np.uint8)
                                        for net in self.netlist.inputs})
        return {net: int(np.asarray(value)) for net, value in values.items()}

    def _output_nets(self, output_bus: str) -> Sequence[str]:
        if output_bus not in self.netlist.buses:
            raise SimulationError(f"netlist {self.netlist.name!r} has no bus {output_bus!r}")
        return self.netlist.buses[output_bus]
