"""Vectorised two-vector timing simulation.

For every input transition ``x[t-1] -> x[t]`` the simulator computes, for
every net, the settled value before and after the transition and the
*arrival time* of its final transition (using per-gate transport delays
from the delay annotation).  An output bit whose arrival time exceeds the
sampling clock period latches its stale (previous) value — exactly the
timing-error mechanism the paper measures with SDF-annotated gate-level
simulation.

The simplification with respect to the event-driven reference simulator
(:mod:`repro.timing.event_sim`) is that a net whose settled value does not
change is considered stable (glitches are ignored).  The two simulators
are compared on small designs by the test suite and an ablation
benchmark; the agreement on error statistics is close because arithmetic
circuits driven by registered inputs glitch mostly on nets that also make
a final transition.

The payoff is speed: all cycles are simulated simultaneously with NumPy,
levelised over the netlist, which is what makes trace-level
characterisation of twelve designs at three clock periods tractable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.circuit.netlist import CONST0, CONST1, Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.exceptions import SimulationError
from repro.timing.errors import TimingErrorTrace

#: Arrival-time value used for nets that do not switch in a cycle.
STABLE = -np.inf


class FastTimingSimulator:
    """Levelised, vectorised timing simulator for a delay-annotated netlist."""

    def __init__(self, netlist: Netlist, annotation: DelayAnnotation) -> None:
        annotation.validate_against(netlist)
        self.netlist = netlist
        self.annotation = annotation
        self._order = netlist.topological_order()
        self._delays = {gate.name: annotation.delay_of(gate.name) for gate in self._order}

    # ------------------------------------------------------------------ #
    # Core transition simulation
    # ------------------------------------------------------------------ #
    def simulate_transitions(self, previous_inputs: Mapping[str, np.ndarray],
                             current_inputs: Mapping[str, np.ndarray]
                             ) -> Dict[str, Dict[str, np.ndarray]]:
        """Simulate a batch of input transitions.

        ``previous_inputs`` and ``current_inputs`` map every primary input
        net to equal-length 0/1 arrays (one entry per cycle).  Returns a
        dict with per-output-net ``old`` values, ``new`` values and
        ``arrival`` times.
        """
        old_values = self.netlist.evaluate(previous_inputs)
        new_values = self.netlist.evaluate(current_inputs)

        arrival: Dict[str, np.ndarray] = {}
        shape = self._stimulus_shape(current_inputs)
        for net in self.netlist.inputs:
            old = np.broadcast_to(np.asarray(old_values[net]), shape)
            new = np.broadcast_to(np.asarray(new_values[net]), shape)
            arrival[net] = np.where(old != new, 0.0, STABLE)
        zeros = np.full(shape, STABLE)
        arrival[CONST0] = zeros
        arrival[CONST1] = zeros

        for gate in self._order:
            delay = self._delays[gate.name]
            input_arrival = arrival[gate.inputs[0]]
            for net in gate.inputs[1:]:
                input_arrival = np.maximum(input_arrival, arrival[net])
            old = np.broadcast_to(np.asarray(old_values[gate.output]), shape)
            new = np.broadcast_to(np.asarray(new_values[gate.output]), shape)
            changed = old != new
            arrival[gate.output] = np.where(changed, input_arrival + delay, STABLE)

        results: Dict[str, Dict[str, np.ndarray]] = {}
        for net in self.netlist.outputs:
            results[net] = {
                "old": np.broadcast_to(np.asarray(old_values[net], dtype=np.uint8), shape),
                "new": np.broadcast_to(np.asarray(new_values[net], dtype=np.uint8), shape),
                "arrival": arrival[net],
            }
        return results

    # ------------------------------------------------------------------ #
    # Word-level trace simulation
    # ------------------------------------------------------------------ #
    def run_trace(self, operands: Mapping[str, np.ndarray], clock_period: float,
                  output_bus: str = "S", chunk_size: int = 4096) -> TimingErrorTrace:
        """Simulate a word-level operand trace at one clock period."""
        traces = self.run_trace_multi(operands, [clock_period], output_bus=output_bus,
                                      chunk_size=chunk_size)
        return traces[clock_period]

    def run_trace_multi(self, operands: Mapping[str, np.ndarray],
                        clock_periods: Sequence[float], output_bus: str = "S",
                        chunk_size: int = 4096) -> Dict[float, TimingErrorTrace]:
        """Simulate one operand trace sampled at several clock periods.

        ``operands`` maps bus names (and optionally scalar input nets) to
        arrays of length ``T``; cycle ``t`` applies the transition from
        vector ``t-1`` to vector ``t``, so ``T - 1`` transitions are
        simulated.  The expensive arrival-time computation is shared
        between all requested clock periods.
        """
        for clk in clock_periods:
            if clk <= 0:
                raise SimulationError(f"clock period must be positive, got {clk}")
        input_trace = self._expand_operands(operands)
        total = self._trace_length(input_trace)
        if total < 2:
            raise SimulationError("a timing trace needs at least two input vectors")

        output_nets = self._output_nets(output_bus)
        transitions = total - 1
        sampled = {clk: np.zeros(transitions, dtype=np.uint64) for clk in clock_periods}
        settled = np.zeros(transitions, dtype=np.uint64)

        for start in range(0, transitions, chunk_size):
            stop = min(start + chunk_size, transitions)
            previous = {net: values[start:stop] for net, values in input_trace.items()}
            current = {net: values[start + 1:stop + 1] for net, values in input_trace.items()}
            results = self.simulate_transitions(previous, current)
            chunk_settled = np.zeros(stop - start, dtype=np.uint64)
            for position, net in enumerate(output_nets):
                chunk_settled |= results[net]["new"].astype(np.uint64) << np.uint64(position)
            settled[start:stop] = chunk_settled
            for clk in clock_periods:
                chunk_sampled = np.zeros(stop - start, dtype=np.uint64)
                for position, net in enumerate(output_nets):
                    late = results[net]["arrival"] > clk
                    bit = np.where(late, results[net]["old"], results[net]["new"])
                    chunk_sampled |= bit.astype(np.uint64) << np.uint64(position)
                sampled[clk][start:stop] = chunk_sampled

        return {clk: TimingErrorTrace(clock_period=clk, sampled_words=sampled[clk],
                                      settled_words=settled,
                                      output_width=len(output_nets))
                for clk in clock_periods}

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _output_nets(self, output_bus: str) -> List[str]:
        if output_bus in self.netlist.buses:
            return self.netlist.buses[output_bus]
        raise SimulationError(f"netlist {self.netlist.name!r} has no bus {output_bus!r}")

    def _expand_operands(self, operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Expand word-level buses / scalar nets into per-net bit arrays."""
        expanded: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for name, values in operands.items():
            values = np.asarray(values)
            if name in self.netlist.buses:
                bits = self.netlist.encode_bus(name, values.astype(np.uint64))
                expanded.update(bits)
            elif name in self.netlist.inputs:
                expanded[name] = values.astype(np.uint8)
            else:
                raise SimulationError(f"unknown operand {name!r}: not a bus or input net")
            current_length = int(np.asarray(values).shape[0])
            if length is None:
                length = current_length
            elif current_length != length:
                raise SimulationError("all operand traces must have the same length")
        missing = [net for net in self.netlist.inputs if net not in expanded]
        if missing:
            raise SimulationError(f"operand trace does not drive inputs {missing}")
        return expanded

    @staticmethod
    def _trace_length(input_trace: Mapping[str, np.ndarray]) -> int:
        lengths = {int(values.shape[0]) for values in input_trace.values()}
        if len(lengths) != 1:
            raise SimulationError("inconsistent trace lengths after expansion")
        return lengths.pop()

    def _stimulus_shape(self, inputs: Mapping[str, np.ndarray]) -> tuple:
        for net in self.netlist.inputs:
            value = np.asarray(inputs[net])
            if value.ndim > 0:
                return value.shape
        return ()
