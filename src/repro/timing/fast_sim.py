"""Vectorised two-vector timing simulation.

For every input transition ``x[t-1] -> x[t]`` the simulator computes, for
every net, the settled value before and after the transition and the
*arrival time* of its final transition (using per-gate transport delays
from the delay annotation).  An output bit whose arrival time exceeds the
sampling clock period latches its stale (previous) value — exactly the
timing-error mechanism the paper measures with SDF-annotated gate-level
simulation.

The simplification with respect to the event-driven reference simulator
(:mod:`repro.timing.event_sim`) is that a net whose settled value does not
change is considered stable (glitches are ignored).  The two simulators
are compared on small designs by the test suite and an ablation
benchmark; the agreement on error statistics is close because arithmetic
circuits driven by registered inputs glitch mostly on nets that also make
a final transition.

Two execution engines implement the same model, bit-exactly:

``"compiled"`` (default when available)
    The packed engine: settled values come from the compiled bit-packed
    logic program (64 cycles per ``uint64`` word) and lateness is
    resolved by the arrival-threshold masks of
    :class:`~repro.circuit.compiled.PackedTimingProgram`, so the entire
    trace is simulated with bitwise word operations and no per-cycle
    float arithmetic.

``"reference"``
    The dense float path: per-gate ``uint8`` logic evaluation and a
    float64 arrival array per net and cycle.  It is kept as the
    specification of the model, as the fallback for netlists or delay
    annotations the packed engine cannot compile (e.g. heavy
    per-instance delay variation), and as the baseline the throughput
    benchmark measures the compiled engine against.

``engine="auto"`` (the default) picks ``"compiled"`` when the netlist and
annotation compile, and silently falls back to ``"reference"`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.circuit.compiled import PackedTimingProgram, rows_to_words, transition_chunks
from repro.circuit.netlist import CONST0, CONST1, Netlist
from repro.circuit.sdf import DelayAnnotation
from repro.exceptions import CompilationError, SimulationError
from repro.timing.errors import TimingErrorTrace
from repro.timing.operands import (
    expand_operand_traces,
    expand_operand_traces_interned,
    trace_length,
)
from repro.utils.phases import phase

#: Arrival-time value used for nets that do not switch in a cycle.
STABLE = -np.inf

#: Engine identifiers accepted by :class:`FastTimingSimulator`.
ENGINES = ("auto", "compiled", "reference")

#: Target size (bytes) of the packed mask matrix per chunk; keeps the
#: threshold propagation cache-resident on typical designs.
_PACKED_CHUNK_BYTES = 8 << 20


@dataclass
class BatchedTraceRun:
    """Result of one multi-trace batched simulation.

    ``timing`` holds one ``{clock_period: TimingErrorTrace}`` dict per
    submitted trace, in submission order — exactly what the per-trace
    :meth:`FastTimingSimulator.run_trace_multi` would have returned.
    ``settled_values`` (present when requested) holds per trace the
    settled output-bus word of **every** input vector — bit-identical to
    :meth:`~repro.circuit.netlist.Netlist.compute_words` on that trace,
    derived from the same packed evaluation that fed the timing run, so
    golden cross-checks need no second logic pass.
    """

    timing: List[Dict[float, TimingErrorTrace]]
    settled_values: Optional[List[np.ndarray]] = None


class FastTimingSimulator:
    """Levelised, vectorised timing simulator for a delay-annotated netlist.

    ``clock_periods`` optionally specialises the compiled timing program
    to a fixed clock plan: only the arrival-threshold cone those clocks
    sample is compiled (typically an order of magnitude smaller), and
    simulating any *other* clock period raises instead of answering.
    The execution planner builds one specialised simulator per
    (design, clock plan) group; general-purpose callers leave it unset.
    """

    def __init__(self, netlist: Netlist, annotation: DelayAnnotation,
                 engine: str = "auto",
                 clock_periods: Optional[Sequence[float]] = None) -> None:
        if engine not in ENGINES:
            raise SimulationError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        annotation.validate_against(netlist)
        self.netlist = netlist
        self.annotation = annotation
        self._order = netlist.topological_order()
        self._delays = {gate.name: annotation.delay_of(gate.name) for gate in self._order}

        self._timing_program: Optional[PackedTimingProgram] = None
        if engine in ("auto", "compiled"):
            program = netlist.compiled()
            if program is not None:
                try:
                    self._timing_program = PackedTimingProgram(
                        program, annotation, clock_periods=clock_periods)
                except CompilationError:
                    self._timing_program = None
            if self._timing_program is None and engine == "compiled":
                raise SimulationError(
                    f"netlist {netlist.name!r} cannot be lowered to the compiled "
                    "packed timing engine; use engine='auto' or 'reference'")
        self.engine = "compiled" if self._timing_program is not None else "reference"
        # When auto falls back to dense timing, logic evaluation may still
        # use the compiled tier; an explicit "reference" request keeps the
        # whole pipeline on the seed algorithm (the benchmark baseline).
        self._dense_eval_engine = "reference" if engine == "reference" else "auto"

    # ------------------------------------------------------------------ #
    # Core transition simulation (dense reference model)
    # ------------------------------------------------------------------ #
    def simulate_transitions(self, previous_inputs: Mapping[str, np.ndarray],
                             current_inputs: Mapping[str, np.ndarray]
                             ) -> Dict[str, Dict[str, np.ndarray]]:
        """Simulate a batch of input transitions with the dense model.

        ``previous_inputs`` and ``current_inputs`` map every primary input
        net to equal-length 0/1 arrays (one entry per cycle).  Returns a
        dict with per-output-net ``old`` values, ``new`` values and
        ``arrival`` times.  (Logic values use the fastest available
        evaluation tier; arrival times are dense float64 — this method is
        the executable specification of the timing model.)
        """
        return self._dense_transitions(previous_inputs, current_inputs, eval_engine="auto")

    def _dense_transitions(self, previous_inputs: Mapping[str, np.ndarray],
                           current_inputs: Mapping[str, np.ndarray],
                           eval_engine: str) -> Dict[str, Dict[str, np.ndarray]]:
        old_values = self.netlist.evaluate(previous_inputs, engine=eval_engine)
        new_values = self.netlist.evaluate(current_inputs, engine=eval_engine)

        arrival: Dict[str, np.ndarray] = {}
        shape = self._stimulus_shape(current_inputs)
        for net in self.netlist.inputs:
            old = np.broadcast_to(np.asarray(old_values[net]), shape)
            new = np.broadcast_to(np.asarray(new_values[net]), shape)
            arrival[net] = np.where(old != new, 0.0, STABLE)
        zeros = np.full(shape, STABLE)
        arrival[CONST0] = zeros
        arrival[CONST1] = zeros

        for gate in self._order:
            delay = self._delays[gate.name]
            input_arrival = arrival[gate.inputs[0]]
            for net in gate.inputs[1:]:
                input_arrival = np.maximum(input_arrival, arrival[net])
            old = np.broadcast_to(np.asarray(old_values[gate.output]), shape)
            new = np.broadcast_to(np.asarray(new_values[gate.output]), shape)
            changed = old != new
            arrival[gate.output] = np.where(changed, input_arrival + delay, STABLE)

        results: Dict[str, Dict[str, np.ndarray]] = {}
        for net in self.netlist.outputs:
            results[net] = {
                "old": np.broadcast_to(np.asarray(old_values[net], dtype=np.uint8), shape),
                "new": np.broadcast_to(np.asarray(new_values[net], dtype=np.uint8), shape),
                "arrival": arrival[net],
            }
        return results

    # ------------------------------------------------------------------ #
    # Word-level trace simulation
    # ------------------------------------------------------------------ #
    def run_trace(self, operands: Mapping[str, np.ndarray], clock_period: float,
                  output_bus: str = "S", chunk_size: int = 4096) -> TimingErrorTrace:
        """Simulate a word-level operand trace at one clock period."""
        traces = self.run_trace_multi(operands, [clock_period], output_bus=output_bus,
                                      chunk_size=chunk_size)
        return traces[clock_period]

    def run_trace_multi(self, operands: Mapping[str, np.ndarray],
                        clock_periods: Sequence[float], output_bus: str = "S",
                        chunk_size: int = 4096) -> Dict[float, TimingErrorTrace]:
        """Simulate one operand trace sampled at several clock periods.

        ``operands`` maps bus names (and optionally scalar input nets) to
        arrays of length ``T``; cycle ``t`` applies the transition from
        vector ``t-1`` to vector ``t``, so ``T - 1`` transitions are
        simulated.  The expensive lateness computation is shared between
        all requested clock periods.  ``chunk_size`` (transitions per
        batch) applies to the dense reference engine; the compiled
        engine chooses its own packed chunking to keep the mask matrix
        cache-resident.
        """
        for clk in clock_periods:
            if clk <= 0:
                raise SimulationError(f"clock period must be positive, got {clk}")
        input_trace = expand_operand_traces(self.netlist, operands)
        total = trace_length(input_trace)
        if total < 2:
            raise SimulationError("a timing trace needs at least two input vectors")
        output_nets = self._output_nets(output_bus)
        if not clock_periods:
            return {}

        if self.engine == "compiled":
            return self._run_trace_multi_packed(input_trace, total, clock_periods,
                                                output_nets)
        return self._run_trace_multi_dense(input_trace, total, clock_periods,
                                           output_nets, chunk_size)

    def run_traces_multi(self, operand_traces: Sequence[Mapping[str, np.ndarray]],
                         clock_periods: Sequence[float], output_bus: str = "S",
                         include_settled_values: bool = False,
                         chunk_size: int = 4096) -> BatchedTraceRun:
        """Simulate several operand traces in one batched pass.

        On the compiled engine the traces are stacked into a
        ``(traces, words)`` packed tensor and every gate batch, threshold
        batch and output decode runs as **one** NumPy dispatch covering
        the whole stack; traces may have ragged lengths (shorter traces
        are zero-padded to the stack and their padding discarded).  The
        per-trace results are bit-identical to calling
        :meth:`run_trace_multi` on each trace alone — packed words of
        different traces never mix.  On the dense reference engine the
        traces run one after the other (same results, no batching).

        ``include_settled_values`` additionally returns, per trace, the
        settled output word of every input vector — the gate-level
        golden reference — derived from the same evaluation.
        """
        for clk in clock_periods:
            if clk <= 0:
                raise SimulationError(f"clock period must be positive, got {clk}")
        output_nets = self._output_nets(output_bus)
        operand_traces = list(operand_traces)
        if not operand_traces:
            return BatchedTraceRun(
                timing=[], settled_values=[] if include_settled_values else None)
        with phase("pack"):
            input_traces = [expand_operand_traces_interned(self.netlist, operands)
                            for operands in operand_traces]
        totals = [trace_length(bits) for bits in input_traces]
        for total in totals:
            if total < 2:
                raise SimulationError("a timing trace needs at least two input vectors")
        if not clock_periods and not include_settled_values:
            return BatchedTraceRun(timing=[{} for _ in input_traces])

        if self.engine == "compiled":
            return self._run_traces_multi_packed(input_traces, totals, clock_periods,
                                                 output_nets, include_settled_values)
        timing = [self._run_trace_multi_dense(bits, total, clock_periods,
                                              output_nets, chunk_size)
                  for bits, total in zip(input_traces, totals)]
        settled_values = None
        if include_settled_values:
            settled_values = [
                self.netlist.compute_words(operands, output_bus,
                                           engine=self._dense_eval_engine)
                for operands in operand_traces]
        return BatchedTraceRun(timing=timing, settled_values=settled_values)

    # ------------------------------------------------------------------ #
    # Packed engine
    # ------------------------------------------------------------------ #
    def _run_trace_multi_packed(self, input_trace: Mapping[str, np.ndarray], total: int,
                                clock_periods: Sequence[float],
                                output_nets: List[str]) -> Dict[float, TimingErrorTrace]:
        timing = self._timing_program
        program = timing.program
        transitions = total - 1
        sampled = {clk: np.empty(transitions, dtype=np.uint64) for clk in clock_periods}
        settled = np.empty(transitions, dtype=np.uint64)
        late_rows = {clk: timing.late_rows(output_nets, clk) for clk in clock_periods}
        plan = timing.plan_for(np.concatenate(list(late_rows.values())))
        out_ids = np.array([program.net_id[net] for net in output_nets], dtype=np.int64)

        words_per_chunk = max(64, _PACKED_CHUNK_BYTES // (8 * timing.num_rows))
        for start, stop in transition_chunks(transitions, words_per_chunk * 64):
            count = stop - start
            old_values, new_values = program.evaluate_transitions(
                {net: trace[start:stop + 1] for net, trace in input_trace.items()}, count)
            masks = timing.run(old_values ^ new_values, plan=plan)

            old_rows = old_values[out_ids]
            new_rows = new_values[out_ids]
            diff_rows = old_rows ^ new_rows
            settled[start:stop] = rows_to_words(new_rows, count)
            for clk in clock_periods:
                late = masks[late_rows[clk]]
                sampled_rows = new_rows ^ (diff_rows & late)
                sampled[clk][start:stop] = rows_to_words(sampled_rows, count)

        return {clk: TimingErrorTrace(clock_period=clk, sampled_words=sampled[clk],
                                      settled_words=settled,
                                      output_width=len(output_nets))
                for clk in clock_periods}

    def _run_traces_multi_packed(self, input_traces: List[Mapping[str, np.ndarray]],
                                 totals: List[int], clock_periods: Sequence[float],
                                 output_nets: List[str],
                                 include_settled_values: bool) -> BatchedTraceRun:
        timing = self._timing_program
        program = timing.program
        count = len(input_traces)
        transitions = [total - 1 for total in totals]
        max_transitions = max(transitions)
        sampled = {clk: [np.empty(t, dtype=np.uint64) for t in transitions]
                   for clk in clock_periods}
        settled = [np.empty(t, dtype=np.uint64) for t in transitions]
        first_cycle = np.zeros(count, dtype=np.uint64)
        late_rows = {clk: timing.late_rows(output_nets, clk) for clk in clock_periods}
        roots = (np.concatenate(list(late_rows.values())) if late_rows
                 else np.empty(0, dtype=np.int64))
        plan = timing.plan_for(roots)
        out_ids = np.array([program.net_id[net] for net in output_nets],
                           dtype=np.int64)
        nets = list(input_traces[0])

        # Budget the chunk against everything a pass materialises per
        # packed word and trace: the mask matrix (num_rows), the stacked
        # value tensors (num_nets, old + new), and the decode
        # temporaries of rows_to_words — unpacked uint64 bit matrices of
        # ~64 word-equivalents per output bit, allocated per clock
        # period.  Clock-specialised programs shrink num_rows by an
        # order of magnitude; without the decode term the span would
        # grow to match and the decode temporaries would dwarf the
        # budget.
        per_word_rows = (timing.num_rows + 2 * program.num_nets
                         + 128 * max(len(output_nets), 1))
        words_per_chunk = max(
            64, _PACKED_CHUNK_BYTES // (8 * per_word_rows * count))
        for start, stop in transition_chunks(max_transitions, words_per_chunk * 64):
            span = stop - start
            with phase("pack"):
                # One stacked (traces, span + 1) 0/1 matrix per net; a
                # trace that ends inside the chunk is zero-padded — its
                # padded columns are evaluated but never decoded.
                stacked = {}
                for net in nets:
                    rows = np.zeros((count, span + 1), dtype=np.uint8)
                    for index, bits in enumerate(input_traces):
                        high = min(stop + 1, totals[index])
                        if high > start:
                            rows[index, :high - start] = bits[net][start:high]
                    stacked[net] = rows
            with phase("simulate"):
                old_values, new_values = program.evaluate_transitions_many(
                    stacked, span)
                masks = timing.run_many(old_values ^ new_values, plan=plan)

                old_rows = old_values[out_ids]
                new_rows = new_values[out_ids]
                diff_rows = old_rows ^ new_rows
                settled_chunk = rows_to_words(new_rows, span)
                for index in range(count):
                    valid = min(stop, transitions[index]) - start
                    if valid > 0:
                        settled[index][start:start + valid] = settled_chunk[index, :valid]
                if include_settled_values and start == 0:
                    # The settled word of input vector 0 is the "old"
                    # side of transition 0; every later vector's settled
                    # word is the "new" side of its transition.
                    first_cycle[:] = rows_to_words(old_rows[..., :1], 1)[:, 0]
                for clk in clock_periods:
                    late = masks[late_rows[clk]]
                    sampled_chunk = rows_to_words(new_rows ^ (diff_rows & late), span)
                    for index in range(count):
                        valid = min(stop, transitions[index]) - start
                        if valid > 0:
                            sampled[clk][index][start:start + valid] = \
                                sampled_chunk[index, :valid]

        timing_results = [
            {clk: TimingErrorTrace(clock_period=clk,
                                   sampled_words=sampled[clk][index],
                                   settled_words=settled[index],
                                   output_width=len(output_nets))
             for clk in clock_periods}
            for index in range(count)]
        settled_values = None
        if include_settled_values:
            settled_values = [
                np.concatenate([first_cycle[index:index + 1], settled[index]])
                for index in range(count)]
        return BatchedTraceRun(timing=timing_results, settled_values=settled_values)

    # ------------------------------------------------------------------ #
    # Dense reference engine
    # ------------------------------------------------------------------ #
    def _run_trace_multi_dense(self, input_trace: Mapping[str, np.ndarray], total: int,
                               clock_periods: Sequence[float], output_nets: List[str],
                               chunk_size: int) -> Dict[float, TimingErrorTrace]:
        transitions = total - 1
        sampled = {clk: np.zeros(transitions, dtype=np.uint64) for clk in clock_periods}
        settled = np.zeros(transitions, dtype=np.uint64)

        for start in range(0, transitions, chunk_size):
            stop = min(start + chunk_size, transitions)
            previous = {net: values[start:stop] for net, values in input_trace.items()}
            current = {net: values[start + 1:stop + 1] for net, values in input_trace.items()}
            results = self._dense_transitions(previous, current,
                                              eval_engine=self._dense_eval_engine)
            chunk_settled = np.zeros(stop - start, dtype=np.uint64)
            for position, net in enumerate(output_nets):
                chunk_settled |= results[net]["new"].astype(np.uint64) << np.uint64(position)
            settled[start:stop] = chunk_settled
            for clk in clock_periods:
                chunk_sampled = np.zeros(stop - start, dtype=np.uint64)
                for position, net in enumerate(output_nets):
                    late = results[net]["arrival"] > clk
                    bit = np.where(late, results[net]["old"], results[net]["new"])
                    chunk_sampled |= bit.astype(np.uint64) << np.uint64(position)
                sampled[clk][start:stop] = chunk_sampled

        return {clk: TimingErrorTrace(clock_period=clk, sampled_words=sampled[clk],
                                      settled_words=settled,
                                      output_width=len(output_nets))
                for clk in clock_periods}

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _output_nets(self, output_bus: str) -> List[str]:
        if output_bus in self.netlist.buses:
            return self.netlist.buses[output_bus]
        raise SimulationError(f"netlist {self.netlist.name!r} has no bus {output_bus!r}")

    def _stimulus_shape(self, inputs: Mapping[str, np.ndarray]) -> tuple:
        for net in self.netlist.inputs:
            value = np.asarray(inputs[net])
            if value.ndim > 0:
                return value.shape
        return ()
