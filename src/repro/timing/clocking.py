"""Clock plans and Clock-Period-Reduction (CPR) helpers.

The paper synthesizes every design at a safe clock period of 0.3 ns
(3.3 GHz) and then overclocks by reducing the period by 5, 10 and 15 %
(0.285, 0.27 and 0.255 ns).  :class:`ClockPlan` captures that sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.exceptions import TimingError

#: The paper's safe clock period in seconds (0.3 ns, i.e. 3.3 GHz).
PAPER_SAFE_PERIOD = 0.3e-9

#: The paper's three clock-period reductions (fractions of the safe period).
PAPER_CPR_LEVELS = (0.05, 0.10, 0.15)


def cpr_to_period(safe_period: float, cpr: float) -> float:
    """Clock period obtained by reducing ``safe_period`` by the fraction ``cpr``."""
    if safe_period <= 0:
        raise TimingError(f"safe period must be positive, got {safe_period}")
    if not 0.0 <= cpr < 1.0:
        raise TimingError(f"clock-period reduction must lie in [0, 1), got {cpr}")
    return safe_period * (1.0 - cpr)


def period_to_cpr(safe_period: float, period: float) -> float:
    """Clock-period reduction corresponding to an over-clocked ``period``."""
    if safe_period <= 0 or period <= 0:
        raise TimingError("periods must be positive")
    if period > safe_period + 1e-18:
        raise TimingError(
            f"over-clocked period {period} exceeds the safe period {safe_period}")
    return 1.0 - period / safe_period


@dataclass(frozen=True)
class ClockPlan:
    """A safe clock period plus a set of overclocking levels.

    The default plan reproduces the paper: 0.3 ns safe period with 5, 10
    and 15 % CPR.
    """

    safe_period: float = PAPER_SAFE_PERIOD
    cpr_levels: Tuple[float, ...] = PAPER_CPR_LEVELS

    def __post_init__(self) -> None:
        if self.safe_period <= 0:
            raise TimingError(f"safe period must be positive, got {self.safe_period}")
        for cpr in self.cpr_levels:
            if not 0.0 <= cpr < 1.0:
                raise TimingError(f"CPR levels must lie in [0, 1), got {cpr}")

    @property
    def periods(self) -> Tuple[float, ...]:
        """Over-clocked periods corresponding to each CPR level."""
        return tuple(cpr_to_period(self.safe_period, cpr) for cpr in self.cpr_levels)

    def period_for(self, cpr: float) -> float:
        """Over-clocked period for an arbitrary CPR level."""
        return cpr_to_period(self.safe_period, cpr)

    def labels(self) -> List[str]:
        """Human-readable labels for each CPR level (e.g. ``"5%"``)."""
        return [f"{cpr * 100:g}%" for cpr in self.cpr_levels]

    def items(self) -> List[Tuple[float, float]]:
        """List of ``(cpr, period)`` pairs in sweep order."""
        return list(zip(self.cpr_levels, self.periods))

    @classmethod
    def paper(cls) -> "ClockPlan":
        """The plan used throughout the paper's evaluation."""
        return cls()
