"""Pareto ranking of sweep points: accuracy vs. circuit cost vs. clock.

The sweep scores every (design x workload x CPR) point; this module
aggregates those into per-(design x CPR) candidates (averaging the error
axes across workloads, the cost axes being workload-independent),
extracts the Pareto frontier under minimisation objectives, and
annotates each frontier point with the nearest hand-picked paper
design, so the report shows where the paper's eleven quadruples sit in
the larger space.

The default objectives span five axes: exactness *guarantee* (the
analytic :attr:`~repro.core.config.ISAConfig.is_provably_exact`
property — a design whose measured error happens to be zero on one
finite workload is not the same quality as one that can never err),
measured joint RMS relative error, gate count, the delay-sum area
proxy, and clock period.  Both cost axes matter: speculative designs
trade fewer gates for wider (slower, larger-area) cells after sizing,
so gate count and area rank them differently.

Dominance is the standard weak-dominance rule: ``a`` dominates ``b``
when ``a`` is no worse on every objective and strictly better on at
least one.  The exact baseline at the safe clock period has zero
measured *and* guaranteed error, so it anchors every frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import AnalysisError
from repro.experiments.designs import PAPER_QUADRUPLES
from repro.explore.sweep import SweepPoint

Quadruple = Tuple[int, int, int, int]
Objective = Callable[["ParetoPoint"], float]


@dataclass(frozen=True)
class ParetoPoint:
    """One Pareto candidate: a design at one CPR, aggregated over workloads."""

    design: str
    quadruple: Optional[Quadruple]
    cpr: float
    clock_period: float
    rms_re: float
    error_rate: float
    gates: int
    area_proxy: float
    critical_path_delay: float
    workloads: int
    provably_exact: bool = False

    @property
    def is_exact(self) -> bool:
        """True for the exact-baseline design."""
        return self.quadruple is None


#: Default minimisation objectives: exactness guarantee, measured
#: accuracy, gate count, area and clock period.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    lambda point: 0.0 if point.provably_exact else 1.0,
    lambda point: point.rms_re,
    lambda point: float(point.gates),
    lambda point: point.area_proxy,
    lambda point: point.clock_period,
)


def aggregate_points(points: Sequence[SweepPoint]) -> List[ParetoPoint]:
    """Collapse sweep points into per-(design x CPR) Pareto candidates.

    Error axes are averaged across the sweep's workloads; the structural
    cost axes are identical across workloads of one design and are taken
    from the first point seen.
    """
    if not points:
        raise AnalysisError("cannot aggregate an empty sweep")
    grouped: Dict[Tuple[str, float], List[SweepPoint]] = {}
    order: List[Tuple[str, float]] = []
    for point in points:
        key = (point.design, point.cpr)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(point)
    candidates: List[ParetoPoint] = []
    for key in order:
        group = grouped[key]
        first = group[0]
        candidates.append(ParetoPoint(
            design=first.design,
            quadruple=first.quadruple,
            cpr=first.cpr,
            clock_period=first.clock_period,
            rms_re=sum(p.stats.rms_relative_error for p in group) / len(group),
            error_rate=sum(p.stats.error_rate for p in group) / len(group),
            gates=first.cost.gates,
            area_proxy=first.cost.area_proxy,
            critical_path_delay=first.cost.critical_path_delay,
            workloads=len(group),
            provably_exact=first.provably_exact,
        ))
    return candidates


def dominates(first: ParetoPoint, second: ParetoPoint,
              objectives: Sequence[Objective] = DEFAULT_OBJECTIVES) -> bool:
    """True when ``first`` weakly dominates ``second`` on every objective."""
    no_worse = all(objective(first) <= objective(second) for objective in objectives)
    strictly_better = any(objective(first) < objective(second) for objective in objectives)
    return no_worse and strictly_better


def objective_matrix(candidates: Sequence[ParetoPoint],
                     objectives: Sequence[Objective] = DEFAULT_OBJECTIVES) -> np.ndarray:
    """Objective values of every candidate, shape ``(candidates, objectives)``."""
    if not objectives:
        raise AnalysisError("objective_matrix needs at least one objective")
    return np.array([[objective(candidate) for objective in objectives]
                     for candidate in candidates], dtype=np.float64).reshape(
                         len(candidates), len(objectives))


def nondominated_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of the weakly non-dominated rows of ``(n, k)`` values.

    Row ``j`` dominates row ``i`` when it is no worse on every column and
    strictly better on at least one (all objectives minimised) — the
    same rule as :func:`dominates`, evaluated for all pairs at once.
    The comparison is blocked so peak memory stays bounded on the large
    predicted-candidate sets of the adaptive explorer (tens of
    thousands of rows), where the pure-Python pairwise loop would be
    minutes instead of milliseconds.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise AnalysisError(f"expected a 2-D objective matrix, got shape {values.shape}")
    count = values.shape[0]
    mask = np.ones(count, dtype=bool)
    if count == 0:
        return mask
    block_rows = max(1, (4 << 20) // max(1, count * values.shape[1]))
    for start in range(0, count, block_rows):
        block = values[start:start + block_rows]
        no_worse = (values[None, :, :] <= block[:, None, :]).all(axis=2)
        strictly_better = (values[None, :, :] < block[:, None, :]).any(axis=2)
        mask[start:start + block_rows] = ~(no_worse & strictly_better).any(axis=1)
    return mask


def pareto_frontier(candidates: Sequence[ParetoPoint],
                    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES) -> List[ParetoPoint]:
    """The non-dominated subset of ``candidates``, in input order."""
    if not objectives:
        raise AnalysisError("pareto_frontier needs at least one objective")
    if not candidates:
        return []
    mask = nondominated_mask(objective_matrix(candidates, objectives))
    return [candidate for candidate, keep in zip(candidates, mask) if keep]


def frontier_keys(frontier: Sequence[ParetoPoint]) -> Set[Tuple[Optional[Quadruple], float]]:
    """Identity set of a frontier: the ``(quadruple, cpr)`` pairs on it.

    The exact baseline appears as ``(None, cpr)``.  Two frontiers over
    the same measured points compare by this set — the adaptive
    explorer's convergence check and its recall metric both use it.
    """
    return {(point.quadruple, point.cpr) for point in frontier}


def rank_frontier(frontier: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Frontier sorted for the report: most accurate first, cheapest breaking ties."""
    return sorted(frontier, key=lambda point: (point.rms_re, point.gates,
                                               point.clock_period))


def quadruple_distance(first: Quadruple, second: Quadruple) -> float:
    """Euclidean distance between two quadruples (the annotation metric)."""
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(first, second)))


def nearest_paper_design(quadruple: Optional[Quadruple]) -> Tuple[str, float]:
    """Closest of the paper's eleven quadruples, with its distance.

    The exact baseline maps to itself (the paper's twelfth column).  The
    paper picked its designs at width 32; the annotation is about where
    a swept configuration sits relative to that hand-picked set, so the
    comparison is quadruple-space only and width-agnostic.
    """
    if quadruple is None:
        return "exact", 0.0
    best = min(PAPER_QUADRUPLES, key=lambda paper: quadruple_distance(quadruple, paper))
    return "({},{},{},{})".format(*best), quadruple_distance(quadruple, best)
