"""Sweep checkpointing: a journal of completed, scored jobs.

A :class:`SweepJournal` is an append-only JSONL file recording, per
completed characterization job, the job's content digest
(:func:`~repro.runtime.cache.job_digest`) and its scored
:class:`~repro.explore.sweep.SweepPoint` rows.  ``run_sweep`` journals
each completed batch as it finishes, so an interrupted sweep — a killed
process, a lost machine — resumes from the journal plus the result
cache: ``--resume`` replays the journaled scores and simulates (and
*scores*) only the jobs the journal has not seen.

The journal is keyed by the sweep's full job-digest list, so a resumed
run must describe the same sweep — a changed spec (different designs,
workloads, clock plan, width, synthesis options) lands in a different
journal file and starts fresh instead of splicing incompatible points.

Scored floats round-trip exactly: JSON serialisation uses ``repr``-style
shortest-round-trip floats, so a resumed sweep's points are
**byte-identical** to an uninterrupted run's (asserted by
``tests/test_resilience.py``).  Corrupt trailing lines — the torn write
of the interruption itself — are skipped on load; the affected job is
simply re-simulated.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import ErrorStatistics, StructuralCost
from repro.exceptions import ConfigurationError
from repro.explore.sweep import SweepPoint

#: Bumped whenever the journal line layout changes; foreign-format
#: journals are ignored (the sweep re-simulates) instead of misread.
JOURNAL_FORMAT = 1

#: Environment default for the checkpoint directory (CLI ``--checkpoint-dir``).
CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"


def _scalar(value):
    """A JSON-safe plain scalar (numpy scalars carry an ``item()``)."""
    item = getattr(value, "item", None)
    return item() if item is not None else value


def point_to_record(point: SweepPoint) -> dict:
    """One sweep point as a JSON-ready dict (floats round-trip exactly)."""
    return {
        "design": point.design,
        "quadruple": (None if point.quadruple is None
                      else [int(v) for v in point.quadruple]),
        "workload": point.workload,
        "cpr": float(point.cpr),
        "clock_period": float(point.clock_period),
        "stats": {name: _scalar(value)
                  for name, value in vars(point.stats).items()},
        "structural_rms": float(point.structural_rms),
        "timing_rms": float(point.timing_rms),
        "cost": {name: _scalar(value)
                 for name, value in vars(point.cost).items()},
        "provably_exact": bool(point.provably_exact),
    }


def point_from_record(record: dict) -> SweepPoint:
    """Rebuild a sweep point from its journaled dict."""
    quadruple = record["quadruple"]
    return SweepPoint(
        design=record["design"],
        quadruple=None if quadruple is None else tuple(int(v) for v in quadruple),
        workload=record["workload"],
        cpr=record["cpr"],
        clock_period=record["clock_period"],
        stats=ErrorStatistics(**record["stats"]),
        structural_rms=record["structural_rms"],
        timing_rms=record["timing_rms"],
        cost=StructuralCost(**record["cost"]),
        provably_exact=record["provably_exact"],
    )


class SweepJournal:
    """Append-only JSONL journal of one sweep's completed, scored jobs."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    @classmethod
    def for_spec(cls, checkpoint_dir, digests: Sequence[str]) -> "SweepJournal":
        """The journal file of the sweep whose jobs have these digests.

        The file name hashes the full digest list, so journal identity
        *is* sweep identity — same spec, same file; any change, a fresh
        one.
        """
        identity = hashlib.sha256(
            "\n".join(digests).encode("utf-8")).hexdigest()[:16]
        directory = Path(checkpoint_dir).expanduser()
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / f"sweep-{identity}.jsonl")

    # ------------------------------------------------------------------ #
    def load(self) -> Dict[str, List[SweepPoint]]:
        """Journaled scores by job digest (empty when absent/unreadable).

        A corrupt or half-written line — typically the very write the
        interruption tore — is skipped, along with foreign-format lines;
        those jobs are simply simulated again.
        """
        completed: Dict[str, List[SweepPoint]] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return completed
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                if entry["format"] != JOURNAL_FORMAT:
                    continue
                points = [point_from_record(record) for record in entry["points"]]
                completed[entry["digest"]] = points
            except (KeyError, TypeError, ValueError):
                continue
        return completed

    def record(self, digest: str, points: Sequence[SweepPoint]) -> None:
        """Append one completed job's scores (flushed before returning).

        Journal writes are resilience bookkeeping, so they follow the
        cache-write convention: an ``OSError`` is swallowed — the job
        stays un-journaled and a future resume re-simulates it, which is
        slower but never wrong.
        """
        line = json.dumps({"format": JOURNAL_FORMAT, "digest": digest,
                           "points": [point_to_record(point) for point in points]},
                          sort_keys=True)
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            pass

    def clear(self) -> None:
        """Drop the journal (a fresh, non-resumed run starts clean)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


def resolve_checkpoint_dir(checkpoint_dir: Optional[str]) -> Optional[str]:
    """An explicit checkpoint directory, or the ``REPRO_CHECKPOINT_DIR`` one."""
    if checkpoint_dir is not None:
        return str(checkpoint_dir)
    value = os.environ.get(CHECKPOINT_ENV, "").strip()
    return value or None


def require_checkpoint_dir(checkpoint_dir: Optional[str],
                           resume: bool) -> Optional[str]:
    """Validate the (resolved) checkpoint configuration.

    ``resume`` without a checkpoint directory is a configuration error —
    there is nothing to resume from.
    """
    resolved = resolve_checkpoint_dir(checkpoint_dir)
    if resume and resolved is None:
        raise ConfigurationError(
            "resume requested without a checkpoint directory; pass "
            f"checkpoint_dir (or set {CHECKPOINT_ENV})")
    return resolved
