"""Adaptive frontier-guided exploration: surrogate-directed sweeps.

Exhaustive enumeration stops scaling no matter how fast one simulated
point gets: width 16 has 889 legal quadruples, width 32 has 5 802 and
width 64 has 41 739.  This module reuses the paper's own insight — a
cheap learned model can stand in for expensive simulation (the paper
uses Random Forest Classification for bit-level timing errors,
Section III) — to spend the simulation budget only where the Pareto
frontier might move:

1. **Seed.**  A small strided batch of the candidate space is simulated
   through the ordinary :func:`~repro.explore.sweep.run_sweep` pipeline
   (same planner, same result/synthesis caches).
2. **Fit.**  Three seeded :class:`~repro.ml.regress.RandomForestRegressor`
   surrogates learn the sweep's scoring axes from quadruple features —
   joint RMS relative error (with the CPR level as an extra feature),
   gate count and the area proxy — directly from the configuration, no
   simulation.
3. **Acquire.**  Every unsimulated candidate is scored at every clock
   point, and the next batch blends three slices.  *Exploit*: candidates
   predicted non-dominated — against the measured frontier first, then
   mutually among the survivors.  *Neighbor*: the unsimulated candidates
   closest (quadruple L1 distance) to designs already measured on the
   frontier — the frontier is connected in design space, so local
   refinement around confirmed points recovers its fine structure even
   where the surrogate misjudges; empirically this slice is what makes
   recall robust to the surrogate seed.  *Explore*: the tree-ensemble
   spread (candidates the bootstrap-decorrelated trees disagree on).
   All ranking is deterministic given the seed.
4. **Simulate, refit, repeat.**  The batch runs through the same cached
   job path (so adaptive and exhaustive runs share work), the surrogate
   refits on everything measured, and the loop stops on budget
   exhaustion, round limit, or when ``patience`` consecutive rounds
   leave the *measured* frontier unchanged.

The surrogate decides what to simulate, never what to report: the final
frontier contains measured points only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.designs import DesignEntry
from repro.explore.pareto import (
    ParetoPoint,
    aggregate_points,
    frontier_keys,
    nondominated_mask,
    pareto_frontier,
)
from repro.explore.space import DesignSpace
from repro.explore.sweep import SweepPoint, SweepSpec, run_sweep
from repro.ml.regress import RandomForestRegressor
from repro.utils.rng import derive_seed

#: Names of the surrogate's quadruple-derived features, in column order.
SURROGATE_FEATURES = (
    "block", "spec", "correction", "reduction", "overhead_bits",
    "num_blocks", "provably_exact", "spec_ratio", "correction_ratio",
    "reduction_ratio", "block_ratio",
)

#: Floor added before the log transform of the RMS axis — measured RMS
#: relative errors span many orders of magnitude (and provably exact
#: designs measure exactly zero), and variance-reduction splits need the
#: axis compressed to learn the small-error end.  Dominance comparisons
#: are monotone-invariant, so predicted and measured values simply stay
#: in log space together.
RMS_LOG_FLOOR = 1e-9


def candidate_matrix(space: DesignSpace) -> np.ndarray:
    """The space's quadruples as a compact ``(candidates, 4)`` int array.

    Streams :meth:`~repro.explore.space.DesignSpace.iter_quadruples`, so
    the combinatorially large width-32/64 spaces never materialise a
    Python list of tuples.
    """
    flat = np.fromiter(
        (value for quadruple in space.iter_quadruples() for value in quadruple),
        dtype=np.int64)
    return flat.reshape(-1, 4)


def quadruple_features(quadruples: np.ndarray, width: int) -> np.ndarray:
    """Surrogate feature matrix of quadruple rows, columns per
    :data:`SURROGATE_FEATURES`.

    Vectorised over a ``(candidates, 4)`` array: the window widths, the
    overhead-bit total, the block count, the analytic exactness
    guarantee (mirroring
    :attr:`~repro.core.config.ISAConfig.is_provably_exact` for the
    pipeline's carry-in-0 convention) and the legal-window ratios that
    make windows comparable across block sizes.
    """
    quadruples = np.asarray(quadruples, dtype=np.float64).reshape(-1, 4)
    block, spec, correction, reduction = quadruples.T
    overhead = spec + correction + reduction
    num_blocks = float(width) / block
    provably_exact = ((num_blocks <= 2) & (spec == block)).astype(np.float64)
    return np.column_stack([
        block, spec, correction, reduction, overhead,
        num_blocks, provably_exact,
        spec / block, correction / block, reduction / block,
        block / float(width),
    ])


@dataclass(frozen=True)
class AdaptiveSpec:
    """One adaptive search: a candidate space plus the search knobs.

    Parameters
    ----------
    space:
        The quadruple space searched.
    sweep:
        Template sweep — clock plan, workloads, simulator/engine tier,
        synthesis options and width; its ``entries`` are ignored and
        replaced batch by batch, so every simulated job lands in the
        same cache keyspace as an exhaustive sweep of the space.
    batch_size:
        Designs simulated per acquisition round.
    seed_batch:
        Designs in the initial strided batch (default: twice
        ``batch_size`` — the first fit deserves broader coverage than a
        steered round does).
    budget / budget_fraction:
        Cap on simulated designs, as an absolute count or (when
        ``budget`` is ``None``) a fraction of the space.  The exact
        baseline rides outside the budget, as in
        :meth:`DesignSpace.entries`.
    max_rounds:
        Acquisition rounds after the seed batch.
    patience:
        Consecutive rounds the measured frontier must stay unchanged
        before the search declares convergence.
    neighbor_fraction:
        Share of each batch reserved for the local-refinement slice
        (unsimulated candidates nearest the measured frontier designs).
    explore_fraction:
        Share of each batch reserved for the uncertainty slice.
    seed:
        Master seed of the surrogate ensembles (per-round streams are
        derived from it, so a re-run picks identical batches and a warm
        cache serves every job).
    """

    space: DesignSpace
    sweep: SweepSpec
    batch_size: int = 12
    seed_batch: Optional[int] = None
    budget: Optional[int] = None
    budget_fraction: float = 0.2
    max_rounds: int = 30
    patience: int = 3
    neighbor_fraction: float = 0.4
    explore_fraction: float = 0.1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.space.width != self.sweep.width:
            raise ConfigurationError(
                f"space width {self.space.width} does not match sweep width "
                f"{self.sweep.width}")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be at least 1, got {self.batch_size}")
        if self.seed_batch is not None and self.seed_batch < 1:
            raise ConfigurationError(
                f"seed_batch must be at least 1, got {self.seed_batch}")
        if self.budget is not None and self.budget < 1:
            raise ConfigurationError(f"budget must be at least 1, got {self.budget}")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ConfigurationError(
                f"budget_fraction must be in (0, 1], got {self.budget_fraction}")
        if self.max_rounds < 0:
            raise ConfigurationError(
                f"max_rounds must be non-negative, got {self.max_rounds}")
        if self.patience < 1:
            raise ConfigurationError(f"patience must be at least 1, got {self.patience}")
        if not 0.0 <= self.explore_fraction < 1.0:
            raise ConfigurationError(
                f"explore_fraction must be in [0, 1), got {self.explore_fraction}")
        if not 0.0 <= self.neighbor_fraction < 1.0:
            raise ConfigurationError(
                f"neighbor_fraction must be in [0, 1), got {self.neighbor_fraction}")
        if self.neighbor_fraction + self.explore_fraction >= 1.0:
            raise ConfigurationError(
                "neighbor_fraction + explore_fraction must leave room for the "
                f"exploit slice, got {self.neighbor_fraction} + {self.explore_fraction}")

    def resolved_budget(self, candidates: int) -> int:
        """Simulated-design cap for a space of ``candidates`` quadruples.

        The fractional budget rounds *down* so that the simulated share
        of the space never exceeds ``budget_fraction``.
        """
        if self.budget is not None:
            return min(self.budget, candidates)
        return min(candidates, max(1, int(self.budget_fraction * candidates)))


@dataclass(frozen=True)
class RoundLog:
    """Progress counters of one adaptive round (round 0 is the seed)."""

    index: int
    simulated: int
    total_simulated: int
    scored: int
    predicted_frontier: int
    frontier_size: int
    frontier_changed: bool

    def describe(self) -> str:
        """One-line progress report of this round."""
        tag = "seed " if self.index == 0 else f"round {self.index}"
        change = "changed" if self.frontier_changed else "stable"
        return (f"{tag}: simulated {self.simulated} (total {self.total_simulated}), "
                f"scored {self.scored} predicted points "
                f"({self.predicted_frontier} predicted on frontier), "
                f"measured frontier {self.frontier_size} ({change})")


@dataclass
class AdaptiveResult:
    """Outcome of one adaptive search: measured points, frontier, logs."""

    spec: AdaptiveSpec
    points: List[SweepPoint]
    rounds: List[RoundLog]
    frontier: List[ParetoPoint]
    candidates: int
    simulated: int
    budget: int

    @property
    def fraction_simulated(self) -> float:
        """Simulated share of the candidate space (exact baseline excluded)."""
        return self.simulated / self.candidates if self.candidates else 0.0

    def describe(self) -> str:
        """One-line summary of the search."""
        return (f"adaptive search: simulated {self.simulated} of {self.candidates} "
                f"candidates ({self.fraction_simulated * 100:.1f}% of the space, "
                f"budget {self.budget}) over {len(self.rounds)} rounds; "
                f"measured frontier has {len(self.frontier)} points")


def frontier_recall(reference: Sequence[ParetoPoint],
                    recovered: Sequence[ParetoPoint]) -> float:
    """Frontier-membership recall of ``recovered`` against ``reference``.

    The fraction of the reference frontier's ``(quadruple, cpr)``
    identities present on the recovered frontier — the success metric of
    the adaptive search against an exhaustive sweep.  Because any
    measured subset keeps a full-space-non-dominated point non-dominated,
    this equals the fraction of reference-frontier designs the adaptive
    run chose to simulate.
    """
    reference_keys = frontier_keys(reference)
    if not reference_keys:
        return 1.0
    return len(reference_keys & frontier_keys(recovered)) / len(reference_keys)


# --------------------------------------------------------------------- #
# Surrogate: measured points -> per-axis forests -> predicted objectives
# --------------------------------------------------------------------- #
class _Surrogate:
    """The three per-axis forests, refitted from measured Pareto candidates.

    ``featurize``/``feature_names`` come from the operator family
    searched (default: the adder's), so the forests see whatever
    quadruple parameterisation the space enumerates.
    """

    def __init__(self, width: int, cpr_levels: Sequence[float], seed: Optional[int],
                 featurize: Optional[Callable] = None,
                 feature_names: Optional[Sequence[str]] = None) -> None:
        self.width = width
        self.cpr_levels = np.asarray(cpr_levels, dtype=np.float64)
        self.seed = seed
        self.featurize = featurize if featurize is not None else quadruple_features
        names = tuple(feature_names) if feature_names is not None else SURROGATE_FEATURES
        self.guarantee_column = names.index("provably_exact")
        self.rms: Optional[RandomForestRegressor] = None
        self.gates: Optional[RandomForestRegressor] = None
        self.area: Optional[RandomForestRegressor] = None

    def fit(self, measured: Sequence[ParetoPoint], round_index: int) -> None:
        """Refit every axis on the measured (non-baseline) candidates."""
        candidates = [point for point in measured if point.quadruple is not None]
        quadruples = np.array([point.quadruple for point in candidates], dtype=np.int64)
        features = self.featurize(quadruples, self.width)
        rms_rows = np.column_stack(
            [features, np.array([point.cpr for point in candidates])])
        rms_targets = np.log10(
            np.array([point.rms_re for point in candidates]) + RMS_LOG_FLOOR)
        # One design contributes one structural row (its cost axes are
        # identical at every clock point).
        first_cpr = min(point.cpr for point in candidates)
        structural = [point for point in candidates if point.cpr == first_cpr]
        structural_features = self.featurize(
            np.array([point.quadruple for point in structural], dtype=np.int64),
            self.width)
        gates_targets = np.array([float(point.gates) for point in structural])
        area_targets = np.array([point.area_proxy for point in structural])

        def forest(salt: int) -> RandomForestRegressor:
            return RandomForestRegressor(
                seed=derive_seed(self.seed, 1000 * round_index + salt))

        self.rms = forest(1).fit(rms_rows, rms_targets)
        self.gates = forest(2).fit(structural_features, gates_targets)
        self.area = forest(3).fit(structural_features, area_targets)

    def score(self, features: np.ndarray,
              clock_periods: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
        """Predicted objectives and uncertainty of candidate features.

        One ensemble evaluation per axis serves both outputs.  Returns
        ``(objectives, spread)``: the objective matrix has shape
        ``(candidates * cpr_levels, 5)`` with rows grouped by candidate
        and columns matching
        :data:`~repro.explore.pareto.DEFAULT_OBJECTIVES` — except the
        RMS axis stays in log space (dominance is monotone-invariant) —
        and ``spread`` is one normalised tree-disagreement score per
        candidate (higher = the training set constrains it less).  Each
        axis's spread is scaled by its own mean spread, so gate-count
        disagreement (hundreds) cannot drown out log-RMS disagreement
        (units).
        """
        count = features.shape[0]
        levels = self.cpr_levels.shape[0]
        tiled = np.repeat(features, levels, axis=0)
        cpr_column = np.tile(self.cpr_levels, count)
        rms_all = self.rms.predict_all(np.column_stack([tiled, cpr_column]))
        gates_all = self.gates.predict_all(features)
        area_all = self.area.predict_all(features)
        guarantee = np.repeat(1.0 - features[:, self.guarantee_column], levels)
        periods = np.tile(np.asarray(clock_periods, dtype=np.float64), count)
        objectives = np.column_stack([
            guarantee, rms_all.mean(axis=0),
            np.repeat(gates_all.mean(axis=0), levels),
            np.repeat(area_all.mean(axis=0), levels), periods])
        spread = np.zeros(count, dtype=np.float64)
        per_axis = (rms_all.std(axis=0).reshape(count, levels).mean(axis=1),
                    gates_all.std(axis=0), area_all.std(axis=0))
        for std in per_axis:
            scale = float(std.mean())
            if scale > 0:
                spread += std / scale
        return objectives, spread


def measured_objectives(frontier: Sequence[ParetoPoint]) -> np.ndarray:
    """Measured frontier points as rows comparable to surrogate predictions."""
    return np.array([[0.0 if point.provably_exact else 1.0,
                      np.log10(point.rms_re + RMS_LOG_FLOOR),
                      float(point.gates),
                      point.area_proxy,
                      point.clock_period] for point in frontier],
                    dtype=np.float64).reshape(len(frontier), 5)


def _lexorder(primary: np.ndarray, quadruples: np.ndarray) -> np.ndarray:
    """Indices sorting by ``primary`` ascending, quadruple lex as tie-break."""
    return np.lexsort((quadruples[:, 3], quadruples[:, 2], quadruples[:, 1],
                       quadruples[:, 0], primary))


def select_batch(surrogate: _Surrogate, features: np.ndarray,
                 quadruples: np.ndarray, remaining: np.ndarray,
                 frontier: Sequence[ParetoPoint], clock_periods: Sequence[float],
                 batch_size: int, neighbor_fraction: float,
                 explore_fraction: float) -> Tuple[np.ndarray, int]:
    """Pick the next batch of candidate indices (into the full space).

    Returns ``(chosen_indices, predicted_frontier_designs)``.  Three
    slices fill the batch, deduplicated in this order:

    * *exploit* — candidates with at least one predicted non-dominated
      point (filtered against the measured frontier first, then
      mutually), ranked by how many of their clock points survive;
    * *neighbor* — candidates ranked by quadruple L1 distance to the
      designs measured on the current frontier, walking each
      neighborhood in sorted quadruple order (systematic local coverage
      beats chasing the surrogate's noisy closeness estimates here);
    * *explore* — the rest, ranked by tree-ensemble spread.

    Every ordering ties off deterministically on the quadruple itself.
    """
    candidate_indices = np.flatnonzero(remaining)
    candidate_features = features[candidate_indices]
    candidate_quadruples = quadruples[candidate_indices]
    levels = len(surrogate.cpr_levels)

    predicted, spread = surrogate.score(candidate_features, clock_periods)
    anchors = measured_objectives(frontier)
    # Promising: predicted points no measured frontier point weakly
    # dominates (strictly better somewhere, no worse everywhere).
    no_worse = (anchors[None, :, :] <= predicted[:, None, :]).all(axis=2)
    strictly = (anchors[None, :, :] < predicted[:, None, :]).any(axis=2)
    promising = ~(no_worse & strictly).any(axis=1)
    # Mutually non-dominated among the promising predicted points.
    survivors = np.zeros(predicted.shape[0], dtype=bool)
    promising_rows = np.flatnonzero(promising)
    if promising_rows.size:
        survivors[promising_rows] = nondominated_mask(predicted[promising_rows])
    per_design = survivors.reshape(-1, levels).sum(axis=1)

    exploit_pool = np.flatnonzero(per_design > 0)
    exploit_order = exploit_pool[_lexorder(
        -per_design[exploit_pool].astype(np.float64),
        candidate_quadruples[exploit_pool])]

    frontier_quadruples = np.array(
        [point.quadruple for point in frontier if point.quadruple is not None],
        dtype=np.int64).reshape(-1, 4)
    if frontier_quadruples.shape[0]:
        distance = np.abs(
            candidate_quadruples[:, None, :] - frontier_quadruples[None, :, :]
        ).sum(axis=2).min(axis=1)
    else:
        distance = np.zeros(candidate_quadruples.shape[0], dtype=np.int64)
    neighbor_order = _lexorder(distance.astype(np.float64), candidate_quadruples)

    explore_count = int(round(explore_fraction * batch_size)) if batch_size > 1 else 0
    neighbor_count = int(round(neighbor_fraction * batch_size))
    exploit_count = max(0, batch_size - explore_count - neighbor_count)

    chosen: List[int] = []
    chosen_set: set = set()

    def take(order: np.ndarray, count: int) -> None:
        taken = 0
        for position in order:
            if taken >= count:
                break
            if int(position) not in chosen_set:
                chosen.append(int(position))
                chosen_set.add(int(position))
                taken += 1

    take(exploit_order, exploit_count)
    take(neighbor_order, neighbor_count)
    take(_lexorder(-spread, candidate_quadruples), batch_size - len(chosen))
    # Top up from the neighbor ranking if any pool ran dry.
    take(neighbor_order, batch_size - len(chosen))

    return candidate_indices[np.array(chosen, dtype=np.int64)], int((per_design > 0).sum())


# --------------------------------------------------------------------- #
# The active-learning loop
# --------------------------------------------------------------------- #
def run_adaptive(spec: AdaptiveSpec, backend="serial", workers: Optional[int] = None,
                 cache_dir: Optional[str] = None, plan: bool = True,
                 progress: Optional[Callable[[RoundLog], None]] = None,
                 checkpoint_dir: Optional[str] = None,
                 resume: bool = False) -> AdaptiveResult:
    """Run the surrogate-directed search loop over ``spec.space``.

    Backend handling mirrors :func:`~repro.explore.sweep.run_sweep`,
    except the resolved backend stack is held open across all rounds (a
    multiprocess pool and its worker caches stay warm from batch to
    batch) and closed on return only if it was constructed here.
    ``progress`` is invoked with each round's :class:`RoundLog` as it
    completes.

    ``checkpoint_dir`` / ``resume`` checkpoint each round's batch sweep
    (see :func:`~repro.explore.sweep.run_sweep`): batch selection is
    deterministic given the seed, so a resumed search re-derives the
    same batches and replays their journaled scores instead of
    re-simulating.
    """
    from repro.explore.checkpoint import require_checkpoint_dir
    checkpoint_dir = require_checkpoint_dir(checkpoint_dir, resume)
    from repro.runtime import CachingBackend, get_backend
    from repro.runtime.plan import PlannedBackend

    from repro.families import get_family

    family = get_family(getattr(spec.space, "family", "adder"))
    quadruples = candidate_matrix(spec.space)
    candidates = quadruples.shape[0]
    if candidates == 0:
        raise ConfigurationError(f"the candidate space is empty: {spec.space.describe()}")
    features = family.surrogate_features(quadruples, spec.space.width)
    budget = spec.resolved_budget(candidates)
    clock_periods = tuple(spec.sweep.clock_plan.periods)
    cpr_levels = tuple(spec.sweep.clock_plan.cpr_levels)
    surrogate = _Surrogate(spec.space.width, cpr_levels, spec.seed,
                           featurize=family.surrogate_features,
                           feature_names=family.surrogate_feature_names)

    inner = get_backend(backend, workers=workers)
    owns_inner = inner is not backend
    resolved = inner
    if plan and not isinstance(inner, (PlannedBackend, CachingBackend)):
        resolved = PlannedBackend(resolved)
    if cache_dir is not None:
        resolved = CachingBackend(resolved, cache_dir)

    remaining = np.ones(candidates, dtype=bool)
    points: List[SweepPoint] = []
    rounds: List[RoundLog] = []
    frontier: List[ParetoPoint] = []
    previous_keys = None
    stable_rounds = 0

    def entries_for(indices: np.ndarray, include_exact: bool) -> List[DesignEntry]:
        entries = [family.design_entry(tuple(int(v) for v in quadruples[index]),
                                       width=spec.space.width)
                   for index in indices]
        if include_exact:
            entries.append(family.exact_entry(spec.space.width))
        return entries

    def simulate(indices: np.ndarray, include_exact: bool) -> None:
        batch_spec = spec.sweep.with_entries(entries_for(indices, include_exact))
        result = run_sweep(batch_spec, backend=resolved,
                           checkpoint_dir=checkpoint_dir, resume=resume)
        points.extend(result.points)
        remaining[indices] = False

    def close_round(index: int, simulated: int, scored: int,
                    predicted_frontier: int) -> None:
        nonlocal frontier, previous_keys, stable_rounds
        frontier = pareto_frontier(aggregate_points(points))
        keys = frontier_keys(frontier)
        changed = keys != previous_keys
        stable_rounds = 0 if changed else stable_rounds + 1
        previous_keys = keys
        entry = RoundLog(index=index, simulated=simulated,
                         total_simulated=int((~remaining).sum()), scored=scored,
                         predicted_frontier=predicted_frontier,
                         frontier_size=len(frontier), frontier_changed=changed)
        rounds.append(entry)
        if progress is not None:
            progress(entry)

    try:
        # Round 0: strided seed batch (plus the exact baseline anchor).
        seed_count = min(spec.seed_batch or 2 * spec.batch_size, budget)
        seed_indices = np.array(
            sorted({(index * candidates) // seed_count for index in range(seed_count)}),
            dtype=np.int64)
        simulate(seed_indices, include_exact=True)
        close_round(0, simulated=len(seed_indices), scored=0, predicted_frontier=0)

        for round_index in range(1, spec.max_rounds + 1):
            simulated_total = int((~remaining).sum())
            batch = min(spec.batch_size, budget - simulated_total)
            if batch <= 0 or not remaining.any() or stable_rounds >= spec.patience:
                break
            surrogate.fit(aggregate_points(points), round_index)
            chosen, predicted_frontier = select_batch(
                surrogate, features, quadruples, remaining, frontier,
                clock_periods, batch, spec.neighbor_fraction,
                spec.explore_fraction)
            scored = int(remaining.sum()) * len(cpr_levels)
            simulate(chosen, include_exact=False)
            close_round(round_index, simulated=len(chosen), scored=scored,
                        predicted_frontier=predicted_frontier)
    finally:
        if owns_inner:
            inner.close()

    return AdaptiveResult(spec=spec, points=points, rounds=rounds,
                          frontier=frontier, candidates=candidates,
                          simulated=int((~remaining).sum()), budget=budget)
