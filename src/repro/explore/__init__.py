"""Design-space exploration: enumerate, sweep and Pareto-rank ISA spaces.

The paper evaluates eleven hand-picked ISA quadruples against one exact
baseline; this subsystem turns that selection into a search problem over
the *whole* legal configuration space:

* :mod:`repro.explore.space` — :class:`DesignSpace` enumerates every
  quadruple an :class:`~repro.core.config.ISAConfig` of a width accepts,
  under optional validity/cost constraints, with deterministic strided
  subsampling down to a design budget.
* :mod:`repro.explore.sweep` — :class:`SweepSpec` expands designs x
  clock-period-reduction points x workload generators into one
  :class:`~repro.runtime.CharacterizationJob` batch submitted through
  the pluggable backends (and result cache) of :mod:`repro.runtime`,
  then scores every point with joint error statistics and structural
  cost.
* :mod:`repro.explore.pareto` — aggregation of sweep points into
  Pareto candidates, weak-dominance frontier extraction, ranking, and
  nearest-paper-design annotation.
* :mod:`repro.explore.adaptive` — surrogate-directed search:
  :func:`run_adaptive` recovers the Pareto frontier of a space while
  simulating only a budgeted fraction of it, steering each simulation
  batch with seeded :class:`~repro.ml.regress.RandomForestRegressor`
  surrogates fitted on the points measured so far.
* :mod:`repro.explore.cli` — the ``repro-explore`` console entry point.

Quick start::

    from repro.explore import DesignSpace, SweepSpec, run_sweep
    from repro.explore import aggregate_points, pareto_frontier
    from repro.workloads.generators import WorkloadSpec

    space = DesignSpace(width=16)
    spec = SweepSpec(entries=tuple(space.entries(max_designs=32)),
                     workloads=(WorkloadSpec("uniform", 1024, width=16, seed=7),),
                     width=16)
    result = run_sweep(spec, backend="multiprocess", cache_dir="~/.cache/repro")
    frontier = pareto_frontier(aggregate_points(result.points))
"""

from repro.explore.adaptive import (
    AdaptiveResult,
    AdaptiveSpec,
    RoundLog,
    frontier_recall,
    quadruple_features,
    run_adaptive,
)
from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    ParetoPoint,
    aggregate_points,
    dominates,
    frontier_keys,
    nearest_paper_design,
    nondominated_mask,
    objective_matrix,
    pareto_frontier,
    quadruple_distance,
    rank_frontier,
)
from repro.explore.space import (
    DesignSpace,
    enumerate_quadruples,
    legal_block_sizes,
    space_entries,
)
from repro.explore.sweep import (
    SWEEP_CPR_LEVELS,
    SweepPoint,
    SweepResult,
    SweepSpec,
    run_sweep,
    score_characterization,
    sweep_clock_plan,
)

__all__ = [
    "AdaptiveResult",
    "AdaptiveSpec",
    "DEFAULT_OBJECTIVES",
    "DesignSpace",
    "ParetoPoint",
    "RoundLog",
    "SWEEP_CPR_LEVELS",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "aggregate_points",
    "dominates",
    "enumerate_quadruples",
    "frontier_keys",
    "frontier_recall",
    "legal_block_sizes",
    "nearest_paper_design",
    "nondominated_mask",
    "objective_matrix",
    "pareto_frontier",
    "quadruple_distance",
    "quadruple_features",
    "rank_frontier",
    "run_adaptive",
    "run_sweep",
    "score_characterization",
    "space_entries",
    "sweep_clock_plan",
]
