"""Sweep expansion: designs x clock points x workloads -> one job batch.

A :class:`SweepSpec` names everything a design-space sweep varies — the
design entries (typically a :class:`~repro.explore.space.DesignSpace`
selection plus the exact baseline), a clock plan whose CPR levels are the
overclocking points, and one or more workload generators — and expands
into a single batch of
:class:`~repro.runtime.CharacterizationJob` submitted through
:mod:`repro.runtime` in one call.  That single-batch shape is deliberate:
the multiprocess backend schedules whole jobs across its pool only when
the batch is at least one job per worker, and the
:class:`~repro.runtime.CachingBackend` plans hits and misses over the
entire sweep at once, so a resumed sweep re-simulates exactly the
missing designs.

Each finished job is scored into :class:`SweepPoint` records — one per
(design x workload x CPR level) — carrying the joint error statistics of
the overclocked output against the exact reference
(:func:`~repro.analysis.metrics.error_statistics`), the split
structural/timing RMS components, and the structural cost of the
synthesized netlist (:func:`~repro.analysis.metrics.structural_cost`).
The Pareto machinery in :mod:`repro.explore.pareto` consumes these
points directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import (
    ErrorStatistics,
    StructuralCost,
    error_statistics,
    structural_cost,
)
from repro.core.combination import combine_errors
from repro.exceptions import ConfigurationError
from repro.experiments.designs import DesignEntry
from repro.families import family_of
from repro.runtime import (
    SIMULATORS,
    CharacterizationJob,
    DesignCharacterization,
    run_jobs,
)
from repro.synth.flow import SynthesisOptions
from repro.timing.clocking import ClockPlan
from repro.timing.fast_sim import ENGINES
from repro.utils.phases import phase
from repro.workloads.generators import WorkloadSpec

#: Default overclocking points of a sweep: the safe period (the frontier
#: anchor where timing errors vanish) plus the paper's 5/10/15 % CPR.
SWEEP_CPR_LEVELS = (0.0, 0.05, 0.10, 0.15)


def sweep_clock_plan(cpr_levels: Sequence[float] = SWEEP_CPR_LEVELS) -> ClockPlan:
    """The paper's safe period swept over explicit CPR levels."""
    return ClockPlan(cpr_levels=tuple(cpr_levels))


@dataclass(frozen=True)
class SweepSpec:
    """One design-space sweep: entries x clock plan x workloads."""

    entries: Tuple[DesignEntry, ...]
    clock_plan: ClockPlan = field(default_factory=sweep_clock_plan)
    workloads: Tuple[WorkloadSpec, ...] = ()
    simulator: str = "fast"
    engine: str = "auto"
    synthesis: SynthesisOptions = field(default_factory=SynthesisOptions)
    width: int = 32

    def __post_init__(self) -> None:
        if not self.entries:
            raise ConfigurationError("a sweep needs at least one design entry")
        if not self.workloads:
            raise ConfigurationError("a sweep needs at least one workload spec")
        if self.simulator not in SIMULATORS:
            raise ConfigurationError(
                f"simulator must be one of {SIMULATORS}, got {self.simulator!r}")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")
        for workload in self.workloads:
            if workload.width != self.width:
                raise ConfigurationError(
                    f"workload {workload.kind!r} is {workload.width}-bit but the "
                    f"sweep is {self.width}-bit")
        object.__setattr__(self, "entries", tuple(self.entries))
        object.__setattr__(self, "workloads", tuple(self.workloads))

    # ------------------------------------------------------------------ #
    @property
    def job_count(self) -> int:
        """Jobs the sweep expands into (designs x workloads)."""
        return len(self.entries) * len(self.workloads)

    @property
    def point_count(self) -> int:
        """Scored points the sweep yields (designs x workloads x CPR levels)."""
        return self.job_count * len(self.clock_plan.cpr_levels)

    def jobs(self) -> List[CharacterizationJob]:
        """The sweep as one flat job batch, workload-major then entry order.

        Traces are materialised once per workload and shared by every
        design's job, so the batch carries ``len(workloads)`` operand
        arrays no matter how many designs are swept (and every job of a
        workload hits the same trace digest in the result cache).
        """
        jobs: List[CharacterizationJob] = []
        for workload in self.workloads:
            trace = workload.generate()
            for entry in self.entries:
                jobs.append(CharacterizationJob(
                    entry=entry,
                    trace=trace,
                    clock_periods=tuple(self.clock_plan.periods),
                    simulator=self.simulator,
                    engine=self.engine,
                    synthesis=self.synthesis,
                    width=self.width,
                ))
        return jobs

    def with_entries(self, entries: Sequence[DesignEntry]) -> "SweepSpec":
        """This sweep over a different design subset, everything else shared.

        The adaptive explorer expands each of its batches through this:
        clock plan, workloads, simulator tier and synthesis options stay
        identical across rounds, so every round's jobs land in the same
        cache keyspace as an exhaustive sweep of the same space.
        """
        return replace(self, entries=tuple(entries))

    def describe(self) -> str:
        """One-line sweep summary for reports."""
        kinds = ", ".join(workload.kind for workload in self.workloads)
        return (f"{len(self.entries)} designs x {len(self.workloads)} workloads "
                f"({kinds}) x {len(self.clock_plan.cpr_levels)} clock points "
                f"= {self.job_count} jobs / {self.point_count} points")


@dataclass(frozen=True)
class SweepPoint:
    """Score of one (design x workload x CPR) point of a sweep.

    ``stats`` are the *joint* error statistics — the overclocked inexact
    output against the exact reference, the quantity an application
    ultimately experiences; ``structural_rms`` / ``timing_rms`` split
    that error into the paper's two sources.
    """

    design: str
    quadruple: Optional[Tuple[int, int, int, int]]
    workload: str
    cpr: float
    clock_period: float
    stats: ErrorStatistics
    structural_rms: float
    timing_rms: float
    cost: StructuralCost
    provably_exact: bool = False

    @property
    def is_exact(self) -> bool:
        """True for the exact-baseline design."""
        return self.quadruple is None


@dataclass
class SweepResult:
    """Every scored point of one executed sweep.

    ``resumed_jobs`` counts jobs whose scores were replayed from a
    checkpoint journal instead of simulated (zero without checkpointing).
    """

    spec: SweepSpec
    points: List[SweepPoint]
    resumed_jobs: int = 0

    @property
    def designs(self) -> List[str]:
        """Design names in sweep order, each once."""
        seen: List[str] = []
        for point in self.points:
            if point.design not in seen:
                seen.append(point.design)
        return seen

    def points_for(self, design: str) -> List[SweepPoint]:
        """All points of one design, across workloads and CPR levels."""
        return [point for point in self.points if point.design == design]


def score_characterization(characterization: DesignCharacterization,
                           clock_plan: ClockPlan, width: int,
                           workload: str) -> List[SweepPoint]:
    """Score one finished job into its per-CPR sweep points."""
    with phase("score"):
        return _score_characterization(characterization, clock_plan, width, workload)


def _score_characterization(characterization: DesignCharacterization,
                            clock_plan: ClockPlan, width: int,
                            workload: str) -> List[SweepPoint]:
    entry = characterization.entry
    family = family_of(entry)
    quadruple = family.quadruple_of(entry)
    provably_exact = family.is_provably_exact(entry)
    result_width = family.result_width(width)
    cost = structural_cost(characterization.synthesized)
    diamond = characterization.diamond_words[1:]
    gold = characterization.gold_words[1:]
    points: List[SweepPoint] = []
    for cpr, period in clock_plan.items():
        silver = characterization.timing_trace(period).sampled_words
        errors = combine_errors(diamond, gold, silver)
        rms = errors.rms_relative_errors()
        points.append(SweepPoint(
            design=characterization.name,
            quadruple=quadruple,
            workload=workload,
            cpr=cpr,
            clock_period=period,
            stats=error_statistics(diamond, silver, width=result_width),
            structural_rms=rms["structural"],
            timing_rms=rms["timing"],
            cost=cost,
            provably_exact=provably_exact,
        ))
    return points


#: Jobs simulated between checkpoint-journal flushes (a compromise:
#: small enough that an interruption forfeits little work, large enough
#: that the multiprocess backend still sees batches worth scheduling).
CHECKPOINT_BATCH = 16


def run_sweep(spec: SweepSpec, backend="serial", workers: Optional[int] = None,
              cache_dir: Optional[str] = None, plan: bool = True,
              telemetry_dir: Optional[str] = None,
              checkpoint_dir: Optional[str] = None, resume: bool = False,
              checkpoint_batch: int = CHECKPOINT_BATCH) -> SweepResult:
    """Expand a sweep spec and run it through the job pipeline.

    ``backend`` is a backend name or an owned :class:`Backend` instance
    (a caller-supplied instance is left open, mirroring
    :func:`~repro.runtime.run_jobs`); ``cache_dir`` fronts it with the
    persistent result cache so re-running a sweep — or growing it with
    more designs — only simulates the unseen jobs.

    ``plan`` (default on) schedules the batch through the execution
    planner: the sweep's (design x clock plan) groups each run as one
    multi-trace batched evaluation, bit-identical to per-job execution.
    The planner is inserted *under* a cache built here from
    ``cache_dir``; a caller-supplied backend that is already a
    caching/planned stack is used as given.  The stacking (and the
    ownership of backends constructed from names) is exactly
    :func:`~repro.runtime.run_jobs`.

    ``telemetry_dir`` (or ``$REPRO_TELEMETRY_DIR``) appends one run
    manifest covering the whole sweep — expansion, execution *and*
    scoring — unless an outer telemetry session (a CLI) already
    observes it (see :mod:`repro.obs.manifest`).

    ``checkpoint_dir`` (or ``$REPRO_CHECKPOINT_DIR``) journals each
    completed batch of ``checkpoint_batch`` jobs — simulated *and*
    scored — into a :class:`~repro.explore.checkpoint.SweepJournal`;
    with ``resume=True`` a previously interrupted run replays journaled
    scores and simulates only the unfinished jobs (counted in
    ``SweepResult.resumed_jobs`` and the ``sweep.jobs_resumed`` metric),
    with points identical to an uninterrupted run.  Without ``resume``
    an existing journal of the same sweep is discarded first.
    """
    from repro.explore.checkpoint import SweepJournal, require_checkpoint_dir
    from repro.obs.manifest import resolve_telemetry_dir, telemetry_run
    from repro.obs.metrics import metric_count
    resolved_checkpoint = require_checkpoint_dir(checkpoint_dir, resume)
    with telemetry_run(resolve_telemetry_dir(telemetry_dir),
                       command="run_sweep",
                       config={"sweep": spec.describe(),
                               "backend": getattr(backend, "name", str(backend)),
                               "workers": workers,
                               "cache_dir": str(cache_dir) if cache_dir else None,
                               "plan": plan,
                               "checkpoint_dir": resolved_checkpoint,
                               "resume": resume}):
        jobs = spec.jobs()

        def workload_of(index: int) -> str:
            # jobs() is workload-major: every workload's trace covers one
            # contiguous run of len(entries) jobs.
            return spec.workloads[index // len(spec.entries)].kind

        if resolved_checkpoint is None:
            characterizations = run_jobs(jobs, backend=backend, workers=workers,
                                         cache_dir=cache_dir, plan=plan)
            points: List[SweepPoint] = []
            for index, characterization in enumerate(characterizations):
                points.extend(score_characterization(
                    characterization, spec.clock_plan, spec.width,
                    workload=workload_of(index)))
            return SweepResult(spec=spec, points=points)

        from repro.runtime.cache import job_digest
        digests = [job_digest(job) for job in jobs]
        journal = SweepJournal.for_spec(resolved_checkpoint, digests)
        if not resume:
            journal.clear()
        completed = journal.load() if resume else {}
        pending = [index for index, digest in enumerate(digests)
                   if digest not in completed]
        resumed = len(jobs) - len(pending)
        if resumed:
            metric_count("sweep.jobs_resumed", resumed)

        # One resolved backend stack for every batch, so a worker pool
        # (and its caches) stays warm across checkpoints; ownership and
        # stacking mirror run_jobs.
        from repro.runtime import CachingBackend, get_backend
        from repro.runtime.plan import PlannedBackend
        inner = get_backend(backend, workers=workers)
        owns_inner = inner is not backend
        resolved = inner
        if plan and not isinstance(inner, (PlannedBackend, CachingBackend)):
            resolved = PlannedBackend(resolved)
        if cache_dir is not None:
            resolved = CachingBackend(resolved, cache_dir)

        scored: dict = dict(completed)
        try:
            for start in range(0, len(pending), max(1, checkpoint_batch)):
                batch = pending[start:start + max(1, checkpoint_batch)]
                characterizations = run_jobs([jobs[index] for index in batch],
                                             backend=resolved, plan=plan)
                for index, characterization in zip(batch, characterizations):
                    job_points = score_characterization(
                        characterization, spec.clock_plan, spec.width,
                        workload=workload_of(index))
                    scored[digests[index]] = job_points
                    journal.record(digests[index], job_points)
        finally:
            if owns_inner:
                inner.close()

        points = []
        for digest in digests:
            points.extend(scored[digest])
        return SweepResult(spec=spec, points=points, resumed_jobs=resumed)
