"""Enumeration of the legal ISA quadruple space.

The paper hand-picks eleven quadruples (`experiments/designs.py:
PAPER_QUADRUPLES`); this module generalises that selection into a
first-class :class:`DesignSpace`: every quadruple
``(block, spec, correction, reduction)`` that a
:class:`~repro.core.config.ISAConfig` of the given width accepts —
block sizes dividing the width, speculation/correction/reduction
windows bounded by the block — optionally filtered by cost constraints
and deterministically subsampled down to a design budget.

The enumeration is *exact* and *ordered*: quadruples come out sorted by
``(block, spec, correction, reduction)``, so a subsample of the space is
reproducible across processes and cache runs.  Degenerate single-block
configurations (``block == width``) are excluded — they are the exact
adder, which the sweep layer adds as its explicit baseline entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.config import ISAConfig
from repro.exceptions import ConfigurationError
from repro.experiments.designs import DesignEntry, exact_entry, isa_entry
from repro.utils.validation import check_positive_int

Quadruple = Tuple[int, int, int, int]


def legal_block_sizes(width: int) -> Tuple[int, ...]:
    """Divisors of ``width`` that yield a multi-block (inexact) ISA."""
    check_positive_int("width", width)
    return tuple(block for block in range(1, width) if width % block == 0)


@dataclass(frozen=True)
class DesignSpace:
    """The legal ISA quadruple space of one adder width, under constraints.

    Parameters
    ----------
    width:
        Adder width the quadruples apply to.
    block_sizes:
        Block sizes to enumerate (default: every divisor of ``width``
        below ``width``; ``width`` itself is the exact adder).
    max_spec / max_correction / max_reduction:
        Upper bounds on the three window widths (each is additionally
        bounded by the block size, the structural-validity rule of
        :class:`~repro.core.config.ISAConfig`).
    max_overhead_bits:
        Cost constraint: bound on ``spec + correction + reduction``,
        the extra logic a configuration spends per block boundary.
    """

    width: int = 32
    block_sizes: Optional[Tuple[int, ...]] = None
    max_spec: Optional[int] = None
    max_correction: Optional[int] = None
    max_reduction: Optional[int] = None
    max_overhead_bits: Optional[int] = None

    #: Registry id resolving this space's operator family (class
    #: attribute; the adaptive explorer and the CLI dispatch entry
    #: construction and surrogate features through it).
    family = "adder"

    def __post_init__(self) -> None:
        check_positive_int("width", self.width)
        for name in ("max_spec", "max_correction", "max_reduction", "max_overhead_bits"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")
        if self.block_sizes is not None:
            blocks = tuple(sorted(set(self.block_sizes)))
            legal = set(legal_block_sizes(self.width))
            illegal = [block for block in blocks if block not in legal]
            if illegal:
                raise ConfigurationError(
                    f"block sizes {illegal} are not proper divisors of width "
                    f"{self.width}; legal sizes: {sorted(legal)}")
            object.__setattr__(self, "block_sizes", blocks)

    # ------------------------------------------------------------------ #
    def resolved_block_sizes(self) -> Tuple[int, ...]:
        """The block sizes this space enumerates over, ascending."""
        if self.block_sizes is not None:
            return self.block_sizes
        return legal_block_sizes(self.width)

    def _bound(self, block: int, limit: Optional[int]) -> int:
        return block if limit is None else min(block, limit)

    def iter_quadruples(self) -> Iterator[Quadruple]:
        """Lazily yield every legal quadruple, in the sorted order.

        The streaming counterpart of :meth:`quadruples`: candidate
        scoring over the combinatorially exploding width-32/64 spaces
        consumes this iterator (building compact arrays as it goes)
        instead of materialising the full tuple list.
        """
        for block in self.resolved_block_sizes():
            spec_limit = self._bound(block, self.max_spec)
            corr_limit = self._bound(block, self.max_correction)
            red_limit = self._bound(block, self.max_reduction)
            for spec in range(spec_limit + 1):
                for correction in range(corr_limit + 1):
                    for reduction in range(red_limit + 1):
                        if (self.max_overhead_bits is not None
                                and spec + correction + reduction > self.max_overhead_bits):
                            continue
                        yield (block, spec, correction, reduction)

    def quadruples(self) -> List[Quadruple]:
        """Every legal quadruple of the space, sorted ascending."""
        return list(self.iter_quadruples())

    @property
    def size(self) -> int:
        """Number of legal quadruples in the space (no list materialised)."""
        return sum(1 for _ in self.iter_quadruples())

    def select(self, max_designs: Optional[int] = None) -> List[Quadruple]:
        """At most ``max_designs`` quadruples, evenly strided over the space.

        The stride keeps the subsample spread across every block size
        instead of clustering at the cheap end of the sorted order, and
        is deterministic — the same arguments always select the same
        designs, so cached sweep results stay reachable across runs.
        """
        quadruples = self.quadruples()
        if max_designs is None or max_designs >= len(quadruples):
            return quadruples
        check_positive_int("max_designs", max_designs)
        return [quadruples[(index * len(quadruples)) // max_designs]
                for index in range(max_designs)]

    def entries(self, max_designs: Optional[int] = None,
                include_exact: bool = True) -> List[DesignEntry]:
        """Design entries of the (subsampled) space, plus the exact baseline.

        The exact adder rides along *outside* the ``max_designs`` budget:
        it is the reference every Pareto frontier is anchored to, not one
        of the enumerated inexact configurations.
        """
        entries = [isa_entry(quadruple, width=self.width)
                   for quadruple in self.select(max_designs)]
        if include_exact:
            entries.append(exact_entry(self.width))
        return entries

    def describe(self) -> str:
        """One-line human-readable summary of the space."""
        constraints = []
        for name in ("max_spec", "max_correction", "max_reduction", "max_overhead_bits"):
            value = getattr(self, name)
            if value is not None:
                constraints.append(f"{name}={value}")
        suffix = f" ({', '.join(constraints)})" if constraints else ""
        return (f"{self.size} legal ISA quadruples at width {self.width}, "
                f"blocks {list(self.resolved_block_sizes())}{suffix}")


def enumerate_quadruples(width: int = 32, **constraints) -> List[Quadruple]:
    """Convenience wrapper: the sorted legal quadruple list of one width."""
    return DesignSpace(width=width, **constraints).quadruples()


def space_entries(width: int = 32, max_designs: Optional[int] = None,
                  include_exact: bool = True, **constraints) -> List[DesignEntry]:
    """Convenience wrapper: design entries of a constrained, subsampled space."""
    return DesignSpace(width=width, **constraints).entries(
        max_designs=max_designs, include_exact=include_exact)
