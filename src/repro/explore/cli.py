"""``repro-explore``: design-space exploration from the command line.

Enumerates the legal ISA quadruple space at the requested width
(:mod:`repro.explore.space`), expands a sweep over clock-period
reductions and workload generators into one characterization-job batch
(:mod:`repro.explore.sweep`), runs it through the
:mod:`repro.runtime` backend stack — so ``--backend multiprocess``
parallelises the sweep and ``--cache-dir`` makes re-runs and grown
sweeps warm — and prints the Pareto frontier of accuracy vs. gate count
vs. clock period, ranked and annotated with the nearest hand-picked
paper design (:mod:`repro.explore.pareto`).

Example::

    repro-explore --width 16 --max-designs 64 --backend multiprocess \
        --jobs 4 --cache-dir ~/.cache/repro-explore

``--adaptive`` switches the exhaustive (or strided) sweep for the
surrogate-directed search of :mod:`repro.explore.adaptive`: the whole
space is the candidate set, but only a budgeted fraction of it is ever
simulated — random-forest surrogates fitted on the measured rounds steer
each next batch toward the Pareto frontier::

    repro-explore --width 32 --adaptive --budget 160 --batch-size 12 \
        --cache-dir ~/.cache/repro-explore
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import format_log_value, format_table
from repro.experiments.common import StudyConfig
from repro.explore.adaptive import AdaptiveSpec, run_adaptive
from repro.explore.pareto import (
    aggregate_points,
    pareto_frontier,
    rank_frontier,
)
from repro.explore.checkpoint import resolve_checkpoint_dir
from repro.explore.sweep import SWEEP_CPR_LEVELS, SweepSpec, run_sweep
from repro.families import family_ids, get_family
from repro.obs.manifest import resolve_telemetry_dir, telemetry_run
from repro.timing.clocking import ClockPlan
from repro.runtime import BACKENDS, RETRIES_ENV, TIMEOUT_ENV, CachingBackend
from repro.runtime.synth_cache import active_synth_cache, configure_synth_cache
from repro.timing.fast_sim import ENGINES
from repro.utils.phases import collect_phases
from repro.workloads.generators import GENERATORS, WorkloadSpec

#: Workload generator kinds the sweep may draw stimulus from (the
#: registry order of :data:`repro.workloads.generators.GENERATORS`).
WORKLOAD_KINDS = tuple(GENERATORS)


def build_parser() -> argparse.ArgumentParser:
    """Argument parser of the ``repro-explore`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description="Enumerate, sweep and Pareto-rank approximate-operator "
                    "configurations through the cached characterization pipeline")
    parser.add_argument("--family", choices=family_ids(), default="adder",
                        help="operator family whose design space is explored "
                             "(default adder)")
    parser.add_argument("--width", type=int, default=32,
                        help="operand width whose quadruple space is explored "
                             "(default 32)")
    parser.add_argument("--max-designs", type=int, default=64, metavar="N",
                        help="design budget: at most N quadruples, evenly strided over "
                             "the sorted space; 0 sweeps the entire space (default 64)")
    parser.add_argument("--block-sizes", type=int, nargs="+", default=None, metavar="B",
                        help="adder only: restrict the space to these block sizes "
                             "(default: every proper divisor of the width)")
    parser.add_argument("--max-overhead-bits", type=int, default=None, metavar="K",
                        help="adder only: cost constraint, only quadruples with "
                             "spec+correction+reduction <= K")
    parser.add_argument("--clock-sweep", type=float, nargs="+", metavar="CPR",
                        default=[cpr * 100 for cpr in SWEEP_CPR_LEVELS],
                        help="clock-period reductions to sweep, in percent of the "
                             "family's safe period (default: 0 5 10 15)")
    parser.add_argument("--workloads", nargs="+", choices=WORKLOAD_KINDS,
                        default=["uniform"],
                        help="workload generators characterised per design (default: uniform)")
    parser.add_argument("--length", type=int, default=1024, metavar="VECTORS",
                        help="operand vectors per workload trace, scaled by "
                             "$REPRO_TRACE_SCALE (default 1024)")
    parser.add_argument("--simulator", choices=("event", "fast"), default="fast",
                        help="timing simulator tier (default fast; the event tier is the "
                             "glitch-aware reference and orders of magnitude slower)")
    parser.add_argument("--engine", choices=ENGINES, default="auto",
                        help="execution engine of the fast simulator (default auto)")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="execution backend scheduling the sweep's jobs "
                             "(default: $REPRO_BACKEND or serial)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes of the multiprocess backend "
                             "(default: $REPRO_WORKERS or one per CPU)")
    parser.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                        help="persistent result cache: a re-run (or a grown sweep) "
                             "simulates only unseen jobs (default: $REPRO_CACHE_DIR, "
                             "or no cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even when $REPRO_CACHE_DIR is set")
    parser.add_argument("--cache-limit-mb", type=float, default=None, metavar="MB",
                        help="byte budget of the result cache; oldest entries are "
                             "pruned after writes (default: $REPRO_CACHE_LIMIT_MB, "
                             "or unbounded)")
    parser.add_argument("--synth-cache-dir", type=str, default=None, metavar="DIR",
                        help="persistent synthesis cache: designs synthesized by any "
                             "run or process load from disk bit-identically instead "
                             "of re-running the flow (default: $REPRO_SYNTH_CACHE, "
                             "or no cache)")
    parser.add_argument("--no-synth-cache", action="store_true",
                        help="disable the synthesis cache even when $REPRO_SYNTH_CACHE "
                             "is set")
    parser.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                        help="journal completed job batches to DIR so an interrupted "
                             "exploration can resume (default: $REPRO_CHECKPOINT_DIR, "
                             "or no checkpointing)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted exploration from the checkpoint "
                             "journal: journaled scores are replayed and only "
                             "unfinished jobs are simulated (requires --checkpoint-dir "
                             "or $REPRO_CHECKPOINT_DIR)")
    parser.add_argument("--max-retries", type=int, default=None, metavar="N",
                        help="transient-failure retries per task, on top of the first "
                             "attempt (exports $REPRO_MAX_RETRIES; default: "
                             "$REPRO_MAX_RETRIES or 2)")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="SECONDS",
                        help="per-task wall-clock budget; stalled multiprocess tasks "
                             "are re-dispatched, over-budget serial tasks retried "
                             "(exports $REPRO_TASK_TIMEOUT; default: "
                             "$REPRO_TASK_TIMEOUT or none)")
    parser.add_argument("--adaptive", action="store_true",
                        help="surrogate-directed search instead of a sweep: simulate "
                             "only a budgeted fraction of the space, steering each "
                             "batch with random-forest surrogates fitted on the "
                             "measured rounds (--max-designs is ignored; the whole "
                             "space is the candidate set)")
    parser.add_argument("--budget-fraction", type=float, default=0.2, metavar="F",
                        help="adaptive simulation budget as a fraction of the "
                             "candidate space, in (0, 1] (default 0.2)")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="adaptive simulation budget as an absolute design count "
                             "(overrides --budget-fraction)")
    parser.add_argument("--batch-size", type=int, default=12, metavar="N",
                        help="designs simulated per adaptive round (default 12)")
    parser.add_argument("--rounds", type=int, default=30, metavar="N",
                        help="maximum adaptive acquisition rounds after the seed "
                             "batch (default 30)")
    parser.add_argument("--seed", type=int, default=7, help="master random seed")
    parser.add_argument("--timings", action="store_true",
                        help="append a phase breakdown (synthesize — split into "
                             "synth.optimize / synth.sizing / synth.sta sub-phases — "
                             "then lower / pack / simulate / score) to the footer; "
                             "multiprocess worker phases are merged back into the "
                             "breakdown, with the driver's blocked time reported "
                             "as schedule.wait")
    parser.add_argument("--telemetry-dir", type=str, default=None, metavar="DIR",
                        help="append a run manifest (config, host, phases, worker "
                             "utilisation, cache metrics) to DIR/manifests.jsonl; "
                             "summarise with repro-stats "
                             "(default: $REPRO_TELEMETRY_DIR, or no telemetry)")
    parser.add_argument("--json", action="store_true",
                        help="emit the exploration as structured JSON (frontier "
                             "rows plus the run manifest) instead of the text report")
    parser.add_argument("--top", type=int, default=0, metavar="N",
                        help="print only the N best-ranked frontier rows (default: all)")
    parser.add_argument("--output", type=str, default=None,
                        help="optional path for the report (stdout is always printed)")
    return parser


def study_config(arguments) -> StudyConfig:
    """The runtime study configuration implied by the CLI arguments."""
    overrides = {"width": arguments.width, "simulator": arguments.simulator,
                 "engine": arguments.engine, "seed": arguments.seed}
    if arguments.backend is not None:
        overrides["backend"] = arguments.backend
    if arguments.jobs is not None:
        overrides["workers"] = arguments.jobs
    if arguments.no_cache:
        overrides["cache_dir"] = None
    elif arguments.cache_dir is not None:
        overrides["cache_dir"] = arguments.cache_dir
    if arguments.cache_limit_mb is not None:
        overrides["cache_limit_mb"] = arguments.cache_limit_mb
    return StudyConfig(**overrides)


def design_space(arguments):
    """The quadruple space the CLI arguments select, from the family."""
    family = get_family(arguments.family)
    constraints = {}
    if arguments.family == "adder":
        if arguments.block_sizes:
            constraints["block_sizes"] = tuple(arguments.block_sizes)
        constraints["max_overhead_bits"] = arguments.max_overhead_bits
    return family.design_space(arguments.width, **constraints)


def build_sweep(arguments, config: StudyConfig,
                space=None, template: bool = False) -> SweepSpec:
    """Expand the CLI arguments into the sweep specification.

    With ``template=True`` the entries are just the exact baseline —
    the shape the adaptive search wants, replacing the entries batch by
    batch via :meth:`SweepSpec.with_entries`.
    """
    family = get_family(arguments.family)
    space = space if space is not None else design_space(arguments)
    if template:
        entries = [family.exact_entry(arguments.width)]
    else:
        max_designs = arguments.max_designs if arguments.max_designs > 0 else None
        entries = space.entries(max_designs=max_designs)
    length = config.scaled_length(arguments.length)
    workloads = tuple(
        WorkloadSpec(kind=kind, length=length, width=arguments.width,
                     seed=arguments.seed + index)
        for index, kind in enumerate(arguments.workloads))
    plan = ClockPlan(safe_period=family.safe_period(arguments.width),
                     cpr_levels=tuple(cpr / 100.0 for cpr in arguments.clock_sweep))
    return SweepSpec(entries=tuple(entries), clock_plan=plan, workloads=workloads,
                     simulator=arguments.simulator, engine=arguments.engine,
                     synthesis=config.synthesis, width=arguments.width)


def nearest_paper_label(point, family) -> str:
    """How close a frontier point sits to a hand-picked paper design."""
    if point.is_exact:
        return "exact (baseline)"
    annotation = family.annotate(point.quadruple)
    if annotation is None:
        return "—"
    nearest, distance = annotation
    if distance == 0:
        return f"{nearest} (paper design)"
    return f"{nearest} (d={distance:.1f})"


def frontier_rows(ranked, family) -> List[dict]:
    """JSON-ready dicts of the ranked frontier (the ``--json`` payload)."""
    return [{
        "rank": rank,
        "design": point.design,
        "quadruple": list(point.quadruple) if point.quadruple else None,
        "cpr": point.cpr,
        "clock_period_s": point.clock_period,
        "rms_re": point.rms_re,
        "error_rate": point.error_rate,
        "provably_exact": bool(point.provably_exact),
        "gates": point.gates,
        "area_proxy_s": point.area_proxy,
        "nearest": nearest_paper_label(point, family),
    } for rank, point in enumerate(ranked, start=1)]


def frontier_table(ranked, total_candidates: int, top: int = 0,
                   family=None) -> str:
    """The ranked-frontier report table."""
    if family is None:
        family = get_family("adder")
    rows = []
    shown = ranked if top <= 0 else ranked[:top]
    for rank, point in enumerate(shown, start=1):
        nearest_label = nearest_paper_label(point, family)
        rows.append((
            rank,
            point.design,
            f"{point.cpr * 100:g}%",
            f"{point.clock_period * 1e12:.0f}",
            format_log_value(point.rms_re * 100.0),
            f"{point.error_rate:.4f}",
            "yes" if point.provably_exact else "",
            point.gates,
            f"{point.area_proxy * 1e12:.0f}",
            nearest_label,
        ))
    title = (f"Pareto frontier — {len(ranked)} of {total_candidates} "
             "(design x CPR) points non-dominated in "
             "(guarantee, joint RMS RE, gates, area, clock period)")
    return format_table(
        ["rank", "design", "CPR", "clock (ps)", "joint RMS RE (%)", "error rate",
         "exact-by-design", "gates", "area (ps)", "nearest paper design"],
        rows, title=title)


@dataclass
class ExplorationReport:
    """Text report plus the structured payload of one exploration run."""

    text: str
    payload: dict


def run_exploration(arguments) -> ExplorationReport:
    """Run the full exploration; returns the report text and JSON payload."""
    started = time.time()
    config = study_config(arguments)
    family = get_family(arguments.family)
    space = design_space(arguments)
    spec = build_sweep(arguments, config, space=space, template=arguments.adaptive)

    if arguments.no_synth_cache:
        configure_synth_cache(None)
    elif arguments.synth_cache_dir is not None:
        # Exports $REPRO_SYNTH_CACHE so multiprocess workers spawned by
        # the backend read through the same on-disk cache.
        configure_synth_cache(arguments.synth_cache_dir)
    # Resilience knobs export through the environment for the same
    # reason: backends resolve their RetryPolicy from it at construction,
    # worker processes inherit it.
    if arguments.max_retries is not None:
        os.environ[RETRIES_ENV] = str(arguments.max_retries)
    if arguments.task_timeout is not None:
        os.environ[TIMEOUT_ENV] = str(arguments.task_timeout)
    checkpoint_dir = resolve_checkpoint_dir(arguments.checkpoint_dir)
    synth_cache = active_synth_cache()
    synth_baseline = (synth_cache.stats.snapshot()
                      if synth_cache is not None else None)

    backend = config.runtime_backend()
    stats_baseline = (backend.stats.snapshot()
                      if isinstance(backend, CachingBackend) else None)
    if arguments.adaptive:
        adaptive_spec = AdaptiveSpec(
            space=space, sweep=spec, batch_size=arguments.batch_size,
            budget=arguments.budget, budget_fraction=arguments.budget_fraction,
            max_rounds=arguments.rounds, seed=arguments.seed)
        adaptive = run_adaptive(
            adaptive_spec, backend=backend,
            progress=lambda log: print(f"  {log.describe()}", file=sys.stderr),
            checkpoint_dir=checkpoint_dir, resume=arguments.resume)
        points = adaptive.points
        jobs_total = (adaptive.simulated + 1) * len(spec.workloads)
        mode_lines = [
            f"search    : {adaptive.describe()}",
        ]
        explored_note = (f"explored {adaptive.simulated} of {adaptive.candidates} "
                         f"designs in {len(adaptive.rounds)} rounds")
    else:
        result = run_sweep(spec, backend=backend,
                           checkpoint_dir=checkpoint_dir, resume=arguments.resume)
        points = result.points
        jobs_total = spec.job_count
        mode_lines = [f"sweep     : {spec.describe()}"]
        explored_note = (f"explored {len(spec.entries)} designs / "
                         f"{spec.point_count} points")
        if result.resumed_jobs:
            explored_note += (f", resumed {result.resumed_jobs} jobs from "
                              f"the checkpoint journal")

    candidates = aggregate_points(points)
    ranked = rank_frontier(pareto_frontier(candidates))

    title = ("ISA design-space exploration" if arguments.family == "adder"
             else f"{arguments.family} design-space exploration")
    sections: List[str] = [
        title,
        f"space     : {space.describe()}",
        *mode_lines,
        f"workload  : {spec.workloads[0].length} vectors per trace, "
        f"simulator={spec.simulator}, engine={spec.engine}",
        "",
        frontier_table(ranked, total_candidates=len(candidates), top=arguments.top,
                       family=family),
    ]

    elapsed = time.time() - started
    cache_note = ""
    if stats_baseline is not None:
        run_stats = backend.stats.since(stats_baseline)
        simulated = run_stats.misses
        cache_note = (f", cache={run_stats.describe()} [{backend.store.root}]"
                      f", simulated {simulated} of {jobs_total} jobs")
    if synth_baseline is not None:
        synth_stats = synth_cache.stats.since(synth_baseline)
        cache_note += (f", synth-cache={synth_stats.describe()} "
                       f"[{synth_cache.store.root}]")
    sections.append(
        f"({explored_note} in "
        f"{elapsed:.1f} s, backend={backend.describe()}, seed={arguments.seed}"
        f"{cache_note})")

    payload = {
        "family": arguments.family,
        "width": arguments.width,
        "space": space.describe(),
        "mode": "adaptive" if arguments.adaptive else "sweep",
        "explored": explored_note,
        "candidates": len(candidates),
        "frontier_size": len(ranked),
        "backend": backend.describe(),
        "seed": arguments.seed,
        "elapsed_s": elapsed,
        "frontier": frontier_rows(ranked, family),
    }
    return ExplorationReport(text="\n".join(sections), payload=payload)


def main(argv: Optional[List[str]] = None) -> int:
    """Console-script entry point."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.no_cache and arguments.cache_dir:
        parser.error("--no-cache and --cache-dir are mutually exclusive")
    if arguments.no_synth_cache and arguments.synth_cache_dir:
        parser.error("--no-synth-cache and --synth-cache-dir are mutually exclusive")
    if arguments.width < 2:
        parser.error("--width must be at least 2 (a 1-bit operand has no quadruple space)")
    family = get_family(arguments.family)
    if arguments.width > family.max_width:
        parser.error(f"--width must be at most {family.max_width} for the "
                     f"{arguments.family} family")
    if arguments.family != "adder" and (arguments.block_sizes
                                        or arguments.max_overhead_bits is not None):
        parser.error("--block-sizes and --max-overhead-bits apply to the adder "
                     "family only")
    if arguments.length < 16:
        parser.error("--length must be at least 16 vectors")
    if not 0.0 < arguments.budget_fraction <= 1.0:
        parser.error("--budget-fraction must be in (0, 1]")
    if arguments.budget is not None and arguments.budget < 1:
        parser.error("--budget must be at least 1 design")
    if arguments.batch_size < 1:
        parser.error("--batch-size must be at least 1 design")
    if arguments.rounds < 0:
        parser.error("--rounds must be non-negative")
    if arguments.max_retries is not None and arguments.max_retries < 0:
        parser.error("--max-retries must be non-negative")
    if arguments.task_timeout is not None and arguments.task_timeout <= 0:
        parser.error("--task-timeout must be positive")
    if arguments.resume and resolve_checkpoint_dir(arguments.checkpoint_dir) is None:
        parser.error("--resume requires --checkpoint-dir (or $REPRO_CHECKPOINT_DIR)")
    with telemetry_run(resolve_telemetry_dir(arguments.telemetry_dir),
                       command="repro-explore",
                       config={"family": arguments.family,
                               "width": arguments.width,
                               "adaptive": arguments.adaptive,
                               "workloads": list(arguments.workloads),
                               "length": arguments.length},
                       inline=arguments.json) as telemetry:
        if arguments.timings:
            with collect_phases() as phases:
                report = run_exploration(arguments)
            report.text += f"\n(timings: {phases.describe()})"
        else:
            report = run_exploration(arguments)
    if arguments.json:
        payload = dict(report.payload)
        if telemetry.manifest is not None:
            payload["manifest"] = telemetry.manifest
        output = json.dumps(payload, indent=2, sort_keys=True)
    else:
        output = report.text
    print(output)
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
