"""repro — reproduction of "Combining Structural and Timing Errors in
Overclocked Inexact Speculative Adders" (Jiao, Camus et al., DATE 2017).

The package is organised bottom-up:

* :mod:`repro.core` — behavioural Inexact Speculative Adder (ISA) and
  exact adder models plus the diamond/gold/silver error-combination
  methodology.
* :mod:`repro.circuit`, :mod:`repro.synth`, :mod:`repro.timing` — the
  gate-level substrate replacing the paper's commercial synthesis and
  SDF-annotated simulation flow.
* :mod:`repro.ml` — the from-scratch random-forest bit-level
  timing-error prediction model.
* :mod:`repro.analysis`, :mod:`repro.workloads` — error metrics,
  distributions and input workloads.
* :mod:`repro.runtime` — the characterization runtime: job batches
  scheduled on pluggable serial/multiprocess execution backends.
* :mod:`repro.explore` — design-space exploration: enumerate the legal
  ISA quadruple space, sweep it through the cached job pipeline and
  Pareto-rank the outcome (the ``repro-explore`` CLI).
* :mod:`repro.experiments` — drivers regenerating Figs. 7-10 of the
  paper.

Quick start::

    from repro import ISAConfig, InexactSpeculativeAdder

    adder = InexactSpeculativeAdder(ISAConfig.from_quadruple((8, 0, 0, 4)))
    result = adder.add_detailed(0x1234_5678, 0x0FED_CBA9)
    print(result.value, result.structural_error)
"""

from repro._version import __version__
from repro.core.combination import CombinedErrors, combine_errors
from repro.core.config import ISAConfig
from repro.core.exact import ExactAdder
from repro.core.isa import InexactSpeculativeAdder
from repro.experiments.common import StudyConfig
from repro.explore import DesignSpace, SweepSpec, run_sweep
from repro.ml.model import BitLevelTimingModel, TimingModelOptions
from repro.runtime import CharacterizationJob, run_jobs
from repro.synth.flow import SynthesisOptions, SynthesizedDesign, synthesize
from repro.timing.clocking import ClockPlan
from repro.workloads.generators import uniform_workload

__all__ = [
    "__version__",
    "ISAConfig",
    "InexactSpeculativeAdder",
    "ExactAdder",
    "CombinedErrors",
    "combine_errors",
    "ClockPlan",
    "SynthesisOptions",
    "SynthesizedDesign",
    "synthesize",
    "BitLevelTimingModel",
    "TimingModelOptions",
    "StudyConfig",
    "CharacterizationJob",
    "run_jobs",
    "DesignSpace",
    "SweepSpec",
    "run_sweep",
    "uniform_workload",
]
