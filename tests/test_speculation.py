"""Unit tests for repro.core.speculation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.speculation import exact_carry_into, speculate_carry, window_generate, window_propagate
from repro.exceptions import ConfigurationError


class TestWindowSignals:
    def test_generate_when_window_overflows(self):
        # window bits 4..7 of a: 0xF and b: 0x1 -> generates a carry
        assert window_generate(0xF0, 0x10, 8, 4) == 1

    def test_no_generate(self):
        assert window_generate(0x10, 0x20, 8, 4) == 0

    def test_propagate_full_window(self):
        # a window of 0b1010 vs 0b0101 propagates on every bit
        assert window_propagate(0xA0, 0x50, 8, 4) == 1

    def test_propagate_partial(self):
        assert window_propagate(0xA0, 0x40, 8, 4) == 0

    def test_zero_window_degenerates(self):
        assert window_generate(0xFF, 0xFF, 8, 0) == 0
        assert window_propagate(0xFF, 0xFF, 8, 0) == 1


class TestSpeculateCarry:
    def test_spec_zero_guesses_constant(self):
        assert speculate_carry(0xFFFF, 0xFFFF, 8, 0, guess=0) == 0
        assert speculate_carry(0x0, 0x0, 8, 0, guess=1) == 1

    def test_generate_dominates_guess(self):
        assert speculate_carry(0xF0, 0x10, 8, 4, guess=0) == 1

    def test_propagating_window_uses_guess(self):
        assert speculate_carry(0xA0, 0x50, 8, 4, guess=0) == 0
        assert speculate_carry(0xA0, 0x50, 8, 4, guess=1) == 1

    def test_array_inputs(self):
        a = np.array([0xF0, 0x10], dtype=np.uint64)
        b = np.array([0x10, 0x20], dtype=np.uint64)
        spec = speculate_carry(a, b, 8, 4)
        assert spec.tolist() == [1, 0]

    def test_window_below_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            speculate_carry(1, 1, 2, 4)

    def test_bad_guess_rejected(self):
        with pytest.raises(ConfigurationError):
            speculate_carry(1, 1, 8, 2, guess=2)

    @given(st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=1, max_value=8))
    def test_speculation_correct_unless_propagating(self, a, b, spec_size):
        """When the window does not fully propagate, speculation equals the true carry."""
        boundary = 8
        true_carry = exact_carry_into(a, b, boundary, cin=0)
        if window_propagate(a, b, boundary, min(spec_size, boundary)) == 0:
            assert speculate_carry(a, b, boundary, min(spec_size, boundary)) == true_carry


class TestExactCarryInto:
    def test_position_zero_returns_cin(self):
        assert exact_carry_into(5, 7, 0, cin=1) == 1

    def test_simple_carry(self):
        assert exact_carry_into(0xFF, 0x01, 8) == 1
        assert exact_carry_into(0x0F, 0x01, 8) == 0

    def test_negative_position_rejected(self):
        with pytest.raises(ConfigurationError):
            exact_carry_into(1, 1, -1)

    @given(st.integers(min_value=0, max_value=2**20 - 1),
           st.integers(min_value=0, max_value=2**20 - 1),
           st.integers(min_value=0, max_value=20))
    def test_matches_full_addition(self, a, b, position):
        expected = ((a + b) >> position) & 1 if position == 0 else None
        carry = exact_carry_into(a, b, position)
        # reconstruct: sum bits below position + carry * 2^position == (a+b) restricted
        low_mask = (1 << position) - 1
        assert ((a & low_mask) + (b & low_mask)) >> position == carry
