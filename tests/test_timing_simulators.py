"""Tests for the fast and event-driven timing simulators and their agreement."""

import numpy as np
import pytest

from repro.circuit.builder import NetlistBuilder
from repro.circuit.sdf import DelayAnnotation
from repro.circuit.library import default_library
from repro.exceptions import SimulationError
from repro.timing.event_sim import EventDrivenSimulator
from repro.timing.fast_sim import FastTimingSimulator
from repro.timing.sta import analyze_timing
from repro.workloads.generators import uniform_workload


def inverter_chain(length=3):
    builder = NetlistBuilder("chain")
    net = builder.input_bit("x")
    for _ in range(length):
        net = builder.inv(net)
    builder.output_bus("S", [net])
    return builder.build()


class TestFastSimulatorBasics:
    def test_slow_clock_latches_new_value(self):
        netlist = inverter_chain(3)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        simulator = FastTimingSimulator(netlist, annotation)
        trace = simulator.run_trace({"x": np.array([0, 1, 0, 1])}, clock_period=1e-9)
        assert trace.cycle_error_rate() == 0.0

    def test_fast_clock_latches_stale_value(self):
        netlist = inverter_chain(3)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        simulator = FastTimingSimulator(netlist, annotation)
        chain_delay = analyze_timing(netlist, annotation).critical_path_delay
        trace = simulator.run_trace({"x": np.array([0, 1, 0, 1])},
                                    clock_period=chain_delay * 0.5)
        # every transition toggles the output, and every one arrives too late
        assert trace.cycle_error_rate() == 1.0
        assert np.array_equal(trace.sampled_words, 1 - trace.settled_words)

    def test_settled_matches_logic(self, synthesized_small_isa, short_trace16):
        simulator = FastTimingSimulator(synthesized_small_isa.netlist,
                                        synthesized_small_isa.annotation)
        trace = simulator.run_trace(short_trace16.as_operands(), clock_period=1e-9)
        expected = synthesized_small_isa.netlist.compute_words(
            {"A": short_trace16.a, "B": short_trace16.b,
             "cin": np.zeros(short_trace16.length, dtype=np.uint64)})
        assert np.array_equal(trace.settled_words, expected[1:])

    def test_multi_clock_shares_settled_values(self, synthesized_small_isa, short_trace16):
        simulator = FastTimingSimulator(synthesized_small_isa.netlist,
                                        synthesized_small_isa.annotation)
        traces = simulator.run_trace_multi(short_trace16.as_operands(), [1e-9, 1e-10, 1e-11])
        settled = [trace.settled_words for trace in traces.values()]
        assert np.array_equal(settled[0], settled[1])
        assert np.array_equal(settled[1], settled[2])
        # more aggressive clocks can only add errors
        rates = [traces[clk].cycle_error_rate() for clk in (1e-9, 1e-10, 1e-11)]
        assert rates[0] <= rates[1] <= rates[2]

    def test_monotone_in_clock_period(self, synthesized_exact16, short_trace16, clock_plan):
        simulator = FastTimingSimulator(synthesized_exact16.netlist,
                                        synthesized_exact16.annotation)
        traces = simulator.run_trace_multi(short_trace16.as_operands(), clock_plan.periods)
        rates = [traces[period].cycle_error_rate() for period in clock_plan.periods]
        assert rates == sorted(rates)

    def test_bad_clock_rejected(self, synthesized_small_isa, short_trace16):
        simulator = FastTimingSimulator(synthesized_small_isa.netlist,
                                        synthesized_small_isa.annotation)
        with pytest.raises(SimulationError):
            simulator.run_trace(short_trace16.as_operands(), clock_period=0.0)

    def test_short_trace_rejected(self, synthesized_small_isa):
        simulator = FastTimingSimulator(synthesized_small_isa.netlist,
                                        synthesized_small_isa.annotation)
        operands = {"A": np.array([1], dtype=np.uint64), "B": np.array([1], dtype=np.uint64),
                    "cin": np.array([0], dtype=np.uint64)}
        with pytest.raises(SimulationError):
            simulator.run_trace(operands, clock_period=1e-10)

    def test_unknown_operand_rejected(self, synthesized_small_isa):
        simulator = FastTimingSimulator(synthesized_small_isa.netlist,
                                        synthesized_small_isa.annotation)
        with pytest.raises(SimulationError):
            simulator.run_trace({"Z": np.array([1, 2], dtype=np.uint64)}, clock_period=1e-10)

    def test_chunking_gives_identical_results(self, synthesized_small_isa, short_trace16):
        simulator = FastTimingSimulator(synthesized_small_isa.netlist,
                                        synthesized_small_isa.annotation)
        small_chunks = simulator.run_trace(short_trace16.as_operands(), 2.6e-10, chunk_size=17)
        big_chunks = simulator.run_trace(short_trace16.as_operands(), 2.6e-10, chunk_size=4096)
        assert np.array_equal(small_chunks.sampled_words, big_chunks.sampled_words)


class TestEventSimulatorBasics:
    def test_waveform_of_inverter_chain(self):
        netlist = inverter_chain(2)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        simulator = EventDrivenSimulator(netlist, annotation)
        waveforms = simulator.simulate_transition({"x": 0}, {"x": 1})
        output = netlist.outputs[0]
        inv_delay = default_library().delay("INV")
        assert waveforms[output].final_value == 1
        assert waveforms[output].value_at(0.0) == 0
        assert waveforms[output].value_at(3 * inv_delay) == 1
        assert waveforms["x"].transition_count == 1

    def test_glitch_is_captured(self):
        """A reconvergent XOR with unequal path delays produces a transient pulse."""
        builder = NetlistBuilder("glitch")
        a = builder.input_bit("a")
        delayed = builder.gate("BUF", builder.gate("BUF", a))
        builder.output_bus("S", [builder.xor2(a, delayed)])
        netlist = builder.build()
        annotation = DelayAnnotation.nominal(netlist, default_library())
        simulator = EventDrivenSimulator(netlist, annotation)
        waveforms = simulator.simulate_transition({"a": 0}, {"a": 1})
        output = netlist.outputs[0]
        # settled value is 0 (a xor a) but the waveform pulses high in between
        assert waveforms[output].final_value == 0
        assert waveforms[output].transition_count >= 2

    def test_settled_matches_logic(self, synthesized_small_isa, short_trace16):
        simulator = EventDrivenSimulator(synthesized_small_isa.netlist,
                                         synthesized_small_isa.annotation)
        operands = {"A": short_trace16.a[:40], "B": short_trace16.b[:40],
                    "cin": np.zeros(40, dtype=np.uint64)}
        trace = simulator.run_trace(operands, clock_period=1e-9)
        expected = synthesized_small_isa.netlist.compute_words(operands)
        assert np.array_equal(trace.settled_words, expected[1:])
        assert trace.cycle_error_rate() == 0.0

    def test_missing_input_rejected(self, synthesized_small_isa):
        simulator = EventDrivenSimulator(synthesized_small_isa.netlist,
                                         synthesized_small_isa.annotation)
        with pytest.raises(SimulationError):
            simulator.run_trace({"A": np.array([1, 2], dtype=np.uint64)}, clock_period=1e-10)


class TestSimulatorAgreement:
    """The fast simulator is a no-glitch approximation of the event-driven one."""

    def test_identical_when_clock_is_safe(self, synthesized_small_isa, short_trace16):
        operands = {"A": short_trace16.a[:60], "B": short_trace16.b[:60],
                    "cin": np.zeros(60, dtype=np.uint64)}
        fast = FastTimingSimulator(synthesized_small_isa.netlist,
                                   synthesized_small_isa.annotation)
        event = EventDrivenSimulator(synthesized_small_isa.netlist,
                                     synthesized_small_isa.annotation)
        safe = synthesized_small_isa.critical_path_delay * 1.01
        fast_trace = fast.run_trace(operands, safe)
        event_trace = event.run_trace(operands, safe)
        assert np.array_equal(fast_trace.sampled_words, event_trace.sampled_words)

    def test_error_rates_are_comparable_under_overclocking(self, synthesized_small_isa,
                                                           short_trace16):
        """The two models disagree only on glitch-related corner cases.

        The fast simulator ignores glitches (optimistic) but also assumes a
        changed output waits for its slowest changed input (pessimistic for
        multi-path cones), so rates are close but not ordered; both must
        stay in the same regime and the settled values must agree exactly.
        """
        operands = {"A": short_trace16.a[:80], "B": short_trace16.b[:80],
                    "cin": np.zeros(80, dtype=np.uint64)}
        fast = FastTimingSimulator(synthesized_small_isa.netlist,
                                   synthesized_small_isa.annotation)
        event = EventDrivenSimulator(synthesized_small_isa.netlist,
                                     synthesized_small_isa.annotation)
        clk = synthesized_small_isa.critical_path_delay * 0.9
        fast_trace = fast.run_trace(operands, clk)
        event_trace = event.run_trace(operands, clk)
        assert np.array_equal(fast_trace.settled_words, event_trace.settled_words)
        assert abs(fast_trace.cycle_error_rate() - event_trace.cycle_error_rate()) <= 0.5
        assert abs(float(fast_trace.bit_error_rate().mean())
                   - float(event_trace.bit_error_rate().mean())) <= 0.2
