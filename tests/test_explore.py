"""Tests of the design-space exploration subsystem (repro.explore).

The contract under test: enumeration yields exactly the legal quadruple
space (validity, counts, deterministic subsampling); a sweep batch
through the job pipeline is bit-identical point by point to per-job
serial execution, across both execution backends; Pareto extraction
satisfies the dominance axioms and anchors on the exact baseline; the
``repro-explore`` CLI is warm-cache reproducible with zero simulated
jobs; and the two cache satellites — the byte budget and the per-run
hit/miss counters — behave.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import ISAConfig
from repro.exceptions import AnalysisError, ConfigurationError
from repro.experiments.common import StudyConfig, shutdown_backends
from repro.explore.cli import main as explore_main
from repro.explore.pareto import (
    ParetoPoint,
    aggregate_points,
    dominates,
    nearest_paper_design,
    pareto_frontier,
    quadruple_distance,
    rank_frontier,
)
from repro.explore.space import DesignSpace, enumerate_quadruples, legal_block_sizes
from repro.explore.sweep import (
    SweepSpec,
    run_sweep,
    score_characterization,
    sweep_clock_plan,
)
from repro.runtime import CachingBackend, MultiprocessBackend, SerialBackend, job_digest
from repro.workloads.generators import WorkloadSpec


def small_spec(width=16, max_designs=4, length=96, workloads=("uniform",),
               cpr_levels=(0.0, 0.10), **kwargs) -> SweepSpec:
    """A quick sweep over a few designs plus the exact baseline."""
    entries = DesignSpace(width=width).entries(max_designs=max_designs)
    specs = tuple(WorkloadSpec(kind, length, width=width, seed=11 + index)
                  for index, kind in enumerate(workloads))
    return SweepSpec(entries=tuple(entries), clock_plan=sweep_clock_plan(cpr_levels),
                     workloads=specs, width=width, **kwargs)


class TestSpaceEnumeration:
    def test_legal_block_sizes(self):
        assert legal_block_sizes(16) == (1, 2, 4, 8)
        assert legal_block_sizes(8) == (1, 2, 4)
        assert legal_block_sizes(2) == (1,)

    def test_count_matches_closed_form(self):
        # Per block b the windows each range over 0..b: (b+1)^3 quadruples.
        assert len(enumerate_quadruples(8)) == 2 ** 3 + 3 ** 3 + 5 ** 3
        assert len(enumerate_quadruples(16)) == 2 ** 3 + 3 ** 3 + 5 ** 3 + 9 ** 3
        assert DesignSpace(width=16).size == 889

    def test_every_quadruple_is_constructible(self):
        for quadruple in enumerate_quadruples(8):
            config = ISAConfig.from_quadruple(quadruple, width=8)
            assert not config.is_exact  # block == width is excluded

    def test_sorted_and_deterministic(self):
        space = DesignSpace(width=16)
        quadruples = space.quadruples()
        assert quadruples == sorted(quadruples)
        assert quadruples == space.quadruples()

    def test_iterator_matches_list(self):
        """iter_quadruples is the lazy twin of quadruples(): same items,
        same order, same counts, with nothing materialised for size."""
        for width in (8, 16, 32):
            space = DesignSpace(width=width)
            iterated = list(space.iter_quadruples())
            assert iterated == space.quadruples()
            assert space.size == len(iterated)
        constrained = DesignSpace(width=16, block_sizes=(8,), max_overhead_bits=3)
        assert list(constrained.iter_quadruples()) == constrained.quadruples()
        assert constrained.size == len(constrained.quadruples())

    def test_iterator_is_lazy(self):
        iterator = DesignSpace(width=64).iter_quadruples()
        assert next(iterator) == (1, 0, 0, 0)
        assert next(iterator) == (1, 0, 0, 1)

    def test_select_subsample(self):
        space = DesignSpace(width=16)
        subset = space.select(max_designs=64)
        assert len(subset) == 64
        assert len(set(subset)) == 64
        assert set(subset) <= set(space.quadruples())
        assert subset == space.select(max_designs=64)  # deterministic
        # strided selection spans the block sizes, not just the cheap end
        assert {quadruple[0] for quadruple in subset} == {1, 2, 4, 8}
        assert space.select(max_designs=10 ** 6) == space.quadruples()
        assert space.select(None) == space.quadruples()

    def test_entries_append_exact_outside_budget(self):
        entries = DesignSpace(width=16).entries(max_designs=8)
        assert len(entries) == 9
        assert entries[-1].is_exact
        assert all(not entry.is_exact for entry in entries[:-1])
        no_exact = DesignSpace(width=16).entries(max_designs=8, include_exact=False)
        assert len(no_exact) == 8

    def test_constraints(self):
        space = DesignSpace(width=16, block_sizes=(4, 8), max_spec=1,
                            max_correction=0, max_reduction=2)
        quadruples = space.quadruples()
        assert all(quadruple[0] in (4, 8) for quadruple in quadruples)
        assert all(quadruple[1] <= 1 and quadruple[2] == 0 and quadruple[3] <= 2
                   for quadruple in quadruples)
        assert len(quadruples) == 2 * 2 * 1 * 3

    def test_max_overhead_bits(self):
        space = DesignSpace(width=16, block_sizes=(8,), max_overhead_bits=3)
        assert all(sum(quadruple[1:]) <= 3 for quadruple in space.quadruples())

    def test_invalid_constraints_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignSpace(width=16, block_sizes=(3,))  # not a divisor
        with pytest.raises(ConfigurationError):
            DesignSpace(width=16, block_sizes=(16,))  # the exact adder
        with pytest.raises(ConfigurationError):
            DesignSpace(width=16, max_spec=-1)


class TestProvablyExact:
    def test_two_block_full_window_is_exact_by_design(self):
        assert ISAConfig.from_quadruple((8, 8, 0, 0), width=16).is_provably_exact
        assert ISAConfig.from_quadruple((8, 8, 4, 2), width=16).is_provably_exact
        assert ISAConfig.exact(16).is_provably_exact

    def test_everything_else_is_not(self):
        assert not ISAConfig.from_quadruple((8, 7, 8, 8), width=16).is_provably_exact
        assert not ISAConfig.from_quadruple((4, 4, 0, 0), width=16).is_provably_exact
        assert not ISAConfig(width=16, block_size=8, spec_size=8,
                             speculate_on_propagate=1).is_provably_exact


class TestSweepExpansion:
    def test_job_and_point_counts(self):
        spec = small_spec(max_designs=3, workloads=("uniform", "ramp"))
        assert spec.job_count == 4 * 2  # 3 ISA + exact, per workload
        assert spec.point_count == spec.job_count * 2  # two CPR levels
        jobs = spec.jobs()
        assert len(jobs) == spec.job_count
        # workload-major order, shared trace object per workload
        assert jobs[0].trace is jobs[3].trace
        assert jobs[4].trace is not jobs[0].trace
        assert all(job.clock_periods == tuple(spec.clock_plan.periods) for job in jobs)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(entries=(), workloads=(WorkloadSpec("uniform", 32, width=16),),
                      width=16)
        entries = tuple(DesignSpace(width=16).entries(max_designs=1))
        with pytest.raises(ConfigurationError):
            SweepSpec(entries=entries, workloads=(), width=16)
        with pytest.raises(ConfigurationError):
            SweepSpec(entries=entries,
                      workloads=(WorkloadSpec("uniform", 32, width=32),), width=16)
        with pytest.raises(ConfigurationError):
            SweepSpec(entries=entries, simulator="spice",
                      workloads=(WorkloadSpec("uniform", 32, width=16),), width=16)


class TestSweepBitIdentity:
    def test_batch_equals_per_job_serial(self):
        spec = small_spec()
        batched = run_sweep(spec, backend="serial")
        backend = SerialBackend()
        expected = []
        index = 0
        for workload in spec.workloads:
            for _ in spec.entries:
                [characterization] = backend.run([spec.jobs()[index]])
                expected.extend(score_characterization(
                    characterization, spec.clock_plan, spec.width, workload.kind))
                index += 1
        assert batched.points == expected

    def test_serial_and_multiprocess_agree(self):
        spec = small_spec(max_designs=3)
        serial = run_sweep(spec, backend="serial")
        pool = MultiprocessBackend(workers=2)
        try:
            multiprocess = run_sweep(spec, backend=pool)
        finally:
            pool.close()
        assert serial.points == multiprocess.points

    def test_cached_sweep_is_bit_identical_and_warm(self, tmp_path):
        spec = small_spec(max_designs=2)
        uncached = run_sweep(spec, backend="serial")
        cold = run_sweep(spec, backend="serial", cache_dir=str(tmp_path))
        warm = run_sweep(spec, backend="serial", cache_dir=str(tmp_path))
        assert uncached.points == cold.points == warm.points

    def test_result_accessors(self):
        spec = small_spec(max_designs=2)
        result = run_sweep(spec)
        assert len(result.designs) == 3
        assert result.designs[-1] == "exact"
        for design in result.designs:
            points = result.points_for(design)
            assert len(points) == len(spec.clock_plan.cpr_levels) * len(spec.workloads)
            assert all(point.design == design for point in points)


def point(design="d", quadruple=(8, 0, 0, 0), cpr=0.0, rms=1.0, gates=100,
          area=1.0, provably_exact=False) -> ParetoPoint:
    return ParetoPoint(design=design, quadruple=quadruple, cpr=cpr,
                       clock_period=3e-10 * (1 - cpr), rms_re=rms, error_rate=rms,
                       gates=gates, area_proxy=area, critical_path_delay=2.9e-10,
                       workloads=1, provably_exact=provably_exact)


class TestParetoProperties:
    def test_dominance_axioms(self):
        better = point(design="a", rms=0.1, gates=50, area=0.5)
        worse = point(design="b", rms=0.2, gates=60, area=0.6)
        assert dominates(better, worse)
        assert not dominates(worse, better)
        assert not dominates(better, better)  # irreflexive (no strict axis)

    def test_equal_points_are_both_kept(self):
        twins = [point(design="a"), point(design="b")]
        assert pareto_frontier(twins) == twins

    def test_frontier_is_exactly_the_nondominated_set(self):
        points = [
            point(design="a", rms=0.0, gates=100, area=1.0),
            point(design="b", rms=0.5, gates=50, area=0.5),
            point(design="c", rms=0.5, gates=60, area=0.6),   # dominated by b
            point(design="d", rms=1.0, gates=50, area=0.5),   # dominated by b
            point(design="e", rms=0.25, gates=80, area=0.9),
        ]
        frontier = pareto_frontier(points)
        assert [p.design for p in frontier] == ["a", "b", "e"]
        for member in frontier:
            assert not any(dominates(other, member) for other in points)
        for excluded in points:
            if excluded not in frontier:
                assert any(dominates(member, excluded) for member in frontier)

    def test_guarantee_axis_protects_the_baseline(self):
        # A lucky measured-zero design with fewer gates must not evict
        # the guaranteed-exact baseline.
        exact = point(design="exact", quadruple=None, rms=0.0, gates=227,
                      area=1.0, provably_exact=True)
        lucky = point(design="lucky", rms=0.0, gates=180, area=0.9)
        frontier = pareto_frontier([exact, lucky])
        assert exact in frontier and lucky in frontier

    def test_rank_frontier_orders_by_accuracy_then_cost(self):
        ranked = rank_frontier([point(design="b", rms=0.5, gates=10),
                                point(design="a", rms=0.1, gates=99),
                                point(design="c", rms=0.5, gates=5)])
        assert [p.design for p in ranked] == ["a", "c", "b"]

    def test_empty_objectives_rejected(self):
        with pytest.raises(AnalysisError):
            pareto_frontier([point()], objectives=())

    def test_aggregate_points_averages_workloads(self):
        spec = small_spec(max_designs=1, workloads=("uniform", "ramp"),
                          cpr_levels=(0.0,))
        result = run_sweep(spec)
        candidates = aggregate_points(result.points)
        assert len(candidates) == 2  # (design, cpr) pairs: 2 designs x 1 cpr
        for candidate in candidates:
            group = [p for p in result.points if p.design == candidate.design]
            assert candidate.workloads == 2
            expected = sum(p.stats.rms_relative_error for p in group) / 2
            assert candidate.rms_re == pytest.approx(expected, abs=0.0)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(AnalysisError):
            aggregate_points([])

    def test_nearest_paper_design(self):
        assert nearest_paper_design(None) == ("exact", 0.0)
        name, distance = nearest_paper_design((8, 0, 0, 4))
        assert (name, distance) == ("(8,0,0,4)", 0.0)
        name, distance = nearest_paper_design((8, 0, 0, 5))
        assert name in ("(8,0,0,4)", "(8,0,1,6)")
        assert distance == 1.0
        assert quadruple_distance((1, 2, 3, 4), (1, 2, 3, 4)) == 0.0
        assert quadruple_distance((0, 0, 0, 0), (3, 4, 0, 0)) == 5.0


class TestExploreCli:
    def run_cli(self, tmp_path, name, extra=()):
        output = tmp_path / name
        args = ["--width", "16", "--max-designs", "24", "--length", "128",
                "--cache-dir", str(tmp_path / "cache"), "--seed", "3",
                "--output", str(output)]
        assert explore_main(args + list(extra)) == 0
        shutdown_backends()  # fresh shared-backend registry, like a new process
        return output.read_text()

    def test_cold_then_warm_zero_jobs(self, tmp_path):
        cold = self.run_cli(tmp_path, "cold.txt")
        assert "Pareto frontier" in cold
        assert "exact" in cold
        assert "cache=0 hits / 25 misses" in cold
        assert "simulated 25 of 25 jobs" in cold
        warm = self.run_cli(tmp_path, "warm.txt")
        assert "cache=25 hits / 0 misses" in warm
        assert "simulated 0 of 25 jobs" in warm
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("(explored")]
        assert strip(cold) == strip(warm)

    def test_frontier_contains_exact_baseline(self, tmp_path):
        report = self.run_cli(tmp_path, "report.txt")
        frontier_rows = [line for line in report.splitlines()
                         if "exact (baseline)" in line]
        assert frontier_rows, "the exact baseline must sit on the frontier"

    def test_parser_validation(self, tmp_path):
        with pytest.raises(SystemExit):
            explore_main(["--cache-dir", str(tmp_path), "--no-cache"])
        with pytest.raises(SystemExit):
            explore_main(["--width", "1"])
        with pytest.raises(SystemExit):
            explore_main(["--length", "4"])
        with pytest.raises(SystemExit):
            explore_main(["--workloads", "noise"])

    def test_uncached_run_reports_no_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_SYNTH_CACHE", raising=False)
        output = tmp_path / "plain.txt"
        assert explore_main(["--width", "16", "--max-designs", "2", "--length", "64",
                             "--no-cache", "--output", str(output)]) == 0
        shutdown_backends()
        assert "cache=" not in output.read_text()


class TestCacheBudget:
    def small_job(self, seed):
        from tests.test_result_cache import small_job
        return small_job(seed=seed)

    def test_store_budget_prunes_oldest(self, tmp_path):
        from repro.runtime import ResultStore
        store = ResultStore(tmp_path, limit_bytes=1)
        first = store.result_path("aa" + "0" * 62)
        second = store.result_path("bb" + "1" * 62)
        store.store(first, {"blob": b"x" * 4096})
        store.store(second, {"blob": b"y" * 4096})
        # Backdate the first entry so mtime ordering is unambiguous.
        os.utime(first, (1, 1))
        removed = store.prune_to_limit()
        assert removed >= 1
        assert store.load(first) is None
        assert store.stats.pruned == removed
        assert store.total_bytes() <= 4096 + 1024  # at most the newer entry

    def test_caching_backend_enforces_budget(self, tmp_path):
        jobs = [self.small_job(seed) for seed in (1, 2, 3)]
        unlimited = CachingBackend(SerialBackend(), tmp_path / "unlimited")
        unlimited.run(jobs)
        per_entry = unlimited.store.total_bytes() / len(jobs)

        limited = CachingBackend(SerialBackend(), tmp_path / "limited",
                                 limit_mb=1.5 * per_entry / (1024 * 1024))
        limited.run(jobs)
        assert limited.stats.pruned >= 1
        assert limited.store.total_bytes() <= 2 * per_entry
        # Evicted entries are recompute-misses, never errors, and the
        # recomputed result is still served bit-identically.
        from tests.test_result_cache import assert_bit_identical
        [reference] = SerialBackend().run([jobs[0]])
        [again] = CachingBackend(SerialBackend(), tmp_path / "limited").run([jobs[0]])
        assert_bit_identical(reference, again)

    def test_warm_run_never_prunes(self, tmp_path):
        job = self.small_job(seed=5)
        cache_dir = tmp_path / "cache"
        CachingBackend(SerialBackend(), cache_dir).run([job])
        digest_dir = CachingBackend(SerialBackend(), cache_dir).store.entry_dir(
            job_digest(job))
        assert digest_dir.exists()
        warm = CachingBackend(SerialBackend(), cache_dir, limit_mb=10000)
        warm.run([job])
        assert warm.stats.pruned == 0
        assert digest_dir.exists()

    def test_invalid_budgets_rejected(self, tmp_path):
        from repro.runtime import ResultStore
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path, limit_bytes=0)
        with pytest.raises(ConfigurationError):
            CachingBackend(SerialBackend(), tmp_path, limit_mb=0)
        with pytest.raises(ConfigurationError):
            StudyConfig(cache_limit_mb=-1)

    def test_env_parsing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_LIMIT_MB", "128.5")
        assert StudyConfig().cache_limit_mb == 128.5
        monkeypatch.setenv("REPRO_CACHE_LIMIT_MB", "")
        assert StudyConfig().cache_limit_mb is None
        monkeypatch.setenv("REPRO_CACHE_LIMIT_MB", "big")
        with pytest.raises(ConfigurationError, match="REPRO_CACHE_LIMIT_MB.*'big'"):
            StudyConfig()

    def test_study_config_passes_budget_to_backend(self, tmp_path):
        try:
            config = StudyConfig(backend="serial", cache_dir=str(tmp_path),
                                 cache_limit_mb=64)
            backend = config.runtime_backend()
            assert isinstance(backend, CachingBackend)
            assert backend.store.limit_bytes == 64 * 1024 * 1024
            # a different budget is a different shared instance
            other = StudyConfig(backend="serial", cache_dir=str(tmp_path),
                                cache_limit_mb=None).runtime_backend()
            assert other is not backend
            assert other.store.limit_bytes is None
        finally:
            shutdown_backends()


class TestPerRunCounters:
    def test_snapshot_and_since(self, tmp_path):
        job = TestCacheBudget().small_job(seed=9)
        backend = CachingBackend(SerialBackend(), tmp_path)
        backend.run([job])
        baseline = backend.stats.snapshot()
        backend.run([job])
        delta = backend.stats.since(baseline)
        assert (delta.hits, delta.misses) == (1, 0)
        assert (backend.stats.hits, backend.stats.misses) == (1, 1)  # cumulative
        assert "1 hits / 0 misses" in delta.describe()

    def test_reset_counters_shared_with_store(self, tmp_path):
        job = TestCacheBudget().small_job(seed=10)
        backend = CachingBackend(SerialBackend(), tmp_path)
        backend.run([job])
        assert backend.stats.misses == 1
        backend.reset_counters()
        assert backend.stats.misses == 0
        assert backend.store.stats is backend.stats  # still one shared object
        backend.run([job])
        assert (backend.stats.hits, backend.stats.misses) == (1, 0)

    def test_runner_footer_reports_this_run_only(self, tmp_path):
        """Two CLI runs in one process share the caching backend; the
        second footer must show only its own (all-hit) counters."""
        from repro.experiments.runner import main as runner_main
        cache_dir = tmp_path / "cache"
        base = ["--scale", "0.05", "--simulator", "fast", "--figures", "fig9",
                "--cache-dir", str(cache_dir)]
        cold_path, warm_path = tmp_path / "cold.txt", tmp_path / "warm.txt"
        try:
            assert runner_main(base + ["--output", str(cold_path)]) == 0
            # no shutdown_backends(): the shared instance keeps counting
            assert runner_main(base + ["--output", str(warm_path)]) == 0
        finally:
            shutdown_backends()
        assert "cache=0 hits / 12 misses" in cold_path.read_text()
        assert "cache=12 hits / 0 misses" in warm_path.read_text()
