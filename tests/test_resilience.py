"""Tests of the resilient execution layer (retries, recovery, checkpoints).

The contract under test: a worker killed mid-batch recovers with results
bit-identical to a fault-free serial run, across serial/multiprocess x
planned/unplanned x cached/uncached; retry exhaustion propagates the
original error; a pool whose workers die on every task degrades to
in-process execution with a warning instead of failing; transient
store-write failures warn once and continue as misses; checkpointed
sweeps resume by replaying journaled scores and simulating only the
unfinished jobs; and fault plans are deterministic across processes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TaskTimeoutError
from repro.experiments.designs import exact_entry, isa_entry
from repro.explore.checkpoint import (
    CHECKPOINT_ENV,
    SweepJournal,
    point_from_record,
    point_to_record,
    require_checkpoint_dir,
)
from repro.explore.space import space_entries
from repro.explore.sweep import SweepSpec, run_sweep
from repro.obs.metrics import metrics_run
from repro.runtime import (
    FAULT_PLAN_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    CachingBackend,
    CharacterizationJob,
    MultiprocessBackend,
    RetryPolicy,
    SerialBackend,
    active_fault_plan,
    deterministic_jitter,
    parse_fault_plan,
    reset_fault_plan,
    retry_call,
    run_jobs,
)
from repro.runtime.faultinject import POINT_TASK, FaultPlan, FaultSpec
from repro.runtime.store import ResultStore
from repro.timing.clocking import ClockPlan
from repro.workloads.generators import WorkloadSpec, uniform_workload

PERIODS = tuple(ClockPlan.paper().periods)


def small_job(length=200, quadruple=(4, 0, 0, 2), simulator="fast", engine="auto",
              seed=11, **kwargs):
    """A quick 16-bit characterization job (mirrors test_result_cache)."""
    entry = exact_entry(16) if quadruple is None else isa_entry(quadruple, width=16)
    trace = uniform_workload(length, width=16, seed=seed)
    return CharacterizationJob(entry=entry, trace=trace, clock_periods=PERIODS,
                               simulator=simulator, engine=engine, width=16, **kwargs)


def job_batch():
    """Four jobs: two designs across two operand traces."""
    return [small_job(quadruple=quadruple, seed=seed)
            for seed in (11, 12) for quadruple in ((4, 0, 0, 2), (4, 2, 1, 2))]


def assert_bit_identical(reference, candidate):
    """Every array of two characterisations matches exactly."""
    assert reference.name == candidate.name
    assert np.array_equal(reference.diamond_words, candidate.diamond_words)
    assert np.array_equal(reference.gold_words, candidate.gold_words)
    assert np.array_equal(reference.netlist_words, candidate.netlist_words)
    assert set(reference.timing_traces) == set(candidate.timing_traces)
    for clk, timing in reference.timing_traces.items():
        other = candidate.timing_traces[clk]
        assert np.array_equal(timing.sampled_words, other.sampled_words)
        assert np.array_equal(timing.settled_words, other.settled_words)


def multiprocess_backend(**kwargs):
    """A multiprocess backend, quiet about worker clamping on small hosts."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return MultiprocessBackend(**kwargs)


@pytest.fixture
def arm_faults(monkeypatch, tmp_path):
    """Arm (and on teardown disarm) a fault plan with a fresh state dir.

    The explicit per-test ``state_dir`` matters: ``times`` budgets are
    claimed through token files that would otherwise persist in a
    directory derived from the plan text, across tests and runs.
    """
    def arm(faults, **extra):
        document = {"faults": faults, "state_dir": str(tmp_path / "fault-state")}
        document.update(extra)
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(document))
        reset_fault_plan()
        return document
    yield arm
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    reset_fault_plan()


# --------------------------------------------------------------------- #
# Environment knobs
# --------------------------------------------------------------------- #
class TestEnvKnobs:
    @pytest.mark.parametrize("value", ["banana", "-1", "1.5"])
    def test_malformed_retries_names_variable_and_value(self, monkeypatch, value):
        monkeypatch.setenv(RETRIES_ENV, value)
        with pytest.raises(ConfigurationError) as excinfo:
            RetryPolicy.from_env()
        assert RETRIES_ENV in str(excinfo.value)
        assert repr(value) in str(excinfo.value)

    @pytest.mark.parametrize("value", ["soon", "0", "-2.5"])
    def test_malformed_timeout_names_variable_and_value(self, monkeypatch, value):
        monkeypatch.setenv(TIMEOUT_ENV, value)
        with pytest.raises(ConfigurationError) as excinfo:
            RetryPolicy.from_env()
        assert TIMEOUT_ENV in str(excinfo.value)
        assert repr(value) in str(excinfo.value)

    def test_env_policy_resolves_attempts_and_timeout(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 6
        assert policy.task_timeout == 2.5

    def test_zero_retries_means_single_attempt(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "0")
        assert RetryPolicy.from_env().max_attempts == 1

    @pytest.mark.parametrize("document, detail", [
        ("{not json", "must be JSON"),
        ("/nonexistent/fault-plan.json", "unreadable plan file"),
        ('{"faults": 3}', "'faults' list"),
        ('[{"kind": "melt-cpu", "at": 1}]', "unknown kind"),
        ('[{"kind": "task-error"}]', "'at' or 'every' trigger"),
        ('[{"kind": "task-error", "at": 0}]', "must be a positive integer"),
        ('[{"kind": "task-error", "at": 1, "color": "red"}]', "unknown fields"),
        ('[{"kind": "task-error", "at": 1, "point": "moon"}]', "unknown point"),
        ('[{"kind": "delay", "at": 1, "seconds": -1}]', "non-negative number"),
        ('{"faults": [], "state_dir": 7}', "path string"),
    ])
    def test_malformed_fault_plan_names_variable_and_value(self, document, detail):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_fault_plan(document)
        message = str(excinfo.value)
        assert FAULT_PLAN_ENV in message
        assert detail in message
        assert repr(document) in message

    def test_active_plan_rearms_when_env_changes(self, arm_faults):
        arm_faults([{"kind": "task-error", "at": 1}])
        first = active_fault_plan()
        assert [spec.kind for spec in first.specs] == ["task-error"]
        arm_faults([{"kind": "delay", "every": 2, "seconds": 0.1}])
        second = active_fault_plan()
        assert second is not first
        assert [spec.kind for spec in second.specs] == ["delay"]


# --------------------------------------------------------------------- #
# Retry policy and the in-process retry loop
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_jitter_is_deterministic_and_uniform(self):
        draws = {deterministic_jitter(f"job{i}", attempt)
                 for i in range(8) for attempt in (1, 2)}
        assert len(draws) == 16
        assert all(0.0 <= draw < 1.0 for draw in draws)
        assert deterministic_jitter("job0", 1) == deterministic_jitter("job0", 1)

    def test_delay_is_exponential_with_bounded_jitter(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.delay("some-task", attempt)
            assert base * 0.5 <= delay < base * 1.5
        assert policy.delay("a", 1) == policy.delay("a", 1)

    def test_invalid_policy_fields_raise(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="task_timeout"):
            RetryPolicy(task_timeout=0.0)

    def test_transient_failure_is_retried_then_succeeds(self):
        attempts, sleeps = [], []

        def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise OSError("transient hiccup")
            return "ok"

        policy = RetryPolicy(max_attempts=3, backoff_base=0.125)
        with metrics_run() as registry:
            result = retry_call(policy, "flaky-task", flaky, sleep=sleeps.append)
        assert result == "ok"
        assert len(attempts) == 2
        assert sleeps == [policy.delay("flaky-task", 1)]
        assert registry.counters["tasks.retried"] == 1

    def test_exhaustion_propagates_the_original_error(self):
        attempts = []

        def doomed():
            attempts.append(1)
            raise OSError("persistent failure")

        policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
        with pytest.raises(OSError, match="persistent failure"):
            retry_call(policy, "doomed", doomed, sleep=lambda _: None)
        assert len(attempts) == 3

    def test_non_retryable_errors_propagate_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("a deterministic bug")

        with pytest.raises(ValueError, match="deterministic bug"):
            retry_call(RetryPolicy(max_attempts=5), "broken", broken)
        assert len(attempts) == 1

    def test_posthoc_timeout_counts_as_a_retryable_failure(self):
        ticks = iter([0.0, 10.0, 10.0, 10.2])
        sleeps = []
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, task_timeout=1.0)
        result = retry_call(policy, "slow", lambda: "done",
                            clock=lambda: next(ticks), sleep=sleeps.append)
        assert result == "done"
        assert len(sleeps) == 1

    def test_posthoc_timeout_exhaustion_raises_task_timeout(self):
        ticks = iter([0.0, 10.0])
        policy = RetryPolicy(max_attempts=1, task_timeout=1.0)
        with pytest.raises(TaskTimeoutError, match="over its 1 s budget"):
            retry_call(policy, "slow", lambda: "done", clock=lambda: next(ticks))


# --------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_counters_respect_point_and_match(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind="task-error", point=POINT_TASK,
                                    at=2, match="alpha")], str(tmp_path))
        plan.fire(POINT_TASK, "beta")       # filtered out by match
        plan.fire("store.write", "alpha")   # wrong point
        plan.fire(POINT_TASK, "alpha-1")    # counter 1: not due yet
        with pytest.raises(OSError, match="injected task-error"):
            plan.fire(POINT_TASK, "alpha-2")

    def test_times_budget_is_shared_through_the_state_dir(self, tmp_path):
        spec = FaultSpec(kind="task-error", point=POINT_TASK, every=1, times=1)
        first = FaultPlan([spec], str(tmp_path))
        second = FaultPlan([spec], str(tmp_path))  # another "process"
        with pytest.raises(OSError):
            first.fire(POINT_TASK, "a")
        second.fire(POINT_TASK, "b")  # budget exhausted globally: no fire
        second.fire(POINT_TASK, "c")

    def test_kill_worker_is_a_noop_in_the_driver(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind="kill-worker", point=POINT_TASK,
                                    every=1)], str(tmp_path))
        with metrics_run() as registry:
            plan.fire(POINT_TASK, "driver-task")  # must not exit the test runner
        assert registry.counters["faults.injected"] == 1

    def test_plans_fire_identically_across_processes(self, tmp_path):
        script = (
            "import json, os\n"
            "os.environ['REPRO_FAULT_PLAN'] = json.dumps("
            "[{'kind': 'task-error', 'at': 2},"
            " {'kind': 'task-error', 'every': 3}])\n"
            "from repro.runtime.faultinject import POINT_TASK, active_fault_plan\n"
            "plan = active_fault_plan()\n"
            "events = []\n"
            "for index in range(12):\n"
            "    try:\n"
            "        plan.fire(POINT_TASK, f'job{index}')\n"
            "        events.append('ok')\n"
            "    except OSError as error:\n"
            "        events.append(str(error))\n"
            "print(json.dumps(events))\n")
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONPATH=src)
        env.pop(FAULT_PLAN_ENV, None)
        runs = [subprocess.run([sys.executable, "-c", script], env=env,
                               capture_output=True, text=True, check=True)
                for _ in range(2)]
        first, second = (json.loads(run.stdout) for run in runs)
        assert first == second
        assert sum(1 for event in first if event != "ok") > 0


# --------------------------------------------------------------------- #
# Serial backend resilience
# --------------------------------------------------------------------- #
class TestSerialResilience:
    def test_transient_task_fault_is_retried_transparently(self, arm_faults):
        [reference] = run_jobs([small_job()], backend="serial", plan=False)
        arm_faults([{"kind": "task-error", "at": 1, "times": 1}])
        with metrics_run() as registry:
            [survived] = run_jobs([small_job()], backend="serial", plan=False)
        assert_bit_identical(reference, survived)
        assert registry.counters["faults.injected"] == 1
        assert registry.counters["tasks.retried"] == 1

    def test_planned_serial_groups_retry_too(self, arm_faults):
        jobs = job_batch()
        reference = run_jobs(jobs, backend="serial", plan=False)
        arm_faults([{"kind": "task-error", "at": 1, "times": 1}])
        with metrics_run() as registry:
            survived = run_jobs(job_batch(), backend="serial", plan=True)
        for expected, got in zip(reference, survived):
            assert_bit_identical(expected, got)
        assert registry.counters["tasks.retried"] >= 1

    def test_retry_exhaustion_propagates_the_injected_error(self, arm_faults):
        arm_faults([{"kind": "task-error", "every": 1}])
        backend = SerialBackend(
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0))
        with pytest.raises(OSError, match="injected task-error"):
            backend.run([small_job()])


# --------------------------------------------------------------------- #
# Multiprocess backend resilience
# --------------------------------------------------------------------- #
class TestMultiprocessResilience:
    @pytest.mark.parametrize("plan, cached", [
        (False, False), (True, False), (False, True), (True, True),
    ], ids=["plain", "planned", "cached", "planned-cached"])
    def test_killed_worker_recovers_bit_identically(self, arm_faults, tmp_path,
                                                    plan, cached):
        jobs = job_batch()
        reference = run_jobs(jobs, backend="serial", plan=False)
        arm_faults([{"kind": "kill-worker", "at": 2, "times": 1}])
        backend = multiprocess_backend(workers=2)
        try:
            with metrics_run() as registry:
                survived = run_jobs(
                    job_batch(), backend=backend, plan=plan,
                    cache_dir=str(tmp_path / "cache") if cached else None)
        finally:
            backend.close()
        for expected, got in zip(reference, survived):
            assert_bit_identical(expected, got)
        assert registry.counters["pool.rebuilds"] >= 1
        assert registry.counters["tasks.retried"] >= 1

    def test_stalled_task_is_redispatched_after_timeout(self, arm_faults):
        job = small_job()
        [reference] = run_jobs([job], backend="serial", plan=False)
        arm_faults([{"kind": "delay", "at": 1, "seconds": 5.0, "times": 1}])
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, task_timeout=0.5)
        backend = multiprocess_backend(workers=1, retry_policy=policy)
        try:
            with metrics_run() as registry:
                [survived] = backend.run([small_job()])
        finally:
            backend.close()
        assert_bit_identical(reference, survived)
        assert registry.counters["pool.rebuilds"] >= 1

    def test_hopeless_pool_degrades_to_in_process_with_warning(self, arm_faults):
        jobs = job_batch()
        reference = run_jobs(jobs, backend="serial", plan=False)
        arm_faults([{"kind": "kill-worker", "every": 1}])
        backend = multiprocess_backend(workers=1, max_rebuilds=2)
        try:
            with metrics_run() as registry:
                with pytest.warns(RuntimeWarning, match="degraded to in-process"):
                    survived = backend.run(job_batch())
        finally:
            backend.close()
        for expected, got in zip(reference, survived):
            assert_bit_identical(expected, got)
        assert registry.counters["backend.degraded"] == 1
        assert registry.counters["pool.rebuilds"] == 2


# --------------------------------------------------------------------- #
# Store-write resilience
# --------------------------------------------------------------------- #
class TestStoreResilience:
    def test_write_failure_warns_once_and_stays_a_miss(self, arm_faults, tmp_path):
        arm_faults([{"kind": "store-error", "every": 1}])
        store = ResultStore(tmp_path / "store")
        path = store.result_path("ab" * 32)
        with pytest.warns(RuntimeWarning, match="stays a miss"):
            store.store(path, {"payload": 1})
        assert store.load(path) is None
        assert store.stats.write_errors == 1
        with warnings.catch_warnings():  # the second failure stays quiet
            warnings.simplefilter("error")
            store.store(store.result_path("cd" * 32), {"payload": 2})
        assert store.stats.write_errors == 2
        assert "2 writes skipped on I/O errors" in store.stats.describe()

    def test_cached_run_survives_write_faults_as_misses(self, arm_faults, tmp_path):
        [reference] = run_jobs([small_job()], backend="serial", plan=False)
        arm_faults([{"kind": "store-error", "every": 1,
                     "match": str(tmp_path / "cache")}])
        backend = CachingBackend(SerialBackend(), tmp_path / "cache")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            [first] = backend.run([small_job()])
            [second] = backend.run([small_job()])  # nothing persisted: recompute
        assert_bit_identical(reference, first)
        assert_bit_identical(reference, second)
        assert backend.stats.hits == 0
        assert backend.stats.misses == 2
        assert backend.stats.write_errors >= 2

    def test_truncated_entry_is_recomputed_as_corruption(self, arm_faults, tmp_path):
        [reference] = run_jobs([small_job()], backend="serial", plan=False)
        arm_faults([{"kind": "truncate", "at": 1}])
        backend = CachingBackend(SerialBackend(), tmp_path / "cache")
        [cold] = backend.run([small_job()])       # written, then torn in half
        [warm] = backend.run([small_job()])       # corrupt -> miss -> recompute
        assert_bit_identical(reference, cold)
        assert_bit_identical(reference, warm)
        assert backend.stats.corrupt >= 1
        [rewarmed] = backend.run([small_job()])   # second write was clean
        assert_bit_identical(reference, rewarmed)
        assert backend.stats.hits >= 1


# --------------------------------------------------------------------- #
# Checkpointed sweeps
# --------------------------------------------------------------------- #
def small_sweep_spec(width=16, max_designs=2, length=64):
    return SweepSpec(
        entries=tuple(space_entries(width=width, max_designs=max_designs)),
        workloads=(WorkloadSpec(kind="uniform", length=length, width=width,
                                seed=1),),
        width=width)


class TestCheckpointing:
    def test_points_round_trip_through_journal_records(self):
        result = run_sweep(small_sweep_spec())
        for point in result.points:
            rebuilt = point_from_record(
                json.loads(json.dumps(point_to_record(point), sort_keys=True)))
            assert rebuilt == point

    def test_journal_identity_is_the_digest_list(self, tmp_path):
        same = SweepJournal.for_spec(tmp_path, ["a", "b"])
        again = SweepJournal.for_spec(tmp_path, ["a", "b"])
        other = SweepJournal.for_spec(tmp_path, ["a", "c"])
        assert same.path == again.path
        assert same.path != other.path

    def test_corrupt_and_foreign_lines_are_skipped(self, tmp_path):
        result = run_sweep(small_sweep_spec())
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.record("digest-1", result.points[:2])
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"format": 99, "digest": "old", "points": []}\n')
            handle.write('{"digest": "torn", "poi')  # the interrupted write
        loaded = journal.load()
        assert list(loaded) == ["digest-1"]
        assert loaded["digest-1"] == result.points[:2]

    def test_resume_without_checkpoint_dir_is_a_config_error(self, monkeypatch):
        monkeypatch.delenv(CHECKPOINT_ENV, raising=False)
        with pytest.raises(ConfigurationError, match=CHECKPOINT_ENV):
            require_checkpoint_dir(None, resume=True)
        with pytest.raises(ConfigurationError, match=CHECKPOINT_ENV):
            run_sweep(small_sweep_spec(), resume=True)

    def test_checkpoint_dir_resolves_from_the_environment(self, monkeypatch,
                                                          tmp_path):
        monkeypatch.setenv(CHECKPOINT_ENV, str(tmp_path))
        assert require_checkpoint_dir(None, resume=True) == str(tmp_path)

    def test_checkpointed_sweep_matches_plain_and_full_resume_is_free(
            self, tmp_path):
        spec = small_sweep_spec()
        plain = run_sweep(spec)
        checkpointed = run_sweep(spec, checkpoint_dir=str(tmp_path),
                                 checkpoint_batch=2)
        assert checkpointed.points == plain.points
        assert checkpointed.resumed_jobs == 0
        with metrics_run() as registry:
            resumed = run_sweep(spec, checkpoint_dir=str(tmp_path), resume=True)
        assert resumed.points == plain.points
        assert resumed.resumed_jobs == spec.job_count
        assert registry.counters.get("jobs.simulated", 0) == 0
        assert registry.counters["sweep.jobs_resumed"] == spec.job_count

    def test_interrupted_sweep_resumes_only_unfinished_jobs(self, monkeypatch,
                                                            tmp_path):
        import repro.explore.sweep as sweep_module
        spec = small_sweep_spec()
        plain = run_sweep(spec)

        real_run_jobs = sweep_module.run_jobs
        batches = []

        def interrupted(jobs, **kwargs):
            batches.append(len(jobs))
            if len(batches) == 2:
                raise RuntimeError("simulated interruption")
            return real_run_jobs(jobs, **kwargs)

        monkeypatch.setattr(sweep_module, "run_jobs", interrupted)
        with pytest.raises(RuntimeError, match="simulated interruption"):
            run_sweep(spec, checkpoint_dir=str(tmp_path), checkpoint_batch=1)
        monkeypatch.setattr(sweep_module, "run_jobs", real_run_jobs)

        with metrics_run() as registry:
            resumed = run_sweep(spec, checkpoint_dir=str(tmp_path), resume=True,
                                checkpoint_batch=1)
        assert resumed.resumed_jobs == 1
        assert registry.counters["jobs.simulated"] == spec.job_count - 1
        assert resumed.points == plain.points

    def test_fresh_run_discards_a_stale_journal(self, tmp_path):
        spec = small_sweep_spec()
        run_sweep(spec, checkpoint_dir=str(tmp_path))
        fresh = run_sweep(spec, checkpoint_dir=str(tmp_path))  # no resume
        assert fresh.resumed_jobs == 0


# --------------------------------------------------------------------- #
# CLI validation
# --------------------------------------------------------------------- #
class TestCLIValidation:
    def test_resume_requires_a_checkpoint_dir(self, monkeypatch, capsys):
        from repro.explore.cli import main
        monkeypatch.delenv(CHECKPOINT_ENV, raising=False)
        with pytest.raises(SystemExit):
            main(["--resume"])
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    @pytest.mark.parametrize("argv, detail", [
        (["--max-retries", "-1"], "--max-retries must be non-negative"),
        (["--task-timeout", "0"], "--task-timeout must be positive"),
    ])
    def test_resilience_knobs_are_validated(self, argv, detail, capsys):
        from repro.explore.cli import main
        with pytest.raises(SystemExit):
            main(argv)
        assert detail in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Acceptance: a faulted multi-design sweep is byte-identical and loses
# no jobs (ISSUE acceptance scenario).
# --------------------------------------------------------------------- #
class TestAcceptance:
    def test_faulted_multiprocess_sweep_matches_fault_free_serial(
            self, arm_faults, tmp_path):
        spec = small_sweep_spec(max_designs=4)
        reference = run_sweep(spec)  # fault-free, serial

        cache_dir = tmp_path / "chaos-cache"
        arm_faults([
            {"kind": "kill-worker", "at": 2, "times": 1},
            {"kind": "store-error", "every": 2, "match": str(cache_dir)},
        ])
        backend = multiprocess_backend(workers=2)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with metrics_run() as registry:
                    faulted = run_sweep(spec, backend=backend,
                                        cache_dir=str(cache_dir))
        finally:
            backend.close()

        assert faulted.points == reference.points  # zero lost or wrong jobs
        assert len(faulted.points) == spec.point_count
        assert registry.counters["tasks.retried"] >= 1
        assert registry.counters["pool.rebuilds"] >= 1
        assert registry.counters["faults.injected"] >= 1
