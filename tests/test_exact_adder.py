"""Unit tests for repro.core.exact."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.exact import ExactAdder
from repro.exceptions import ConfigurationError


class TestExactAdder:
    def test_simple_addition(self):
        assert ExactAdder(8).add(200, 100) == 300

    def test_carry_in(self):
        assert ExactAdder(8).add(1, 2, cin=1) == 4

    def test_result_width(self):
        assert ExactAdder(32).result_width == 33

    def test_name(self):
        assert ExactAdder().name == "exact"

    def test_operand_range_checked(self):
        with pytest.raises(ConfigurationError):
            ExactAdder(8).add(256, 0)
        with pytest.raises(ConfigurationError):
            ExactAdder(8).add(0, -1)

    def test_bad_cin(self):
        with pytest.raises(ConfigurationError):
            ExactAdder(8).add(1, 1, cin=2)

    def test_width_limit(self):
        with pytest.raises(ConfigurationError):
            ExactAdder(63)

    def test_add_many_matches_numpy(self):
        adder = ExactAdder(16)
        a = np.array([1, 65535, 1234], dtype=np.uint64)
        b = np.array([2, 1, 4321], dtype=np.uint64)
        assert adder.add_many(a, b).tolist() == [3, 65536, 5555]

    def test_add_many_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            ExactAdder(16).add_many(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64))

    def test_add_many_range_check(self):
        with pytest.raises(ConfigurationError):
            ExactAdder(8).add_many(np.array([300], dtype=np.uint64),
                                   np.array([0], dtype=np.uint64))

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=1))
    def test_matches_python_arithmetic(self, a, b, cin):
        assert ExactAdder(32).add(a, b, cin) == a + b + cin
