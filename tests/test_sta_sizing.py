"""Tests for static timing analysis and slack-driven sizing."""

import pytest

from repro.circuit.builder import NetlistBuilder
from repro.circuit.library import default_library
from repro.circuit.sdf import DelayAnnotation
from repro.exceptions import SynthesisError, TimingError
from repro.synth.adders import kogge_stone_adder
from repro.synth.sizing import SizingOptions, size_to_constraint
from repro.timing.sta import (
    analyze_timing,
    arrival_times,
    critical_path,
    gate_slacks,
    path_gate_counts,
    required_times,
)


def chain_netlist(length=4):
    """A simple inverter chain with a side branch, for hand-checkable STA."""
    builder = NetlistBuilder("chain")
    net = builder.input_bit("a")
    for _ in range(length):
        net = builder.inv(net)
    side = builder.inv(builder.input_bit("b"))
    builder.output_bus("S", [net, side])
    return builder.build()


class TestArrivalAndRequired:
    def test_chain_arrival_is_sum_of_delays(self):
        netlist = chain_netlist(4)
        library = default_library()
        annotation = DelayAnnotation.nominal(netlist, library)
        arrival = arrival_times(netlist, annotation)
        inv_delay = library.delay("INV")
        assert arrival[netlist.outputs[0]] == pytest.approx(4 * inv_delay)
        assert arrival[netlist.outputs[1]] == pytest.approx(1 * inv_delay)

    def test_required_times_back_propagate(self):
        netlist = chain_netlist(2)
        library = default_library()
        annotation = DelayAnnotation.nominal(netlist, library)
        required = required_times(netlist, annotation, clock_period=1e-10)
        inv_delay = library.delay("INV")
        assert required["a"] == pytest.approx(1e-10 - 2 * inv_delay)

    def test_slack_positive_for_loose_clock(self):
        netlist = chain_netlist(3)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        slacks = gate_slacks(netlist, annotation, clock_period=1e-9)
        assert all(slack > 0 for slack in slacks.values())

    def test_critical_path_identifies_long_chain(self):
        netlist = chain_netlist(5)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        path, delay, endpoint = critical_path(netlist, annotation)
        assert len(path) == 5
        assert endpoint == netlist.outputs[0]
        assert delay == pytest.approx(5 * default_library().delay("INV"))

    def test_path_gate_counts(self):
        netlist = chain_netlist(3)
        counts = path_gate_counts(netlist)
        # every inverter of the 3-long chain lies on a 3-gate path
        chain_gates = [gate.name for gate in netlist.gates][:3]
        for name in chain_gates:
            assert counts[name] == 3


class TestTimingReport:
    def test_meets_constraint(self):
        netlist = chain_netlist(2)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        report = analyze_timing(netlist, annotation, clock_period=1e-9)
        assert report.meets_constraint
        assert report.worst_slack > 0
        assert "critical path" in report.describe()

    def test_violated_constraint(self):
        netlist = chain_netlist(10)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        report = analyze_timing(netlist, annotation, clock_period=1e-12)
        assert not report.meets_constraint

    def test_max_frequency(self):
        netlist = chain_netlist(2)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        report = analyze_timing(netlist, annotation)
        assert report.max_frequency_ghz() > 0
        assert report.clock_period is None and report.meets_constraint

    def test_bad_clock_rejected(self):
        netlist = chain_netlist(2)
        annotation = DelayAnnotation.nominal(netlist, default_library())
        with pytest.raises(TimingError):
            analyze_timing(netlist, annotation, clock_period=0.0)


class TestSizing:
    def test_slack_is_consumed_but_constraint_met(self):
        netlist = kogge_stone_adder(16)
        library = default_library()
        nominal = analyze_timing(netlist, DelayAnnotation.nominal(netlist, library))
        constraint = nominal.critical_path_delay * 1.5
        result = size_to_constraint(netlist, library,
                                    SizingOptions(clock_constraint=constraint))
        assert result.met_constraint
        assert result.sized_critical_path > result.nominal_critical_path
        assert result.sized_critical_path <= constraint + 1e-15
        assert result.power_recovery > 0
        assert result.slack_at_constraint >= 0

    def test_violating_design_is_sped_up(self):
        netlist = kogge_stone_adder(16)
        library = default_library()
        nominal = analyze_timing(netlist, DelayAnnotation.nominal(netlist, library))
        constraint = nominal.critical_path_delay * 0.93
        result = size_to_constraint(netlist, library,
                                    SizingOptions(clock_constraint=constraint))
        assert result.sized_critical_path < result.nominal_critical_path

    def test_speed_up_is_bounded_by_cell_limits(self):
        netlist = kogge_stone_adder(16)
        library = default_library()
        nominal = analyze_timing(netlist, DelayAnnotation.nominal(netlist, library))
        # An impossible constraint: the fix-up passes stop at the cells' fastest sizes.
        constraint = nominal.critical_path_delay * 0.5
        result = size_to_constraint(netlist, library,
                                    SizingOptions(clock_constraint=constraint))
        assert not result.met_constraint
        assert result.sized_critical_path >= nominal.critical_path_delay * 0.80

    def test_delays_respect_library_bounds(self):
        netlist = kogge_stone_adder(8)
        library = default_library()
        result = size_to_constraint(netlist, library,
                                    SizingOptions(clock_constraint=1e-9))
        for gate in netlist.gates:
            timing = library.timing(gate.cell)
            delay = result.annotation.delay_of(gate.name)
            assert timing.min_delay - 1e-18 <= delay <= timing.max_delay + 1e-18

    def test_invalid_options(self):
        with pytest.raises(SynthesisError):
            SizingOptions(clock_constraint=-1.0)
        with pytest.raises(SynthesisError):
            SizingOptions(clock_constraint=1e-10, fixup_iterations=-1)
